"""Registry adapters for every selection algorithm in the library.

Each adapter is a thin shim from the registry calling convention
``(context, k, **params)`` onto the algorithm's original public
function — the originals are wrapped, never forked, so registry
dispatch returns exactly the seeds a direct call would.

Adapters that support runtime-vs-k instrumentation (``time_log``)
report entries *including* the time spent lazily building the artifacts
they triggered (probability learning, the index scan): that is the cost
a user actually pays to get ``k`` seeds from cold, and it is what the
paper's Figure-7 comparison charges each method with.
"""

from __future__ import annotations

import time

from repro.api.context import SelectionContext
from repro.api.registry import register_selector
from repro.api.results import SeedSelection
from repro.core.budget import cd_budget_maximize
from repro.core.maximize import cd_maximize
from repro.maximization.celf import celf_maximize
from repro.maximization.celfpp import celfpp_maximize
from repro.maximization.degree_discount import (
    degree_discount_ic_seeds,
    single_discount_seeds,
)
from repro.maximization.greedy import greedy_maximize
from repro.maximization.heuristics import high_degree_seeds, pagerank_seeds
from repro.maximization.irie import irie_seeds
from repro.maximization.ris import ris_maximize
from repro.maximization.simpath import simpath_maximize

__all__: list[str] = []


def _merge_time_log(
    time_log: list[tuple[int, float]] | None,
    inner: list[tuple[int, float]] | None,
    offset: float,
) -> None:
    """Shift ``inner`` entries by the artifact-build ``offset`` seconds."""
    if time_log is not None and inner is not None:
        time_log.extend(
            (count, offset + elapsed) for count, elapsed in inner
        )


# ----------------------------------------------------------------------
# The CD model (this paper)
# ----------------------------------------------------------------------
@register_selector(
    "cd",
    family="cd",
    description="Credit-distribution maximizer (Algorithms 3-5, this paper)",
    needs_index=True,
    supports_time_log=True,
)
def _cd(
    ctx: SelectionContext,
    k: int,
    *,
    time_log=None,
    checkpoints=None,
    state=None,
    state_out=None,
):
    started = time.perf_counter()
    index = ctx.credit_index()
    offset = time.perf_counter() - started
    inner = [] if time_log is not None else None
    result = cd_maximize(
        index,
        k,
        mutate=False,
        time_log=inner,
        checkpoints=checkpoints,
        state=state,
        state_out=state_out,
        backend=ctx.backend,
    )
    _merge_time_log(time_log, inner, offset)
    return result


@register_selector(
    "cd_budget",
    family="cd",
    description="Budgeted CD maximizer under per-seed costs (CEF rule, "
                "Leskovec et al., KDD 2007)",
    needs_index=True,
    supports_budget=True,
)
def _cd_budget(
    ctx: SelectionContext,
    k: int,
    *,
    budget: float | None = None,
    cost_scale: float = 0.0,
):
    """Budgeted selection: the cost cap, not ``k``, bounds the seed set.

    ``budget`` defaults to ``float(k)`` — under the default unit costs
    that makes the budgeted problem coincide with size-``k`` selection,
    so the selector is runnable without parameters.  ``cost_scale > 0``
    prices each user as ``1 + activity/cost_scale`` (the analytics
    CLI's convention); ``0`` means unit costs.
    """
    if budget is None:
        budget = float(k)
    index = ctx.credit_index()
    costs = None
    if cost_scale > 0.0:
        costs = {
            user: 1.0 + index.activity[user] / cost_scale
            for user in index.users()
        }
    result = cd_budget_maximize(index, budget=budget, costs=costs)
    return SeedSelection(
        seeds=list(result.seeds),
        gains=list(result.gains),
        spread=result.spread,
        oracle_calls=result.oracle_calls,
        metadata={
            "budget": result.budget,
            "spent": result.spent,
            "rule": result.rule,
            "costs": list(result.costs),
        },
    )


# ----------------------------------------------------------------------
# The greedy family over a spread oracle
# ----------------------------------------------------------------------
def _oracle_family(
    ctx, k, maximizer, model, method, seed, time_log,
    checkpoints=None, state=None, state_out=None,
):
    started = time.perf_counter()
    oracle = ctx.oracle(model, method=method, seed=seed)
    offset = time.perf_counter() - started
    executor = ctx.executor
    if maximizer is greedy_maximize:
        return greedy_maximize(
            oracle, k, executor=executor, checkpoints=checkpoints
        )
    inner = [] if time_log is not None else None
    result = maximizer(
        oracle,
        k,
        time_log=inner,
        executor=executor,
        checkpoints=checkpoints,
        state=state,
        state_out=state_out,
    )
    _merge_time_log(time_log, inner, offset)
    return result


@register_selector(
    "greedy",
    family="mc",
    description="Plain (1-1/e) greedy over a spread oracle (Algorithm 1)",
    needs_oracle=True,
    stochastic=True,
)
def _greedy(
    ctx: SelectionContext,
    k: int,
    *,
    model: str = "cd",
    method: str | None = None,
    seed: int | None = None,
    checkpoints=None,
):
    return _oracle_family(
        ctx, k, greedy_maximize, model, method, seed, None,
        checkpoints=checkpoints,
    )


@register_selector(
    "celf",
    family="mc",
    description="CELF lazy-forward greedy (Leskovec et al., KDD 2007)",
    needs_oracle=True,
    supports_time_log=True,
    stochastic=True,
)
def _celf(
    ctx: SelectionContext,
    k: int,
    *,
    model: str = "cd",
    method: str | None = None,
    seed: int | None = None,
    time_log=None,
    checkpoints=None,
    state=None,
    state_out=None,
):
    return _oracle_family(
        ctx, k, celf_maximize, model, method, seed, time_log,
        checkpoints=checkpoints, state=state, state_out=state_out,
    )


@register_selector(
    "celfpp",
    family="mc",
    description="CELF++ lazier greedy (Goyal, Lu, Lakshmanan, WWW 2011)",
    needs_oracle=True,
    supports_time_log=True,
    stochastic=True,
)
def _celfpp(
    ctx: SelectionContext,
    k: int,
    *,
    model: str = "cd",
    method: str | None = None,
    seed: int | None = None,
    time_log=None,
    checkpoints=None,
    state=None,
    state_out=None,
):
    return _oracle_family(
        ctx, k, celfpp_maximize, model, method, seed, time_log,
        checkpoints=checkpoints, state=state, state_out=state_out,
    )


# ----------------------------------------------------------------------
# Sampling / path-enumeration estimators
# ----------------------------------------------------------------------
@register_selector(
    "ris",
    family="sketch",
    description="Reverse-influence sampling for IC (Borgs et al. / TIM line)",
    needs_probabilities=True,
    needs_sketches=True,
    stochastic=True,
)
def _ris(
    ctx: SelectionContext,
    k: int,
    *,
    method: str | None = None,
    num_rr_sets: int = 10_000,
    seed: int | None = None,
    hops: int | None = None,
    checkpoints=None,
):
    """Greedy coverage over the context's deterministic sketch batch.

    The sketches come from :meth:`SelectionContext.sketches` — warm
    starts and the runtime prefetch hand them over prebuilt — and the
    coverage maximization dispatches through the backend seam.  With
    the same base seed this is bit-identical to a direct
    :func:`~repro.maximization.ris.ris_maximize` call.
    """
    sketches = ctx.sketches(
        method=method, num_sketches=num_rr_sets, hops=hops, seed=seed
    )
    return ris_maximize(
        ctx.graph,
        ctx.ic_probabilities(method),
        k,
        sketches=sketches,
        backend=ctx.backend,
        checkpoints=checkpoints,
    )


@register_selector(
    "hop",
    family="sketch",
    description="Hop-limited RR-sketch coverage (1/2-hop bounds, "
                "Tang et al. 2017)",
    needs_probabilities=True,
    needs_sketches=True,
    stochastic=True,
)
def _hop(
    ctx: SelectionContext,
    k: int,
    *,
    method: str | None = None,
    num_sketches: int = 10_000,
    hops: int = 2,
    seed: int | None = None,
    checkpoints=None,
):
    """RIS with the reverse BFS truncated at ``hops`` edges.

    Trades a small downward spread bias for bounded work per sketch —
    the million-node fast path when cascades are short.
    """
    sketches = ctx.sketches(
        method=method, num_sketches=num_sketches, hops=hops, seed=seed
    )
    return ris_maximize(
        ctx.graph,
        ctx.ic_probabilities(method),
        k,
        sketches=sketches,
        backend=ctx.backend,
        checkpoints=checkpoints,
    )


@register_selector(
    "simpath",
    family="sketch",
    description="SimPath simple-path enumeration for LT (Goyal et al., ICDM 2011)",
    needs_weights=True,
)
def _simpath(ctx: SelectionContext, k: int, *, eta: float = 1e-3):
    return simpath_maximize(ctx.graph, ctx.lt_weights(), k, eta=eta)


# ----------------------------------------------------------------------
# Model-based heuristics
# ----------------------------------------------------------------------
@register_selector(
    "pmia",
    family="heuristic",
    description="PMIA arborescence heuristic for IC (Chen et al., KDD 2010)",
    needs_probabilities=True,
)
def _pmia(
    ctx: SelectionContext,
    k: int,
    *,
    method: str | None = None,
    theta: float = 1.0 / 320.0,
):
    return ctx.pmia_model(method, theta=theta).select_seeds(k)


@register_selector(
    "ldag",
    family="heuristic",
    description="LDAG local-DAG heuristic for LT (Chen et al., ICDM 2010)",
    needs_weights=True,
)
def _ldag(ctx: SelectionContext, k: int, *, theta: float = 1.0 / 320.0):
    return ctx.ldag_model(theta=theta).select_seeds(k)


@register_selector(
    "irie",
    family="heuristic",
    description="IRIE rank-and-estimate heuristic for IC (Jung et al., ICDM 2012)",
    needs_probabilities=True,
)
def _irie(
    ctx: SelectionContext,
    k: int,
    *,
    method: str | None = None,
    alpha: float = 0.7,
    iterations: int = 20,
):
    return irie_seeds(
        ctx.graph,
        ctx.ic_probabilities(method),
        k,
        alpha=alpha,
        iterations=iterations,
    )


# ----------------------------------------------------------------------
# Structural heuristics (no training log required)
# ----------------------------------------------------------------------
@register_selector(
    "high_degree",
    family="heuristic",
    description="Top-k nodes by degree (Figure-6 structural baseline)",
)
def _high_degree(ctx: SelectionContext, k: int, *, direction: str = "out"):
    return high_degree_seeds(ctx.graph, k, direction=direction)


@register_selector(
    "pagerank",
    family="heuristic",
    description="Top-k nodes by PageRank (Figure-6 structural baseline)",
)
def _pagerank(ctx: SelectionContext, k: int, *, damping: float = 0.85):
    return pagerank_seeds(ctx.graph, k, damping=damping)


@register_selector(
    "single_discount",
    family="heuristic",
    description="SingleDiscount degree heuristic (Chen et al., KDD 2009)",
)
def _single_discount(ctx: SelectionContext, k: int):
    return single_discount_seeds(ctx.graph, k)


@register_selector(
    "degree_discount",
    family="heuristic",
    description="DegreeDiscountIC heuristic (Chen et al., KDD 2009)",
)
def _degree_discount(
    ctx: SelectionContext, k: int, *, probability: float = 0.01
):
    return degree_discount_ic_seeds(ctx.graph, k, probability=probability)
