"""The selector registry: one name per algorithm, one calling convention.

Every seed-selection algorithm in the library registers here as a
:class:`SelectorSpec` — a name, a family tag, capability flags and an
adapter function.  Everything downstream (the experiment runner, the
CLI, the benchmarks, the examples) asks the registry instead of
importing algorithms directly, so adding an algorithm — or a remote
backend — to the whole toolchain is one :func:`register_selector` call.

Adapter contract: ``adapter(context, k, **params)`` receives a
:class:`~repro.api.context.SelectionContext` and returns either a
legacy result (:class:`~repro.maximization.greedy.GreedyResult`,
:class:`~repro.maximization.ris.RISResult`, or a bare seed list) or a
ready :class:`~repro.api.results.SeedSelection`; the registry coerces
and stamps it uniformly.  Adapters *wrap* the public algorithm
functions — they never reimplement them — which is what keeps registry
dispatch byte-identical to a direct call.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.api.context import SelectionContext
from repro.api.results import SeedSelection
from repro.maximization.greedy import GreedyResult
from repro.maximization.ris import RISResult
from repro.utils.validation import require

__all__ = [
    "SelectorSpec",
    "Selector",
    "register_selector",
    "get_selector",
    "list_selectors",
    "selector_names",
]

FAMILIES = ("cd", "mc", "sketch", "heuristic")

# Adapter keywords that are instrumentation channels, not algorithm
# parameters: they never appear in ``param_names()`` (so they cannot be
# bound, and never land in ``SeedSelection.params`` or store keys) and
# are only reachable through ``Selector.select(..., extras=...)``.
_INSTRUMENTATION_PARAMS = ("time_log", "checkpoints", "state", "state_out")

_REGISTRY: dict[str, "SelectorSpec"] = {}


@dataclass(frozen=True)
class SelectorSpec:
    """Registry entry describing one selection algorithm.

    Attributes
    ----------
    name:
        Registry key (``repro list-selectors`` shows all of them).
    family:
        ``cd`` (credit distribution), ``mc`` (greedy over a spread
        oracle), ``sketch`` (sampling / path-enumeration estimators) or
        ``heuristic`` (structural and model-based heuristics).
    func:
        The adapter callable (see module docstring for the contract).
    description:
        One-line summary for listings.
    needs_oracle / needs_index / needs_probabilities / needs_weights /
    needs_sketches:
        Which shared artifacts the selector pulls from the context —
        i.e. what a caller must be able to provide (a training log is
        required for everything except the purely structural selectors).
        ``needs_sketches`` marks the reverse-reachability consumers
        (``ris``/``hop``): the runtime prefetches their sketch batches
        under parallel executors and :mod:`repro.store` persists them.
    supports_budget:
        Whether the selector understands per-seed costs (reserved for
        budgeted selectors; none of the built-ins do yet).
    supports_time_log:
        Whether the adapter can record the cumulative runtime-vs-k
        curve (Figure-7 instrumentation) into
        ``SeedSelection.metadata["time_log"]``.
    stochastic:
        Whether the selector consumes randomness.  Stochastic adapters
        accept a ``seed`` parameter, and the experiment runner injects
        a deterministic per-trial seed when the caller did not pin one.
    """

    name: str
    family: str
    func: Callable[..., Any] = field(repr=False, compare=False)
    description: str = ""
    needs_oracle: bool = False
    needs_index: bool = False
    needs_probabilities: bool = False
    needs_weights: bool = False
    needs_sketches: bool = False
    supports_budget: bool = False
    supports_time_log: bool = False
    stochastic: bool = False

    def capabilities(self) -> dict[str, bool]:
        """The capability flags as one mapping (for listings/export)."""
        return {
            "needs_oracle": self.needs_oracle,
            "needs_index": self.needs_index,
            "needs_probabilities": self.needs_probabilities,
            "needs_weights": self.needs_weights,
            "needs_sketches": self.needs_sketches,
            "supports_budget": self.supports_budget,
            "supports_time_log": self.supports_time_log,
            "stochastic": self.stochastic,
        }

    def param_names(self) -> list[str]:
        """Keyword parameters the adapter accepts (beyond context, k)."""
        signature = inspect.signature(self.func)
        return [
            name
            for name, parameter in signature.parameters.items()
            if parameter.kind == inspect.Parameter.KEYWORD_ONLY
            and name not in _INSTRUMENTATION_PARAMS
        ]


class Selector:
    """A registry selector bound to a concrete parameter set.

    Calling it with ``(context, k)`` runs the algorithm and returns a
    :class:`~repro.api.results.SeedSelection` stamped with the selector
    name, the bound parameters and the measured wall time.
    """

    def __init__(self, spec: SelectorSpec, params: Mapping[str, Any]) -> None:
        allowed = set(spec.param_names())
        unknown = sorted(set(params) - allowed)
        require(
            not unknown,
            f"selector {spec.name!r} got unknown parameter(s) {unknown}; "
            f"accepted: {sorted(allowed)}",
        )
        self.spec = spec
        self.params = dict(params)

    @property
    def name(self) -> str:
        """The registry name of the underlying selector."""
        return self.spec.name

    def with_params(self, **params: Any) -> "Selector":
        """A copy with ``params`` merged over the current binding."""
        return Selector(self.spec, {**self.params, **params})

    def select(
        self,
        context: SelectionContext,
        k: int,
        extras: Mapping[str, Any] | None = None,
    ) -> SeedSelection:
        """Run the selector for ``k`` seeds against ``context``.

        ``extras`` passes instrumentation channels (``checkpoints``,
        ``state``, ``state_out`` — see :mod:`repro.store.prefix`)
        straight to the adapter without recording them as parameters:
        the returned selection's ``params`` — and therefore every
        derived cache key — is identical with or without them.
        """
        require(k >= 0, f"k must be non-negative, got {k}")
        kwargs = dict(self.params)
        if extras:
            unknown = sorted(set(extras) - set(_INSTRUMENTATION_PARAMS))
            require(
                not unknown,
                f"unknown instrumentation channel(s) {unknown}; "
                f"accepted: {sorted(_INSTRUMENTATION_PARAMS)}",
            )
            kwargs.update(extras)
        time_log: list[tuple[int, float]] | None = None
        if self.spec.supports_time_log and "time_log" not in kwargs:
            time_log = []
            kwargs["time_log"] = time_log
        started = time.perf_counter()
        raw = self.spec.func(context, k, **kwargs)
        elapsed = time.perf_counter() - started
        selection = self._coerce(raw, elapsed)
        if time_log:
            selection.metadata.setdefault(
                "time_log", [list(entry) for entry in time_log]
            )
        return selection

    __call__ = select

    def _coerce(self, raw: Any, elapsed: float) -> SeedSelection:
        if isinstance(raw, SeedSelection):
            raw.selector = raw.selector or self.spec.name
            raw.params = {**self.params, **raw.params}
            raw.wall_time_s = raw.wall_time_s or elapsed
            return raw
        if isinstance(raw, RISResult):
            return SeedSelection.from_ris_result(
                raw,
                selector=self.spec.name,
                params=self.params,
                wall_time_s=elapsed,
            )
        if isinstance(raw, GreedyResult):
            return SeedSelection.from_greedy_result(
                raw,
                selector=self.spec.name,
                params=self.params,
                wall_time_s=elapsed,
            )
        if isinstance(raw, list):
            return SeedSelection.from_seeds(
                raw,
                selector=self.spec.name,
                params=self.params,
                wall_time_s=elapsed,
            )
        raise TypeError(
            f"selector {self.spec.name!r} returned {type(raw).__name__}; "
            "expected SeedSelection, GreedyResult, RISResult or list"
        )


def register_selector(
    name: str,
    family: str,
    description: str = "",
    **capabilities: bool,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering an adapter function under ``name``.

    ``capabilities`` are the boolean :class:`SelectorSpec` flags
    (``needs_oracle``, ``needs_index``, ``needs_probabilities``,
    ``needs_weights``, ``needs_sketches``, ``supports_budget``,
    ``supports_time_log``, ``stochastic``).
    """
    require(
        family in FAMILIES, f"family must be one of {FAMILIES}, got {family!r}"
    )
    require(
        name not in _REGISTRY, f"selector {name!r} is already registered"
    )

    def decorator(func: Callable[..., Any]) -> Callable[..., Any]:
        _REGISTRY[name] = SelectorSpec(
            name=name,
            family=family,
            func=func,
            description=description or (func.__doc__ or "").strip().split("\n")[0],
            **capabilities,
        )
        return func

    return decorator


def get_selector(name: str, **params: Any) -> Selector:
    """Look up ``name`` and bind ``params``, validating both."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown selector {name!r}; available: {selector_names()}"
        )
    return Selector(_REGISTRY[name], params)


def list_selectors(family: str | None = None) -> list[SelectorSpec]:
    """All registered specs (optionally one family), sorted by name."""
    if family is not None:
        require(
            family in FAMILIES,
            f"family must be one of {FAMILIES}, got {family!r}",
        )
    return sorted(
        (
            spec
            for spec in _REGISTRY.values()
            if family is None or spec.family == family
        ),
        key=lambda spec: spec.name,
    )


def selector_names() -> list[str]:
    """Sorted registry names."""
    return sorted(_REGISTRY)
