"""Declarative experiments: config in, comparable selections out.

The paper's evaluation is one pipeline repeated many times — build a
dataset, split the action log, learn probabilities/weights/credits,
select seeds with each method, score every seed set under the CD proxy.
:func:`run_experiment` owns that pipeline exactly once;
:class:`ExperimentConfig` names the knobs (dataset, probability method,
selectors, k-grid, trials, RNG seed) and everything else — the CLI's
``repro run``, the comparison benchmarks, the examples — is a thin
consumer of the :class:`ExperimentResult`.

Determinism: ``ExperimentConfig.seed`` fans out through
:meth:`~repro.api.context.SelectionContext.derive_seed`, so stochastic
selectors get stable per-(selector, trial) child seeds and the same
config always reproduces the same seed sets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import repro.api.adapters  # noqa: F401  (ensures built-ins are registered)
from repro.api.context import IC_PROBABILITY_METHODS, SelectionContext
from repro.api.registry import Selector, get_selector
from repro.api.results import SeedSelection
from repro.data.datasets import Dataset
from repro.data.split import train_test_split
from repro.utils.timing import Timer
from repro.utils.validation import require

__all__ = [
    "SelectorConfig",
    "ExperimentConfig",
    "SelectorRun",
    "ExperimentResult",
    "run_experiment",
]

_DATASETS = ("toy", "flixster", "flickr")
_SCALES = ("mini", "small", "large")


@dataclass(frozen=True)
class SelectorConfig:
    """One selector entry of an experiment: name, parameters, label."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def display(self) -> str:
        """The label, defaulting to the registry name."""
        return self.label or self.name

    @classmethod
    def coerce(cls, value: "str | Mapping[str, Any] | SelectorConfig"):
        """Accept ``"cd"``, ``{"name": ..., "params": ..., "label": ...}``."""
        if isinstance(value, SelectorConfig):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            extra = set(value) - {"name", "params", "label"}
            require(
                not extra,
                f"selector entry has unknown key(s) {sorted(extra)}",
            )
            require("name" in value, "selector entry needs a 'name'")
            return cls(
                name=str(value["name"]),
                params=dict(value.get("params", {})),
                label=str(value.get("label", "")),
            )
        raise ValueError(
            f"selector entry must be a name, mapping or SelectorConfig, "
            f"got {type(value).__name__}"
        )


@dataclass
class ExperimentConfig:
    """Everything :func:`run_experiment` needs, JSON-representable.

    Attributes
    ----------
    dataset:
        ``"toy"``, ``"flixster"`` or ``"flickr"``.
    scale:
        Dataset scale (``mini``/``small``/``large``; ignored by the toy
        example).
    dataset_seed:
        Overrides the dataset preset's RNG seed.
    selectors:
        Selector entries — names, or mappings with ``name``/``params``/
        ``label``.  Labels must be unique; they default to the name.
    ks:
        The k-grid: selection runs once at ``max(ks)`` and every prefix
        on the grid is evaluated (greedy-style selectors all produce
        nested prefixes).
    trials:
        Repetitions per selector, each with a deterministically derived
        child seed (only stochastic selectors differ across trials).
    seed:
        Base RNG seed; see the module docstring for the fan-out rule.
    probability_method:
        Default IC probability assignment for selectors that need one.
    num_simulations / truncation:
        Forwarded to the :class:`~repro.api.context.SelectionContext`.
    split / split_every:
        Whether (and how) to 80/20-split the action log; learning uses
        the training fold.
    backend:
        Compute backend for the hot paths: ``"python"`` (reference
        implementations), ``"numpy"`` (the vectorized kernels of
        :mod:`repro.kernels`) or ``"auto"`` (defer to the
        ``REPRO_BACKEND`` environment variable, default ``python``).
        Forwarded to the :class:`~repro.api.context.SelectionContext`;
        ignored when a pre-built context is passed in.
    evaluate_spread:
        Score every selection's k-prefixes under the CD proxy (Figure-6
        yardstick).  Disable for pure-runtime experiments (Figure 7).
    """

    dataset: str = "flixster"
    scale: str = "mini"
    dataset_seed: int | None = None
    selectors: Sequence[Any] = field(default_factory=lambda: ["cd"])
    ks: Sequence[int] = field(default_factory=lambda: [5])
    trials: int = 1
    seed: int = 7
    probability_method: str = "EM"
    num_simulations: int = 100
    truncation: float = 0.001
    split: bool = True
    split_every: int = 5
    backend: str = "auto"
    evaluate_spread: bool = True

    def __post_init__(self) -> None:
        require(
            self.dataset in _DATASETS,
            f"dataset must be one of {_DATASETS}, got {self.dataset!r}",
        )
        require(
            self.scale in _SCALES,
            f"scale must be one of {_SCALES}, got {self.scale!r}",
        )
        self.selectors = [SelectorConfig.coerce(s) for s in self.selectors]
        require(bool(self.selectors), "selectors must be non-empty")
        labels = [s.display() for s in self.selectors]
        require(
            len(set(labels)) == len(labels),
            f"selector labels must be unique, got {labels}; "
            "give duplicates a distinct 'label'",
        )
        self.ks = sorted({int(k) for k in self.ks})
        require(bool(self.ks), "ks must be non-empty")
        require(self.ks[0] >= 1, f"every k must be >= 1, got {self.ks[0]}")
        require(self.trials >= 1, f"trials must be >= 1, got {self.trials}")
        require(
            self.probability_method in IC_PROBABILITY_METHODS,
            f"probability_method must be one of {IC_PROBABILITY_METHODS}, "
            f"got {self.probability_method!r}",
        )
        require(
            self.split_every >= 2,
            f"split_every must be >= 2, got {self.split_every}",
        )
        require(
            self.backend in ("auto", "python", "numpy"),
            f"backend must be one of ('auto', 'python', 'numpy'), "
            f"got {self.backend!r}",
        )
        if self.dataset == "toy":
            # The Figure-1 running example is a single action trace; a
            # train/test split would leave nothing to learn from.
            self.split = False
        # Fail fast on unknown selectors / parameters.
        for entry in self.selectors:
            get_selector(entry.name, **entry.params)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-representable view of the config."""
        return {
            "dataset": self.dataset,
            "scale": self.scale,
            "dataset_seed": self.dataset_seed,
            "selectors": [
                {"name": s.name, "params": dict(s.params), "label": s.label}
                for s in self.selectors
            ],
            "ks": list(self.ks),
            "trials": self.trials,
            "seed": self.seed,
            "probability_method": self.probability_method,
            "num_simulations": self.num_simulations,
            "truncation": self.truncation,
            "split": self.split,
            "split_every": self.split_every,
            "backend": self.backend,
            "evaluate_spread": self.evaluate_spread,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentConfig":
        """Build a config from a plain mapping (e.g. parsed JSON)."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        extra = set(payload) - known
        require(
            not extra,
            f"config has unknown key(s) {sorted(extra)}; known: {sorted(known)}",
        )
        return cls(**dict(payload))

    @classmethod
    def from_json_file(cls, path: str) -> "ExperimentConfig":
        """Load a config from a JSON file (the ``repro run`` format)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


@dataclass
class SelectorRun:
    """One (selector, trial) cell of an experiment."""

    label: str
    trial: int
    selection: SeedSelection
    curve: list[tuple[int, float]] = field(default_factory=list)

    def final_spread(self) -> float | None:
        """CD-proxy spread at the largest evaluated k (None if unscored)."""
        return self.curve[-1][1] if self.curve else None


@dataclass
class ExperimentResult:
    """Everything :func:`run_experiment` measured."""

    config: ExperimentConfig
    dataset_name: str
    runs: list[SelectorRun] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)

    def labels(self) -> list[str]:
        """Selector labels in config order."""
        return [entry.display() for entry in self.config.selectors]

    def selections(self, label: str) -> list[SeedSelection]:
        """All trials' selections for ``label``."""
        found = [run.selection for run in self.runs if run.label == label]
        require(bool(found), f"no runs for selector label {label!r}")
        return found

    def spread_series(self) -> dict[str, list[tuple[float, float]]]:
        """Per-label ``(k, CD-proxy spread)`` series, averaged over trials."""
        series: dict[str, list[tuple[float, float]]] = {}
        for label in self.labels():
            curves = [run.curve for run in self.runs if run.label == label]
            curves = [curve for curve in curves if curve]
            if not curves:
                continue
            points = []
            for index, (k, _) in enumerate(curves[0]):
                mean = sum(curve[index][1] for curve in curves) / len(curves)
                points.append((float(k), mean))
            series[label] = points
        return series

    def final_spreads(self) -> dict[str, float]:
        """Per-label CD-proxy spread at the largest k (trial-averaged)."""
        return {
            label: points[-1][1]
            for label, points in self.spread_series().items()
        }

    def runtime_curves(self) -> dict[str, list[tuple[int, float]]]:
        """Per-label cumulative runtime-vs-k curves (first trial).

        Only selectors whose adapter supports ``time_log`` appear;
        entries include lazily triggered artifact-building time.
        """
        curves: dict[str, list[tuple[int, float]]] = {}
        for label in self.labels():
            for run in self.runs:
                if run.label != label:
                    continue
                log = run.selection.metadata.get("time_log")
                if log:
                    curves[label] = [(int(c), float(s)) for c, s in log]
                break
        return curves

    def render(self) -> str:
        """A printable summary table (the ``repro run`` output)."""
        from repro.evaluation.reporting import format_table

        k_max = self.config.ks[-1]
        rows = []
        for run in self.runs:
            selection = run.selection
            proxy = run.final_spread()
            rows.append(
                [
                    run.label,
                    run.trial,
                    len(selection.seeds),
                    "-" if proxy is None else f"{proxy:.2f}",
                    "-" if selection.spread is None
                    else f"{selection.spread:.2f}",
                    f"{selection.wall_time_s:.2f}s",
                    selection.oracle_calls or "-",
                ]
            )
        return format_table(
            [
                "selector", "trial", "#seeds", "sigma_cd proxy",
                "own estimate", "time", "oracle calls",
            ],
            rows,
            title=(
                f"experiment on {self.dataset_name} "
                f"(k={k_max}, seed={self.config.seed})"
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-representable view of the full result."""
        return {
            "config": self.config.to_dict(),
            "dataset": self.dataset_name,
            "timings": dict(self.timings),
            "runs": [
                {
                    "label": run.label,
                    "trial": run.trial,
                    "curve": [[k, spread] for k, spread in run.curve],
                    "selection": run.selection.to_dict(),
                }
                for run in self.runs
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise to JSON (see :meth:`to_dict` for the schema)."""
        return json.dumps(self.to_dict(), indent=indent)


def _make_dataset(config: ExperimentConfig) -> Dataset:
    # Resolve the makers through the module so test harnesses that
    # monkeypatch repro.data.datasets redirect experiments too.
    from repro.data import datasets

    if config.dataset == "toy":
        return datasets.toy_example()
    maker = (
        datasets.flixster_like
        if config.dataset == "flixster"
        else datasets.flickr_like
    )
    if config.dataset_seed is None:
        return maker(config.scale)
    return maker(config.scale, seed=config.dataset_seed)


def _bind(config: ExperimentConfig, entry: SelectorConfig,
          context: SelectionContext, trial: int) -> Selector:
    """Bind the selector, injecting a derived per-trial seed if stochastic."""
    selector = get_selector(entry.name, **entry.params)
    if selector.spec.stochastic and "seed" not in selector.params:
        selector = selector.with_params(
            seed=context.derive_seed(entry.name, trial)
        )
    return selector


def run_experiment(
    config: ExperimentConfig,
    dataset: Dataset | None = None,
    context: SelectionContext | None = None,
) -> ExperimentResult:
    """Run the full dataset→split→learn→select→evaluate pipeline.

    Parameters
    ----------
    config:
        The experiment description.
    dataset:
        Pre-built dataset to use instead of constructing one from the
        config (benchmark fixtures pass their session-scoped datasets
        here so the synthesis cost is shared).
    context:
        Pre-built :class:`~repro.api.context.SelectionContext` to share
        learned artifacts across experiments.  When given, the dataset/
        split stages are skipped entirely and the context's graph/log
        are authoritative.
    """
    timings: dict[str, float] = {}
    if context is None:
        with Timer() as timer:
            data = dataset if dataset is not None else _make_dataset(config)
        timings["dataset_s"] = timer.elapsed
        with Timer() as timer:
            if config.split:
                train, _ = train_test_split(data.log, every=config.split_every)
            else:
                train = data.log
        timings["split_s"] = timer.elapsed
        context = SelectionContext(
            data.graph,
            train,
            probability_method=config.probability_method,
            num_simulations=config.num_simulations,
            truncation=config.truncation,
            seed=config.seed,
            backend=config.backend,
        )
        dataset_name = data.name
    else:
        dataset_name = dataset.name if dataset is not None else "context"

    result = ExperimentResult(config=config, dataset_name=dataset_name)
    k_max = config.ks[-1]
    with Timer() as select_timer:
        for entry in config.selectors:
            for trial in range(config.trials):
                selector = _bind(config, entry, context, trial)
                selection = selector.select(context, k_max)
                result.runs.append(
                    SelectorRun(
                        label=entry.display(),
                        trial=trial,
                        selection=selection,
                    )
                )
    timings["select_s"] = select_timer.elapsed
    if config.evaluate_spread:
        with Timer() as evaluate_timer:
            evaluator = context.cd_evaluator()
            for run in result.runs:
                run.curve = [
                    (k, evaluator.spread(run.selection.seeds_at(k)))
                    for k in config.ks
                ]
        timings["evaluate_s"] = evaluate_timer.elapsed
    result.timings = timings
    return result
