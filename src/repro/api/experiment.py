"""Declarative experiments: config in, comparable results out.

The paper's evaluation is two protocols over one pipeline shape —
*selection* (build a dataset, split the action log, learn
probabilities/weights/credits, select seeds with each method, score
every seed set under the CD proxy; Figures 6-9) and *prediction* (fit
every model on the training traces, predict each held-out trace's
spread from its initiators, score the predictions; Figures 2-4).
:class:`ExperimentConfig` names the knobs for both (``task`` picks the
protocol) and :func:`run_experiment` compiles the config into the
:mod:`repro.runtime` stage pipeline; everything else — the CLI's
``repro run``, the comparison benchmarks, the examples — is a thin
consumer of the :class:`ExperimentResult`.

Determinism: ``ExperimentConfig.seed`` fans out through
:meth:`~repro.api.context.SelectionContext.derive_seed`, so stochastic
selectors get stable per-(selector, trial) child seeds, Monte-Carlo
batches and prediction methods get stable per-task streams, and the
same config always reproduces the same result on every executor.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import repro.api.adapters  # noqa: F401  (ensures built-ins are registered)
from repro.api.context import IC_PROBABILITY_METHODS, SelectionContext
from repro.api.registry import Selector, SelectorSpec, get_selector
from repro.api.results import SeedSelection
from repro.data.datasets import Dataset
from repro.runtime.executor import EXECUTORS
from repro.utils.validation import ConfigError, require, require_config

__all__ = [
    "ConfigError",
    "SelectorConfig",
    "ExperimentConfig",
    "SelectorRun",
    "ExperimentResult",
    "run_experiment",
    "TASKS",
    "PREDICTION_METHODS",
]

_DATASETS = ("toy", "flixster", "flickr")
_SCALES = ("mini", "small", "large")

TASKS = ("selection", "prediction")
# Prediction-protocol model names: the five IC probability assignments
# (Figure 2) plus the Figure-3 trio (IC = EM-learned IC, LT, CD).
PREDICTION_METHODS = ("UN", "TV", "WC", "EM", "PT", "IC", "LT", "CD")


@dataclass(frozen=True)
class SelectorConfig:
    """One selector entry of an experiment: name, parameters, label."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def display(self) -> str:
        """The label, defaulting to the registry name."""
        return self.label or self.name

    @classmethod
    def coerce(cls, value: "str | Mapping[str, Any] | SelectorConfig"):
        """Accept ``"cd"``, ``{"name": ..., "params": ..., "label": ...}``."""
        if isinstance(value, SelectorConfig):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            extra = set(value) - {"name", "params", "label"}
            require(
                not extra,
                f"selector entry has unknown key(s) {sorted(extra)}",
            )
            require("name" in value, "selector entry needs a 'name'")
            return cls(
                name=str(value["name"]),
                params=dict(value.get("params", {})),
                label=str(value.get("label", "")),
            )
        raise ValueError(
            f"selector entry must be a name, mapping or SelectorConfig, "
            f"got {type(value).__name__}"
        )


@dataclass
class ExperimentConfig:
    """Everything :func:`run_experiment` needs, JSON-representable.

    Attributes
    ----------
    task:
        ``"selection"`` (the seed-selection protocol, Figures 6-9) or
        ``"prediction"`` (the spread-prediction protocol, Figures 2-4).
    dataset:
        ``"toy"``, ``"flixster"`` or ``"flickr"``.
    scale:
        Dataset scale (``mini``/``small``/``large``; ignored by the toy
        example).
    dataset_seed:
        Overrides the dataset preset's RNG seed.
    selectors:
        Selector entries — names, or mappings with ``name``/``params``/
        ``label``.  Labels must be unique; they default to the name.
    ks:
        The k-grid: selection runs once at ``max(ks)`` and every prefix
        on the grid is evaluated (greedy-style selectors all produce
        nested prefixes).
    trials:
        Repetitions per selector, each with a deterministically derived
        child seed (only stochastic selectors differ across trials).
    seed:
        Base RNG seed; see the module docstring for the fan-out rule.
    probability_method:
        Default IC probability assignment for selectors that need one.
    num_simulations / truncation:
        Forwarded to the :class:`~repro.api.context.SelectionContext`.
    split / split_every:
        Whether (and how) to 80/20-split the action log; learning uses
        the training fold.
    backend:
        Compute backend for the hot paths: ``"python"`` (reference
        implementations), ``"numpy"`` (the vectorized kernels of
        :mod:`repro.kernels`) or ``"auto"`` (defer to the
        ``REPRO_BACKEND`` environment variable, default ``python``).
        Forwarded to the :class:`~repro.api.context.SelectionContext`;
        ignored when a pre-built context is passed in.
    evaluate_spread:
        Score every selection's k-prefixes under the CD proxy (Figure-6
        yardstick).  Disable for pure-runtime experiments (Figure 7).
    executor / max_workers:
        Where the pipeline's independent units run: ``"serial"``,
        ``"thread"``, ``"process"``, or ``"auto"`` (defer to the
        ``REPRO_EXECUTOR`` environment variable, default ``serial``).
        Results are bit-identical across executors — only wall time
        changes.  ``max_workers`` defaults to the CPU count.
    store / warm_start:
        ``store`` names an :class:`~repro.store.store.ArtifactStore`
        directory; the runtime learn stage then consults it before any
        fan-out — stored artifacts for this (dataset fingerprint, split
        spec, learn spec) are loaded instead of learned, misses are
        learned once and saved back, and
        ``ExperimentResult.store_events`` records which was which.  A
        store hit skips learning entirely and returns results identical
        to the cold run on every executor.  ``warm_start=False`` keeps
        the store write-only (re-learn and refresh: cache priming).
    delta:
        Optional path to an action-log delta file
        (:func:`repro.stream.delta.load_action_log_delta` format).  The
        selection pipeline then runs an ``ingest`` stage after
        ``learn``: the delta's closed traces are folded into the
        learned artifacts (:func:`repro.stream.update.fold_delta`) and
        selection proceeds over the *union* log — with ``store`` set,
        the fold goes through :func:`repro.stream.derive.derive_bundle`
        so the derived bundle is committed with its lineage link.
    budget:
        Optional budget workload for the selection task: the total
        seed-cost cap handed to budget-aware selectors
        (``supports_budget``).  Configuring a budget with a selector
        that lacks the flag raises :class:`ConfigError` up front.
    methods:
        Prediction-task model line-up (see :data:`PREDICTION_METHODS`):
        ``UN``/``TV``/``WC``/``EM``/``PT`` are the Figure-2 IC
        probability assignments, ``IC`` (EM-learned IC), ``LT`` and
        ``CD`` the Figure-3 trio.  Ignored by the selection task.
    max_test_traces:
        Prediction-task cap on evaluated held-out traces (stratified
        over the size ranking); ``None`` evaluates all of them.
    """

    dataset: str = "flixster"
    scale: str = "mini"
    dataset_seed: int | None = None
    selectors: Sequence[Any] = field(default_factory=lambda: ["cd"])
    ks: Sequence[int] = field(default_factory=lambda: [5])
    trials: int = 1
    seed: int = 7
    probability_method: str = "EM"
    num_simulations: int = 100
    truncation: float = 0.001
    split: bool = True
    split_every: int = 5
    backend: str = "auto"
    evaluate_spread: bool = True
    task: str = "selection"
    executor: str = "auto"
    max_workers: int | None = None
    store: str | None = None
    warm_start: bool = True
    delta: str | None = None
    budget: float | None = None
    methods: Sequence[str] = field(default_factory=lambda: ["IC", "LT", "CD"])
    max_test_traces: int | None = None

    def __post_init__(self) -> None:
        require(
            self.task in TASKS,
            f"task must be one of {TASKS}, got {self.task!r}",
        )
        require(
            self.dataset in _DATASETS,
            f"dataset must be one of {_DATASETS}, got {self.dataset!r}",
        )
        require(
            self.scale in _SCALES,
            f"scale must be one of {_SCALES}, got {self.scale!r}",
        )
        self.selectors = [SelectorConfig.coerce(s) for s in self.selectors]
        require(bool(self.selectors), "selectors must be non-empty")
        labels = [s.display() for s in self.selectors]
        require(
            len(set(labels)) == len(labels),
            f"selector labels must be unique, got {labels}; "
            "give duplicates a distinct 'label'",
        )
        self.ks = sorted({int(k) for k in self.ks})
        require(bool(self.ks), "ks must be non-empty")
        require(self.ks[0] >= 1, f"every k must be >= 1, got {self.ks[0]}")
        require(self.trials >= 1, f"trials must be >= 1, got {self.trials}")
        require(
            self.probability_method in IC_PROBABILITY_METHODS,
            f"probability_method must be one of {IC_PROBABILITY_METHODS}, "
            f"got {self.probability_method!r}",
        )
        require(
            self.split_every >= 2,
            f"split_every must be >= 2, got {self.split_every}",
        )
        require(
            self.backend in ("auto", "python", "numpy"),
            f"backend must be one of ('auto', 'python', 'numpy'), "
            f"got {self.backend!r}",
        )
        require(
            self.executor in EXECUTORS + ("auto",),
            f"executor must be one of {EXECUTORS + ('auto',)}, "
            f"got {self.executor!r}",
        )
        require(
            self.max_workers is None or self.max_workers >= 1,
            f"max_workers must be >= 1, got {self.max_workers}",
        )
        require(
            self.store is None or isinstance(self.store, str),
            f"store must be a directory path or None, got {self.store!r}",
        )
        require(
            isinstance(self.warm_start, bool),
            f"warm_start must be a bool, got {self.warm_start!r}",
        )
        require(
            self.delta is None or isinstance(self.delta, str),
            f"delta must be a file path or None, got {self.delta!r}",
        )
        if self.delta is not None:
            require_config(
                self.task == "selection",
                "delta ingest extends the learned selection context; the "
                "prediction task re-splits the raw dataset and has no "
                "ingest stage",
            )
        require(
            self.budget is None or self.budget > 0,
            f"budget must be positive, got {self.budget}",
        )
        self.methods = [str(m) for m in self.methods]
        require(bool(self.methods), "methods must be non-empty")
        unknown_methods = [
            m for m in self.methods if m not in PREDICTION_METHODS
        ]
        require(
            not unknown_methods,
            f"unknown prediction method(s) {unknown_methods}; "
            f"known: {list(PREDICTION_METHODS)}",
        )
        require(
            len(set(self.methods)) == len(self.methods),
            f"prediction methods must be unique, got {self.methods}",
        )
        require(
            self.max_test_traces is None or self.max_test_traces >= 1,
            f"max_test_traces must be >= 1, got {self.max_test_traces}",
        )
        if self.dataset == "toy":
            # The Figure-1 running example is a single action trace; a
            # train/test split would leave nothing to learn from.
            self.split = False
        if self.task == "prediction":
            require_config(
                self.dataset != "toy",
                "the prediction task holds out test traces via the 80/20 "
                "split; the single-trace toy example cannot be split",
            )
            require_config(
                self.split,
                "the prediction task requires split=True (its test traces "
                "are the held-out fold)",
            )
            require_config(
                self.budget is None,
                "budget is a selection-task workload; it does not apply "
                "to task='prediction'",
            )
        # Fail fast on unknown selectors / parameters, and make the
        # supports_budget capability flag load-bearing: a budget
        # workload is rejected up front unless every selector opts in.
        for entry in self.selectors:
            selector = get_selector(entry.name, **entry.params)
            if self.budget is not None:
                require_config(
                    selector.spec.supports_budget,
                    f"selector {entry.display()!r} does not support budget "
                    "workloads (supports_budget=False); budget-aware "
                    "selectors: "
                    f"{_budget_selector_names()}",
                )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-representable view of the config."""
        return {
            "task": self.task,
            "dataset": self.dataset,
            "scale": self.scale,
            "dataset_seed": self.dataset_seed,
            "selectors": [
                {"name": s.name, "params": dict(s.params), "label": s.label}
                for s in self.selectors
            ],
            "ks": list(self.ks),
            "trials": self.trials,
            "seed": self.seed,
            "probability_method": self.probability_method,
            "num_simulations": self.num_simulations,
            "truncation": self.truncation,
            "split": self.split,
            "split_every": self.split_every,
            "backend": self.backend,
            "evaluate_spread": self.evaluate_spread,
            "executor": self.executor,
            "max_workers": self.max_workers,
            "store": self.store,
            "warm_start": self.warm_start,
            "delta": self.delta,
            "budget": self.budget,
            "methods": list(self.methods),
            "max_test_traces": self.max_test_traces,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentConfig":
        """Build a config from a plain mapping (e.g. parsed JSON)."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        extra = set(payload) - known
        require(
            not extra,
            f"config has unknown key(s) {sorted(extra)}; known: {sorted(known)}",
        )
        return cls(**dict(payload))

    @classmethod
    def from_json_file(cls, path: str) -> "ExperimentConfig":
        """Load a config from a JSON file (the ``repro run`` format)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def _budget_selector_names() -> list[str]:
    """Registry names of the budget-aware selectors (for error messages)."""
    from repro.api.registry import list_selectors

    return [s.name for s in list_selectors() if s.supports_budget]


def _missing_artifacts(
    spec: SelectorSpec, params: Mapping[str, Any], config: "ExperimentConfig"
) -> list[str]:
    """Learned artifacts ``spec`` needs that require a training log.

    This is the capability-flag routing rule the pipeline's learn stage
    consumes: ``needs_index``/``needs_weights`` always require the log;
    ``needs_probabilities`` — and ``needs_sketches``, whose RR batches
    are drawn over those probabilities — only when the resolved
    assignment method is learned (``EM``/``PT``); ``needs_oracle``
    depending on the bound ``model`` (the CD evaluator and LT weights
    are learned, IC follows the probability rule).
    """
    method = params.get("method") or config.probability_method
    model = params.get("model", "cd")
    missing: list[str] = []
    if spec.needs_index:
        missing.append("the Algorithm-2 credit index")
    if spec.needs_weights:
        missing.append("learned LT weights")
    if spec.needs_probabilities and method in ("EM", "PT"):
        missing.append(f"{method}-learned IC probabilities")
    if spec.needs_sketches and method in ("EM", "PT"):
        missing.append(
            f"reverse-reachability sketches over {method}-learned "
            "probabilities"
        )
    if spec.needs_oracle:
        if model == "cd":
            missing.append("the sigma_cd evaluator")
        elif model == "ic" and method in ("EM", "PT"):
            missing.append(f"{method}-learned IC probabilities")
        elif model == "lt":
            missing.append("learned LT weights")
    return missing


@dataclass
class SelectorRun:
    """One (selector, trial) cell of an experiment."""

    label: str
    trial: int
    selection: SeedSelection
    curve: list[tuple[int, float]] = field(default_factory=list)

    def final_spread(self) -> float | None:
        """CD-proxy spread at the largest evaluated k (None if unscored)."""
        return self.curve[-1][1] if self.curve else None


@dataclass
class ExperimentResult:
    """Everything :func:`run_experiment` measured.

    The selection task fills ``runs`` (one
    :class:`SelectorRun` per (selector, trial) cell); the prediction
    task fills ``prediction`` (a
    :class:`~repro.evaluation.prediction.PredictionExperiment` holding
    per-method ``(actual, predicted)`` pairs).  ``timings`` records the
    wall time of every compiled pipeline stage under ``<stage>_s``.
    """

    config: ExperimentConfig
    dataset_name: str
    runs: list[SelectorRun] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    prediction: Any | None = None
    # Warm-start bookkeeping when the config named a store: the context
    # key plus per-artifact hit/miss/corrupt/saved lists (see
    # repro.store.warm.warm_start).
    store_events: dict[str, Any] | None = None
    # Ingest-stage bookkeeping when the config named a delta: the fold
    # report (updated/carried/relearned routing) and, with a store, the
    # derived bundle's identity (see repro.stream).
    ingest: dict[str, Any] | None = None
    # Span export when the run was traced (REPRO_TRACE or `repro trace`):
    # {"trace_id", "spans": [...]}; see repro.obs.trace.Trace.to_dict.
    trace: dict[str, Any] | None = None

    def labels(self) -> list[str]:
        """Selector labels in config order."""
        return [entry.display() for entry in self.config.selectors]

    def selections(self, label: str) -> list[SeedSelection]:
        """All trials' selections for ``label``."""
        found = [run.selection for run in self.runs if run.label == label]
        require(bool(found), f"no runs for selector label {label!r}")
        return found

    def spread_series(self) -> dict[str, list[tuple[float, float]]]:
        """Per-label ``(k, CD-proxy spread)`` series, averaged over trials."""
        series: dict[str, list[tuple[float, float]]] = {}
        for label in self.labels():
            curves = [run.curve for run in self.runs if run.label == label]
            curves = [curve for curve in curves if curve]
            if not curves:
                continue
            points = []
            for index, (k, _) in enumerate(curves[0]):
                mean = sum(curve[index][1] for curve in curves) / len(curves)
                points.append((float(k), mean))
            series[label] = points
        return series

    def final_spreads(self) -> dict[str, float]:
        """Per-label CD-proxy spread at the largest k (trial-averaged)."""
        return {
            label: points[-1][1]
            for label, points in self.spread_series().items()
        }

    # ------------------------------------------------------------------
    # Prediction-task accessors
    # ------------------------------------------------------------------
    def _require_prediction(self):
        require(
            self.prediction is not None,
            "this result has no prediction records "
            "(run a task='prediction' experiment)",
        )
        return self.prediction

    def prediction_methods(self) -> list[str]:
        """Prediction-model names in config order."""
        return list(self._require_prediction().methods)

    def pairs(self, method: str) -> list[tuple[float, float]]:
        """The ``(actual, predicted)`` pairs of one prediction method."""
        prediction = self._require_prediction()
        require(
            method in prediction.records,
            f"no prediction records for method {method!r}; "
            f"available: {list(prediction.records)}",
        )
        return prediction.records[method]

    def rmse_table(self) -> dict[str, float]:
        """Per-method prediction RMSE (the Figure-3 summary numbers)."""
        from repro.evaluation.metrics import rmse

        return {
            method: rmse(self.pairs(method))
            for method in self.prediction_methods()
        }

    def capture_table(
        self, thresholds: Sequence[float] = (5, 10, 20, 40)
    ) -> dict[str, list[tuple[float, float]]]:
        """Per-method Figure-4 capture curves at ``thresholds``."""
        from repro.evaluation.metrics import capture_curve

        return {
            method: capture_curve(self.pairs(method), list(thresholds))
            for method in self.prediction_methods()
        }

    def runtime_curves(self) -> dict[str, list[tuple[int, float]]]:
        """Per-label cumulative runtime-vs-k curves (first trial).

        Only selectors whose adapter supports ``time_log`` appear;
        entries include lazily triggered artifact-building time.
        """
        curves: dict[str, list[tuple[int, float]]] = {}
        for label in self.labels():
            for run in self.runs:
                if run.label != label:
                    continue
                log = run.selection.metadata.get("time_log")
                if log:
                    curves[label] = [(int(c), float(s)) for c, s in log]
                break
        return curves

    def render(self) -> str:
        """A printable summary table (the ``repro run`` output)."""
        from repro.evaluation.reporting import format_table

        if self.prediction is not None:
            thresholds = (5, 10, 20, 40)
            rmse_table = self.rmse_table()
            capture = self.capture_table(thresholds)
            rows = [
                [method, f"{rmse_table[method]:.1f}"]
                + [f"{fraction:.2f}" for _, fraction in capture[method]]
                for method in self.prediction_methods()
            ]
            return format_table(
                ["method", "RMSE", *[f"cap@{t:g}" for t in thresholds]],
                rows,
                title=(
                    f"spread prediction on {self.dataset_name} over "
                    f"{self.prediction.num_test_traces} test traces "
                    f"(seed={self.config.seed})"
                ),
            )
        k_max = self.config.ks[-1]
        rows = []
        for run in self.runs:
            selection = run.selection
            proxy = run.final_spread()
            rows.append(
                [
                    run.label,
                    run.trial,
                    len(selection.seeds),
                    "-" if proxy is None else f"{proxy:.2f}",
                    "-" if selection.spread is None
                    else f"{selection.spread:.2f}",
                    f"{selection.wall_time_s:.2f}s",
                    selection.oracle_calls or "-",
                ]
            )
        return format_table(
            [
                "selector", "trial", "#seeds", "sigma_cd proxy",
                "own estimate", "time", "oracle calls",
            ],
            rows,
            title=(
                f"experiment on {self.dataset_name} "
                f"(k={k_max}, seed={self.config.seed})"
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-representable view of the full result."""
        prediction = None
        if self.prediction is not None:
            prediction = {
                "methods": list(self.prediction.methods),
                "num_test_traces": self.prediction.num_test_traces,
                "records": {
                    method: [[actual, predicted]
                             for actual, predicted in pairs]
                    for method, pairs in self.prediction.records.items()
                },
            }
        payload = {
            "config": self.config.to_dict(),
            "dataset": self.dataset_name,
            "timings": dict(self.timings),
            "store": self.store_events,
            "ingest": self.ingest,
            "runs": [
                {
                    "label": run.label,
                    "trial": run.trial,
                    "curve": [[k, spread] for k, spread in run.curve],
                    "selection": run.selection.to_dict(),
                }
                for run in self.runs
            ],
            "prediction": prediction,
        }
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise to JSON (see :meth:`to_dict` for the schema)."""
        return json.dumps(self.to_dict(), indent=indent)


def _make_dataset(config: ExperimentConfig) -> Dataset:
    # Resolve the makers through the module so test harnesses that
    # monkeypatch repro.data.datasets redirect experiments too.
    from repro.data import datasets

    if config.dataset == "toy":
        return datasets.toy_example()
    maker = (
        datasets.flixster_like
        if config.dataset == "flixster"
        else datasets.flickr_like
    )
    if config.dataset_seed is None:
        return maker(config.scale)
    return maker(config.scale, seed=config.dataset_seed)


def _bind(config: ExperimentConfig, entry: SelectorConfig,
          context: SelectionContext, trial: int) -> Selector:
    """Bind the selector to its effective parameters for one cell.

    Consumes the registry capability flags: stochastic selectors get a
    derived per-trial seed unless the caller pinned one, budget-aware
    selectors get the config's budget workload injected, and a budget
    workload bound to a selector without ``supports_budget`` is
    rejected with a :class:`ConfigError` (the config constructor
    already enforces this; re-checking here covers hand-built configs
    that mutated after construction).
    """
    selector = get_selector(entry.name, **entry.params)
    if config.budget is not None:
        require_config(
            selector.spec.supports_budget,
            f"selector {entry.display()!r} does not support budget "
            f"workloads (supports_budget=False); budget-aware selectors: "
            f"{_budget_selector_names()}",
        )
        if "budget" not in selector.params:
            selector = selector.with_params(budget=config.budget)
    if selector.spec.stochastic and "seed" not in selector.params:
        selector = selector.with_params(
            seed=context.derive_seed(entry.name, trial)
        )
    return selector


def run_experiment(
    config: ExperimentConfig,
    dataset: Dataset | None = None,
    context: SelectionContext | None = None,
) -> ExperimentResult:
    """Compile ``config`` into the stage pipeline and run it.

    The selection task runs ``dataset → split → learn → select →
    evaluate``; the prediction task ``dataset → split → learn →
    predict → evaluate`` — both through
    :func:`repro.runtime.pipeline.execute_pipeline`, with every stage's
    independent units dispatched to the configured executor.

    Parameters
    ----------
    config:
        The experiment description.
    dataset:
        Pre-built dataset to use instead of constructing one from the
        config (benchmark fixtures pass their session-scoped datasets
        here so the synthesis cost is shared).
    context:
        Pre-built :class:`~repro.api.context.SelectionContext` to share
        learned artifacts across experiments.  When given, the dataset/
        split stages are skipped entirely and the context's graph/log
        are authoritative.  Selection task only — the prediction task
        needs the raw dataset to hold out test traces.
    """
    from repro.runtime.pipeline import execute_pipeline

    return execute_pipeline(config, dataset=dataset, context=context)
