"""The unified result model every registry selector returns.

Historically each selection algorithm had a bespoke result type —
:class:`~repro.maximization.greedy.GreedyResult` for the greedy family,
:class:`~repro.maximization.ris.RISResult` for RIS, a bare seed list for
the structural heuristics.  :class:`SeedSelection` is the one shape the
evaluation, export and CLI layers consume: seeds plus whatever the
selector knows about them (marginal gains, its own spread estimate, the
oracle-call count), stamped with the selector name and parameters that
produced it so any result is reproducible from its serialised form.

The legacy result types stay — adapters *wrap* the original functions,
they never fork them — and the ``from_*`` converters are the only place
that translation lives.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

from repro.maximization.greedy import GreedyResult
from repro.maximization.ris import RISResult
from repro.utils.validation import require

__all__ = ["SeedSelection"]

User = Hashable


@dataclass
class SeedSelection:
    """Outcome of one seed-selection run, regardless of the algorithm.

    Attributes
    ----------
    seeds:
        Selected seeds, in selection order (prefixes of a greedy-style
        run are themselves valid smaller selections).
    gains:
        Marginal gain of each seed at selection time, under the
        selector's own objective; empty when the selector does not
        estimate gains (structural heuristics).
    spread:
        The selector's own estimate of the seed set's spread, under its
        own model — ``sigma_cd`` for the CD maximizer, a Monte Carlo or
        RR-set estimate for IC/LT selectors, ``None`` for selectors that
        never estimate spread.  Cross-model comparisons should use the
        experiment runner's CD-proxy evaluation instead.
    oracle_calls:
        Number of spread/marginal-gain evaluations performed (0 when
        the notion does not apply).
    wall_time_s:
        Wall-clock seconds the selection took, including lazily built
        artifacts (probability learning, index scanning) it triggered.
    selector:
        Registry name of the selector that produced this result.
    params:
        The exact parameters the selector ran with (including any
        derived RNG seed), sufficient to reproduce the run.
    metadata:
        Selector-specific extras, e.g. ``time_log`` — cumulative
        ``[seed_count, seconds]`` pairs for runtime-vs-k curves — or
        ``num_rr_sets`` for RIS.
    """

    seeds: list[User] = field(default_factory=list)
    gains: list[float] = field(default_factory=list)
    spread: float | None = None
    oracle_calls: int = 0
    wall_time_s: float = 0.0
    selector: str = ""
    params: dict[str, Any] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    def seeds_at(self, k: int) -> list[User]:
        """The first ``k`` selected seeds."""
        require(k >= 0, f"k must be non-negative, got {k}")
        return self.seeds[:k]

    # ------------------------------------------------------------------
    # Converters from the legacy result types
    # ------------------------------------------------------------------
    @classmethod
    def from_greedy_result(
        cls,
        result: GreedyResult,
        selector: str = "",
        params: Mapping[str, Any] | None = None,
        wall_time_s: float = 0.0,
        metadata: Mapping[str, Any] | None = None,
    ) -> "SeedSelection":
        """Wrap a :class:`~repro.maximization.greedy.GreedyResult`."""
        return cls(
            seeds=list(result.seeds),
            gains=list(result.gains),
            spread=result.spread,
            oracle_calls=result.oracle_calls,
            wall_time_s=wall_time_s,
            selector=selector,
            params=dict(params or {}),
            metadata=dict(metadata or {}),
        )

    @classmethod
    def from_ris_result(
        cls,
        result: RISResult,
        selector: str = "ris",
        params: Mapping[str, Any] | None = None,
        wall_time_s: float = 0.0,
        metadata: Mapping[str, Any] | None = None,
    ) -> "SeedSelection":
        """Wrap a :class:`~repro.maximization.ris.RISResult`."""
        merged = {"num_rr_sets": result.num_rr_sets, **(metadata or {})}
        return cls(
            seeds=list(result.seeds),
            gains=list(result.gains),
            spread=result.spread,
            oracle_calls=0,
            wall_time_s=wall_time_s,
            selector=selector,
            params=dict(params or {}),
            metadata=merged,
        )

    @classmethod
    def from_seeds(
        cls,
        seeds: list[User],
        selector: str = "",
        params: Mapping[str, Any] | None = None,
        wall_time_s: float = 0.0,
        metadata: Mapping[str, Any] | None = None,
    ) -> "SeedSelection":
        """Wrap a bare seed list (structural heuristics)."""
        return cls(
            seeds=list(seeds),
            wall_time_s=wall_time_s,
            selector=selector,
            params=dict(params or {}),
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------------
    # Serialisation (the export layer's contract)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A plain-dict view; node ids must be JSON-representable."""
        return {
            "seeds": list(self.seeds),
            "gains": list(self.gains),
            "spread": self.spread,
            "oracle_calls": self.oracle_calls,
            "wall_time_s": self.wall_time_s,
            "selector": self.selector,
            "params": dict(self.params),
            "metadata": dict(self.metadata),
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialise to JSON (see :meth:`to_dict` for the schema)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SeedSelection":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seeds=list(payload.get("seeds", [])),
            gains=[float(g) for g in payload.get("gains", [])],
            spread=payload.get("spread"),
            oracle_calls=int(payload.get("oracle_calls", 0)),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            selector=str(payload.get("selector", "")),
            params=dict(payload.get("params", {})),
            metadata=dict(payload.get("metadata", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "SeedSelection":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
