"""``repro serve`` — a warm-start JSON query service over a store.

The paper's architecture splits expensive *offline* work (scan the
action log, learn probabilities/credits) from cheap *online* queries
(pick seeds, score a seed set).  This module is the online half: it
loads persisted artifacts from an :class:`~repro.store.store.ArtifactStore`
and answers maximization/prediction queries over plain HTTP — the raw
action log is never opened.

Endpoints (JSON in, JSON out)::

    GET  /healthz            liveness + store summary
    GET  /metrics            Prometheus text exposition (repro.obs)
    GET  /contexts           the store's context records
    GET  /selectors          the registry with capability flags
    GET  /ingest             status of past/running ingest jobs
    POST /select             {"selector", "k", "params"?, "trial"?,
                              "budget"?, "context"?}
    POST /spread             {"seeds", "context"?}        (CD proxy)
    POST /predict            {"seeds", "method"?, "context"?}
    POST /ingest             {"tuples": [[user, action, time], ...],
                              "closed"?, "context"?, "wait"?, "verify"?}

``context`` is a context key (or unique prefix); it may be omitted when
the store holds exactly one.  Loaded contexts live in a small LRU so
repeated queries hit warm in-memory state.

``/ingest`` applies an action-log delta (:mod:`repro.stream`): the
derived bundle is built in a background thread and, once committed,
the serving default is atomically swapped to it.  Queries keep being
served from the base context the whole time — serving slots are
immutable and the swap is one pointer flip under the service lock, so
there is no downtime and no torn read; in-flight requests finish on
whichever slot they resolved.  One ingest runs at a time (a concurrent
request gets HTTP 409); ``wait=true`` blocks until the job finishes
(the CLI's mode), otherwise the response returns a job id to poll via
``GET /ingest``.

Determinism: a stochastic selector that was not given an explicit
``seed`` parameter gets ``derive_seed(context seed, selector, trial)``
— exactly the experiment runner's per-(selector, trial) fan-out — and
the Monte-Carlo predictors derive per-(method, seed-set) streams the
same way the prediction pipeline does.  Identical requests therefore
return identical payloads, which the smoke tests assert.

Two production seams sit behind the handlers, both invisible in the
response bytes:

* ``/select`` consults the context's persisted
  :class:`~repro.store.prefix.SelectionPrefix` artifacts first — a
  warm ``k <= k_max`` answer is a slice of the stored trace, a larger
  ``k`` on a resumable prefix runs only the missing selections, and
  anything else falls back to the cold path.  All three produce the
  same payload (``tests/test_serve_prefix.py`` asserts byte-identity).
* ``/spread`` and ``/predict`` funnel their Monte-Carlo evaluations
  through a request coalescer: concurrent requests queue, a single
  worker drains the queue and dispatches each ``(context, method)``
  group as **one** :meth:`~repro.runtime.estimator.SpreadEstimator.spread_many`
  pass.  The queue is bounded; when it is full the service sheds load
  with HTTP 503 instead of stacking unbounded threads (explicit
  backpressure, measured by ``benchmarks/bench_serve_load.py``).

The server is stdlib ``http.server`` (threaded); it is an internal
query service, not an internet-facing deployment.
"""

from __future__ import annotations

import json
import logging
import queue as queue_module
import threading
import uuid
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Hashable, Mapping

from repro.api.context import SelectionContext
from repro.api.registry import get_selector, list_selectors
from repro.data.io import parse_id
from repro.obs import trace as obs_trace
from repro.obs.metrics import (
    EXPOSITION_CONTENT_TYPE,
    Registry,
    default_registry,
    render_exposition,
)
from repro.obs.trace import monotonic
from repro.runtime.estimator import SpreadEstimator
from repro.store.io import StoreIO
from repro.store.prefix import (
    PREFIXABLE_SELECTORS,
    SelectionPrefix,
    load_prefix_checked,
    resume_selection,
    selection_at,
)
from repro.store.store import ArtifactStore, StoreError, StoreMiss
from repro.store.warm import (
    CONTEXT_RECORD,
    load_context_record,
    load_serving_context,
)
from repro.utils.retry import RetryPolicy, with_retry
from repro.utils.rng import derive_seed

__all__ = ["QueryService", "ServiceError", "make_server", "serve"]

PREDICT_METHODS = ("CD", "IC", "LT")

logger = logging.getLogger("repro.serve")


class ServiceError(ValueError):
    """A client-visible request failure (mapped to HTTP 4xx/503).

    ``retry_after`` (seconds) is set on transient 503s — backpressure,
    a dead evaluation worker, a stalled engine — and surfaces as the
    HTTP ``Retry-After`` header so a well-behaved client backs off
    instead of hammering a degraded service.
    """

    def __init__(
        self,
        message: str,
        status: int = 400,
        retry_after: int | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def _parse_id(value: Any) -> Hashable:
    """Coerce a JSON seed id to the library's convention (ints stay ints).

    String ids go through :func:`repro.data.io.parse_id` — the exact
    rule the TSV loaders apply — so JSON-borne seeds match the ids
    stored artifacts are keyed by.
    """
    if isinstance(value, str):
        return parse_id(value)
    return value


class _ServingSlot:
    """One loaded context plus its lazily built prediction estimators."""

    def __init__(self, record: Mapping[str, Any], context: SelectionContext) -> None:
        self.record = dict(record)
        self.context = context
        self._estimators: dict[str, SpreadEstimator] = {}
        # name -> (SelectionPrefix | None, problem | None): the checked
        # load result, cached so a corrupt artifact costs one store
        # read, not one per request.  Resume-extended prefixes are
        # cached here too — in memory only; request threads never write
        # the store.
        self._prefixes: dict[str, tuple[SelectionPrefix | None, str | None]] = {}
        self._lock = threading.Lock()

    def prefix(
        self, store: ArtifactStore, selector: str, params: Mapping[str, Any]
    ) -> tuple[SelectionPrefix | None, str | None]:
        """The persisted (or slot-cached) prefix for bound params.

        Returns :func:`~repro.store.prefix.load_prefix_checked`'s
        ``(prefix, problem)`` pair; ``problem`` is non-``None`` exactly
        when the record lists a prefix these params should have hit but
        the artifact would not load — the caller's cue to degrade
        loudly rather than silently.
        """
        from repro.store.prefix import prefix_artifact_name

        name = prefix_artifact_name(selector, params)
        if not any(
            row.get("name") == name
            for row in self.record.get("prefixes", [])
        ):
            return None, None
        with self._lock:
            if name in self._prefixes:
                return self._prefixes[name]
        loaded = load_prefix_checked(store, self.record, selector, params)
        with self._lock:
            return self._prefixes.setdefault(name, loaded)

    def cache_prefix(self, prefix: SelectionPrefix) -> None:
        """Remember a resume-extended prefix (in-memory, this slot only)."""
        with self._lock:
            self._prefixes[prefix.artifact_name()] = (prefix, None)

    def estimator(self, method: str) -> SpreadEstimator:
        # ThreadingHTTPServer handles each request in its own thread;
        # estimator construction mutates the dict, so it is serialized.
        with self._lock:
            if method not in self._estimators:
                context = self.context
                if method == "LT":
                    edge_values, model = context.lt_weights(), "lt"
                else:  # "IC": the EM-learned IC model, as in the pipeline
                    edge_values, model = context.ic_probabilities("EM"), "ic"
                self._estimators[method] = SpreadEstimator(
                    context.graph,
                    edge_values,
                    model=model,
                    num_simulations=context.num_simulations,
                    seed=derive_seed(context.seed, "predict", method),
                    backend=context.backend,
                )
            return self._estimators[method]


class _BatchItem:
    """One queued Monte-Carlo evaluation awaiting its batch result."""

    __slots__ = ("slot", "method", "seeds", "event", "result", "error")

    def __init__(self, slot: _ServingSlot, method: str, seeds: list) -> None:
        self.slot = slot
        self.method = method
        self.seeds = seeds
        self.event = threading.Event()
        self.result: float | None = None
        self.error: Exception | None = None


class _Coalescer:
    """Bounded queue + single drain worker for ``/spread``/``/predict``.

    Request threads :meth:`submit` and block on a per-item event; the
    worker drains whatever is queued at that moment, groups items by
    ``(slot, method)`` and dispatches each IC/LT group as one
    :meth:`SpreadEstimator.spread_many` call — so N concurrent requests
    for the same context cost one engine pass, not N.  CD items are
    exact evaluator calls (no Monte-Carlo batching to share) and run
    per item.  ``spread_many``'s per-set bit-identity guarantees the
    coalesced answer equals the sequential one.

    The queue is bounded (``depth``): a submit against a full queue
    raises a 503 :class:`ServiceError` immediately — explicit
    backpressure instead of unbounded buffering.  The result wait is
    bounded too (``timeout``): a wedged engine turns into a 503 with
    ``Retry-After``, not a silently pinned HTTP thread.

    ``fire`` is the fault-injection hook (``StoreIO.fire``, a no-op in
    production): the worker consults ``serve.worker`` before each batch
    and ``serve.spread`` before each engine dispatch.  A worker killed
    mid-batch fails *that batch's* items and dies; the next submit
    restarts it (``worker_deaths`` counts the restarts for /healthz).
    """

    def __init__(
        self,
        depth: int = 64,
        timeout: float | None = 60.0,
        fire: Callable[..., None] | None = None,
        metrics: Registry | None = None,
    ) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self.timeout = timeout
        self._fire = fire if fire is not None else (lambda site, **info: None)
        self._queue: "queue_module.Queue[_BatchItem]" = queue_module.Queue(
            maxsize=depth
        )
        self._worker: threading.Thread | None = None
        self._lock = threading.Lock()
        # Telemetry for /healthz, /metrics and the load harness: how
        # many items arrived, and how many engine dispatches they
        # collapsed into.  Registry counters (not plain ints) so the
        # exposition and the JSON report read the same cells.
        registry = metrics if metrics is not None else Registry()
        self._submitted = registry.counter(
            "repro_coalescer_submitted_total",
            "Evaluations accepted into the coalescing queue",
        )
        self._dispatches = registry.counter(
            "repro_coalescer_dispatches_total",
            "Engine dispatches ((context, method) groups, not items)",
        )
        self._rejected = registry.counter(
            "repro_coalescer_rejected_total",
            "Submissions shed with 503 against a full queue",
        )
        self._worker_deaths = registry.counter(
            "repro_coalescer_worker_deaths_total",
            "Evaluation worker deaths (the next submit restarts one)",
        )

    def submit(self, slot: _ServingSlot, method: str, seeds: list) -> float:
        """Enqueue one evaluation and block until its batch resolves."""
        self._ensure_worker()
        item = _BatchItem(slot, method, seeds)
        try:
            self._queue.put_nowait(item)
        except queue_module.Full:
            self._rejected.inc()
            raise ServiceError(
                f"evaluation queue is full ({self.depth} pending); "
                "retry later",
                status=503,
                retry_after=1,
            ) from None
        self._submitted.inc()
        if not item.event.wait(self.timeout):
            # The batch never resolved (wedged engine, dead worker that
            # lost the item).  Shedding with Retry-After beats pinning
            # the HTTP thread; the item stays owned by the worker, and
            # its late result is simply dropped.
            raise ServiceError(
                "evaluation timed out; the service is degraded",
                status=503,
                retry_after=5,
            )
        if item.error is not None:
            raise item.error
        return item.result  # type: ignore[return-value]

    def _ensure_worker(self) -> None:
        with self._lock:
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(
                    target=self._drain, daemon=True, name="repro-serve-coalesce"
                )
                self._worker.start()

    def _drain(self) -> None:
        while True:
            items = [self._queue.get()]
            while True:
                try:
                    items.append(self._queue.get_nowait())
                except queue_module.Empty:
                    break
            try:
                self._fire("serve.worker")
                self._run_batch(items)
            except BaseException as error:
                # The worker is dying (injected WorkerDied, or anything
                # _run_batch's per-group handler could not absorb).
                # Fail this batch's unresolved items so their request
                # threads get a 503 instead of a timeout, count the
                # death, and end the thread; the next submit restarts.
                for item in items:
                    if item.result is None and item.error is None:
                        item.error = error
                    item.event.set()
                self._worker_deaths.inc()
                logger.warning("evaluation worker died: %s", error)
                return

    def _run_batch(self, items: list[_BatchItem]) -> None:
        groups: "OrderedDict[tuple[int, str], list[_BatchItem]]" = OrderedDict()
        for item in items:
            groups.setdefault((id(item.slot), item.method), []).append(item)
        for (_, method), group in groups.items():
            slot = group[0].slot
            with obs_trace.span(
                "serve.coalesce.batch", method=method, items=len(group)
            ):
                try:
                    self._fire("serve.spread", method=method, items=len(group))
                    if method == "CD":
                        evaluator = slot.context.cd_evaluator()
                        for item in group:
                            item.result = evaluator.spread(item.seeds)
                    else:
                        estimator = slot.estimator(method)
                        values = estimator.spread_many(
                            [item.seeds for item in group]
                        )
                        for item, value in zip(group, values):
                            item.result = value
                except Exception as error:
                    for item in group:
                        if item.result is None:
                            item.error = error
                finally:
                    self._dispatches.inc()
                    for item in group:
                        item.event.set()

    def stats(self) -> dict[str, int]:
        return {
            "depth": self.depth,
            "submitted": int(self._submitted.value()),
            "dispatches": int(self._dispatches.value()),
            "rejected": int(self._rejected.value()),
            "worker_deaths": int(self._worker_deaths.value()),
        }


class QueryService:
    """The request handlers, independent of any HTTP plumbing."""

    def __init__(
        self,
        store_root: str,
        cache_size: int = 4,
        queue_depth: int = 64,
        ingest_timeout: float | None = 600.0,
        evaluation_timeout: float | None = 60.0,
        io: StoreIO | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        # Per-service registry: every counter this class keeps lives
        # here, /healthz reads the same cells back into its JSON
        # schema, and GET /metrics renders the whole thing (two
        # services in one process never mix telemetry).
        self.metrics = Registry()
        # io=None resolves through default_store_io(), so REPRO_FAULTS
        # in the server's environment injects faults here too; tests
        # pass a FaultInjector directly.
        self.store = ArtifactStore(
            store_root, create=False, io=io, metrics=self.metrics
        )
        self.cache_size = cache_size
        # How long a wait=true /ingest blocks before returning the
        # still-running job (None = unbounded, the pre-timeout behavior).
        self.ingest_timeout = ingest_timeout
        # Bounded retries for transient store reads (EIO that a re-read
        # survives); the jitter is seeded, so chaos runs replay exactly.
        self.retry = retry if retry is not None else RetryPolicy()
        self._slots: "OrderedDict[str, _ServingSlot]" = OrderedDict()
        # The LRU and the pinned default are shared across the
        # ThreadingHTTPServer's request threads.
        self._lock = threading.RLock()
        self._default_key: str | None = None
        self._coalescer = _Coalescer(
            depth=queue_depth,
            timeout=evaluation_timeout,
            fire=self.store.io.fire,
            metrics=self.metrics,
        )
        # /select path telemetry (prefix hit / resume / cold), for
        # /healthz and the load harness — never part of /select bodies.
        # Pre-touched to zeros so the exposition (and the legacy
        # `_select_paths` view) shows all three paths from the start.
        self._select_counter = self.metrics.counter(
            "repro_select_requests_total",
            "Answered /select requests by serving path",
            ("path",),
        )
        for path in ("prefix", "resume", "cold"):
            self._select_counter.inc(0, path=path)
        # Degradation telemetry: reason -> count of requests served in
        # a degraded way (cold fallback on a corrupt prefix, engine
        # failure shed as 503, ...).  Sticky until restart; /healthz
        # reports status "degraded" while non-empty, because each entry
        # means the store or engine needs operator attention even
        # though requests keep succeeding.
        self._degraded_counter = self.metrics.counter(
            "repro_degraded_total",
            "Degraded-mode events by reason (sticky until restart)",
            ("reason",),
        )
        # HTTP surface telemetry, recorded by the handler around every
        # routed request; strictly out-of-band (never in a body).
        self._requests = self.metrics.counter(
            "repro_requests_total",
            "HTTP requests by endpoint and status code",
            ("endpoint", "status"),
        )
        self._request_seconds = self.metrics.histogram(
            "repro_request_seconds",
            "HTTP request latency in seconds by endpoint",
            ("endpoint",),
        )
        self._last_ingest = self.metrics.gauge(
            "repro_last_ingest_seconds",
            "Derive duration of the most recent successful ingest",
        )
        # Ingest bookkeeping: one job at a time, history kept for
        # GET /ingest polling.
        self._ingests: "OrderedDict[int, dict[str, Any]]" = OrderedDict()
        self._ingest_seq = 0
        self._ingest_active = False

    @property
    def _select_paths(self) -> dict[str, int]:
        """The select-path counts as the pre-registry dict (all paths)."""
        counts = self._select_counter.by_label("path")
        return {
            path: int(counts.get(path, 0))
            for path in ("prefix", "resume", "cold")
        }

    @property
    def _degraded(self) -> dict[str, int]:
        """Degradation counts by reason — empty exactly when healthy."""
        return {
            reason: int(count)
            for reason, count in self._degraded_counter.by_label("reason").items()
        }

    def _note_degraded(self, reason: str, detail: str = "") -> None:
        """Count a degraded-mode event; warn once per distinct reason."""
        with self._lock:
            first = self._degraded_counter.value(reason=reason) == 0
            self._degraded_counter.inc(reason=reason)
        if first:
            logger.warning(
                "serving degraded (%s)%s", reason,
                f": {detail}" if detail else "",
            )

    def _read_with_retry(self, label: str, fn: Callable[[], Any]) -> Any:
        """A transient-fault-tolerant store read (see ``self.retry``)."""
        return with_retry(
            fn,
            self.retry,
            retry_on=(OSError,),
            label=label,
            on_retry=lambda attempt, error: self._note_degraded(
                "store_read_retry", f"{label}: {error}"
            ),
        )

    # ------------------------------------------------------------------
    # Context loading (LRU)
    # ------------------------------------------------------------------
    def slot(self, context_ref: str | None) -> _ServingSlot:
        """Resolve ``context_ref`` to a loaded context.

        Hot paths never rescan the store: a full context key hits the
        in-memory LRU directly, and an omitted ``context`` reuses the
        default pinned at its first resolution (a service restart — or
        an explicit key — picks up contexts stored later).  Prefixes
        and cache misses resolve through the store, where ambiguity is
        checked against *every* stored record, so a prefix never
        silently binds to whatever happens to be cached.
        """
        with self._lock:
            if context_ref is None and self._default_key is not None:
                context_ref = self._default_key
            if context_ref in self._slots:
                self._slots.move_to_end(context_ref)
                return self._slots[context_ref]
        # Resolve and load OUTSIDE the lock: pulling a cold context is
        # a multi-read unpickle of the whole bundle, and holding the
        # lock across it would stall every concurrent LRU hit.  Two
        # threads racing the same cold context both load it; the second
        # insert below wins nothing but wastes only its own work.
        try:
            record = self._read_with_retry(
                "load_context_record",
                lambda: load_context_record(self.store, context_ref),
            )
        except StoreMiss as error:
            raise ServiceError(str(error), status=404) from error
        except OSError as error:
            # Retries exhausted on a transient-looking store read: shed
            # with Retry-After rather than surfacing an internal error.
            self._note_degraded("store_read_failed", str(error))
            raise ServiceError(
                f"the store is temporarily unreadable: {error}",
                status=503,
                retry_after=2,
            ) from error
        key = record["context_key"]
        with self._lock:
            if context_ref is None:
                self._default_key = key
            if key in self._slots:
                self._slots.move_to_end(key)
                return self._slots[key]
        try:
            context = self._read_with_retry(
                "load_serving_context",
                lambda: load_serving_context(self.store, record),
            )
        except StoreError as error:
            raise ServiceError(
                f"context {key} cannot be loaded from the store: {error}",
                status=404,
            ) from error
        except OSError as error:
            self._note_degraded("store_read_failed", str(error))
            raise ServiceError(
                f"the store is temporarily unreadable: {error}",
                status=503,
                retry_after=2,
            ) from error
        slot = _ServingSlot(record, context)
        with self._lock:
            existing = self._slots.get(key)
            if existing is not None:
                self._slots.move_to_end(key)
                return existing
            self._slots[key] = slot
            self._evict_over_capacity()
            return slot

    def _evict_over_capacity(self) -> None:
        """Drop least-recently-used slots past ``cache_size``.

        The pinned default slot is exempt: it is the context every
        keyless request resolves to, so evicting it (the old
        ``popitem(last=False)`` behavior, which ignored the pin) forced
        a full bundle reload on the service's hottest path.  Caller
        holds ``self._lock``.
        """
        while len(self._slots) > self.cache_size:
            victim = next(
                (key for key in self._slots if key != self._default_key),
                None,
            )
            if victim is None:  # only the pinned default remains
                break
            del self._slots[victim]

    def _record_keys(self) -> list[str]:
        return [
            entry.meta.get("context", "")
            for entry in self.store.entries()
            if entry.meta.get("artifact") == CONTEXT_RECORD
        ]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        # Liveness must never fail: if even the store scan is erroring,
        # the report *is* the degradation signal.
        try:
            contexts: int | None = len(
                self._read_with_retry("record_keys", self._record_keys)
            )
        except OSError as error:
            self._note_degraded("store_read_failed", str(error))
            contexts = None
        with self._lock:
            loaded = list(self._slots)
            select_paths = dict(self._select_paths)
            degraded = dict(self._degraded)
        return {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "store": str(self.store.root),
            "contexts": contexts,
            "loaded": loaded,
            "select_paths": select_paths,
            "queue": self._coalescer.stats(),
        }

    def contexts(self) -> dict[str, Any]:
        from repro.store.warm import list_context_records

        try:
            records = self._read_with_retry(
                "list_context_records",
                lambda: list_context_records(self.store),
            )
        except OSError as error:
            self._note_degraded("store_read_failed", str(error))
            raise ServiceError(
                f"the store is temporarily unreadable: {error}",
                status=503,
                retry_after=2,
            ) from error
        return {"contexts": records}

    def selectors(self) -> dict[str, Any]:
        return {
            "selectors": [
                {
                    "name": spec.name,
                    "family": spec.family,
                    "description": spec.description,
                    **spec.capabilities(),
                }
                for spec in list_selectors()
            ]
        }

    def select(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        name = payload.get("selector")
        if not isinstance(name, str):
            raise ServiceError("'selector' (a registry name) is required")
        try:
            k = int(payload.get("k", 0))
        except (TypeError, ValueError):
            raise ServiceError("'k' must be an integer") from None
        if k < 1:
            raise ServiceError("'k' must be >= 1")
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise ServiceError("'params' must be a JSON object")
        slot = self.slot(payload.get("context"))
        try:
            selector = get_selector(name, **params)
        except ValueError as error:
            raise ServiceError(str(error)) from None
        budget = payload.get("budget")
        if budget is not None:
            if not selector.spec.supports_budget:
                raise ServiceError(
                    f"selector {name!r} does not support budget workloads"
                )
            try:
                selector = selector.with_params(budget=float(budget))
            except (TypeError, ValueError):
                raise ServiceError("'budget' must be a number") from None
        try:
            trial = int(payload.get("trial", 0))
        except (TypeError, ValueError):
            raise ServiceError("'trial' must be an integer") from None
        if selector.spec.stochastic and "seed" not in selector.params:
            selector = selector.with_params(
                seed=slot.context.derive_seed(name, trial)
            )
        try:
            selection = self._run_select(slot, selector, k)
        except ValueError as error:
            raise ServiceError(
                f"selector {name!r} cannot be served from the stored "
                f"artifacts: {error}"
            ) from None
        body = selection.to_dict()
        # Responses are deterministic payloads (identical request →
        # identical bytes); wall-clock telemetry would break that.
        body.pop("wall_time_s", None)
        body.get("metadata", {}).pop("time_log", None)
        return {
            "context": slot.record["context_key"],
            "selector": name,
            "k": k,
            "trial": trial,
            "selection": body,
        }

    def _run_select(self, slot: _ServingSlot, selector, k: int):
        """Answer a bound selection, preferring the persisted prefix.

        Every branch returns a selection whose served payload (after
        the deterministic strip in :meth:`select`) is byte-identical —
        the prefix artifacts record the cold trace exactly, and resume
        continues it bit-identically — so which path answered is
        observable only in /healthz and /metrics telemetry (and the
        ``serve.select`` span's ``path`` attribute), never in the
        response.
        """
        with obs_trace.span(
            "serve.select", selector=selector.name, k=k
        ) as span:
            path, selection = self._select_on_path(slot, selector, k)
            span.set(path=path)
            self._select_counter.inc(path=path)
            return selection

    def _select_on_path(self, slot: _ServingSlot, selector, k: int):
        """The selection plus which path ("prefix"/"resume"/"cold") answered."""
        name = selector.name
        if name in PREFIXABLE_SELECTORS:
            # The whole warm path is best-effort: the cold path below
            # can always answer, byte-identically, so *no* prefix
            # problem — a corrupt artifact, a torn checkpoint list, a
            # resume that trips on damaged state — is allowed to turn
            # into a 500.  It degrades, and /healthz says so.
            try:
                prefix, problem = slot.prefix(
                    self.store, name, selector.params
                )
                if problem is not None:
                    self._note_degraded("prefix_corrupt", problem)
                if prefix is not None:
                    if k <= prefix.k_max:
                        return "prefix", selection_at(prefix, k)
                    if prefix.resumable:
                        selection, extended = resume_selection(
                            slot.context, prefix, k
                        )
                        slot.cache_prefix(extended)
                        return "resume", selection
            except Exception as error:
                self._note_degraded(
                    "prefix_fallback",
                    f"warm path for {name!r} k={k} failed: {error}",
                )
        return "cold", selector.select(slot.context, k)

    def _seeds(self, payload: Mapping[str, Any]) -> list[Hashable]:
        seeds = payload.get("seeds")
        if not isinstance(seeds, list) or not seeds:
            raise ServiceError("'seeds' (a non-empty list) is required")
        return [_parse_id(seed) for seed in seeds]

    def spread(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        slot = self.slot(payload.get("context"))
        seeds = self._seeds(payload)
        try:
            value = self._coalescer.submit(slot, "CD", seeds)
        except ServiceError:
            raise  # queue backpressure / timeout (503) passes through
        except ValueError as error:
            raise ServiceError(
                f"the stored artifacts lack the sigma_cd evaluator: {error}"
            ) from None
        except (RuntimeError, OSError) as error:
            self._note_degraded("engine_failure", str(error))
            raise ServiceError(
                f"evaluation engine failure: {error}",
                status=503,
                retry_after=1,
            ) from error
        return {
            "context": slot.record["context_key"],
            "seeds": payload["seeds"],
            "model": "cd",
            "spread": value,
        }

    def predict(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        method = str(payload.get("method", "CD"))
        if method not in PREDICT_METHODS:
            raise ServiceError(
                f"'method' must be one of {list(PREDICT_METHODS)}, got {method!r}"
            )
        slot = self.slot(payload.get("context"))
        seeds = self._seeds(payload)
        try:
            predicted = self._coalescer.submit(slot, method, seeds)
            if method == "CD":
                predicted = float(predicted)
        except ServiceError:
            raise  # queue backpressure / timeout (503) passes through
        except ValueError as error:
            raise ServiceError(
                f"method {method!r} cannot be served from the stored "
                f"artifacts: {error}"
            ) from None
        except (RuntimeError, OSError) as error:
            self._note_degraded("engine_failure", str(error))
            raise ServiceError(
                f"evaluation engine failure: {error}",
                status=503,
                retry_after=1,
            ) from error
        return {
            "context": slot.record["context_key"],
            "seeds": payload["seeds"],
            "method": method,
            "predicted_spread": predicted,
        }

    # ------------------------------------------------------------------
    # Streaming ingest (delta -> derived bundle -> atomic swap)
    # ------------------------------------------------------------------
    def ingest(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Apply an action-log delta; swap the serving default when done.

        The derive runs on a background thread (``wait=true`` joins it).
        The base context serves queries throughout; once the derived
        bundle is committed, the default context pointer flips to it
        under the service lock — an atomic swap, never a torn read,
        because serving slots are immutable once built.  A failed
        derive (bad delta, frozen action) leaves serving untouched and
        is reported on the job, not as a 5xx.
        """
        from repro.stream.delta import ActionLogDelta

        raw = payload.get("tuples", [])
        if not isinstance(raw, list):
            raise ServiceError(
                "'tuples' must be a list of [user, action, time] triples"
            )
        delta = ActionLogDelta()
        for item in raw:
            if not isinstance(item, (list, tuple)) or len(item) != 3:
                raise ServiceError(
                    "each tuple must be a [user, action, time] triple"
                )
            user, action, time = item
            try:
                delta.add(_parse_id(user), _parse_id(action), float(time))
            except (TypeError, ValueError):
                raise ServiceError("tuple times must be numbers") from None
        closed = payload.get("closed")
        if closed is None:
            # The common case: the delta's traces are complete batches.
            for action in delta.actions():
                delta.close(action)
        elif isinstance(closed, list):
            for action in closed:
                delta.close(_parse_id(action))
        else:
            raise ServiceError("'closed' must be a list of action ids")
        if not delta.tuples and not delta.closed:
            raise ServiceError("an ingest needs 'tuples' and/or 'closed'")
        try:
            record = self._read_with_retry(
                "ingest_load_context_record",
                lambda: load_context_record(self.store, payload.get("context")),
            )
        except StoreMiss as error:
            raise ServiceError(str(error), status=404) from error
        except OSError as error:
            self._note_degraded("store_read_failed", str(error))
            raise ServiceError(
                f"the store is temporarily unreadable: {error}",
                status=503,
                retry_after=2,
            ) from error
        # Strict booleans: bool("false") is True in python, so a JSON
        # string like "false" used to silently flip these flags on.
        wait = payload.get("wait", False)
        if not isinstance(wait, bool):
            raise ServiceError("'wait' must be a JSON boolean")
        verify = payload.get("verify", False)
        if not isinstance(verify, bool):
            raise ServiceError("'verify' must be a JSON boolean")
        with self._lock:
            if self._ingest_active:
                raise ServiceError(
                    "another ingest is already in progress", status=409
                )
            self._ingest_active = True
            self._ingest_seq += 1
            job: dict[str, Any] = {
                "job": self._ingest_seq,
                "base": record["context_key"],
                "status": "running",
                "derived": None,
                "error": None,
                "report": None,
            }
            self._ingests[job["job"]] = job
        try:
            thread = threading.Thread(
                target=self._run_ingest,
                args=(job, record, delta, verify),
                daemon=True,
            )
            thread.start()
        except Exception as error:
            # A thread that never started will never run _run_ingest's
            # finally; release the one-at-a-time flag here or every
            # future ingest gets a permanent 409.
            with self._lock:
                self._ingest_active = False
                job["status"] = "failed"
                job["error"] = f"ingest worker failed to start: {error}"
            self._note_degraded("ingest_start_failed", str(error))
            raise ServiceError(
                "the ingest worker could not be started; retry later",
                status=503,
                retry_after=5,
            ) from error
        timed_out = False
        if wait:
            # A bounded join: a hung derive must not pin an HTTP thread
            # (and its client) forever.  On timeout the job keeps
            # running in the background and the response says so.
            thread.join(self.ingest_timeout)
            timed_out = thread.is_alive()
        with self._lock:
            snapshot = dict(job)
        if timed_out:
            snapshot["wait_timed_out"] = True
        return snapshot

    def _run_ingest(
        self,
        job: dict[str, Any],
        record: Mapping[str, Any],
        delta: Any,
        verify: bool,
    ) -> None:
        try:
            from repro.stream.derive import derive_bundle

            self.store.io.fire("serve.ingest", job=job["job"])
            started = monotonic()
            result = derive_bundle(
                self.store, delta, record=record, verify=verify
            )
            # The last-ingest gauge answers "how long does an ingest
            # take on this store right now" from a /metrics scrape; a
            # failed derive leaves the previous value standing.
            self._last_ingest.set(monotonic() - started)
            context = self._read_with_retry(
                "ingest_load_serving_context",
                lambda: load_serving_context(self.store, result.record),
            )
            slot = _ServingSlot(result.record, context)
            with self._lock:
                key = result.derived_key
                self._slots[key] = slot
                self._slots.move_to_end(key)
                if self._default_key in (None, job["base"]):
                    self._default_key = key
                # After the default swap, so the new default is already
                # pinned and the old base becomes evictable.
                self._evict_over_capacity()
                job["status"] = "done"
                job["derived"] = key
                job["lineage_depth"] = int(
                    result.record.get("lineage_depth", 0)
                )
                job["report"] = result.report.to_dict()
        except BaseException as error:
            # BaseException, not Exception: a worker killed by
            # SystemExit (or an injected WorkerDied wrapped in one)
            # must still leave the job marked failed — a job stuck
            # "running" forever with the flag released would report a
            # phantom in-flight ingest to every GET /ingest poll.
            with self._lock:
                job["status"] = "failed"
                job["error"] = str(error) or type(error).__name__
            self._note_degraded("ingest_failed", job["error"])
            if not isinstance(error, Exception):
                raise  # SystemExit/KeyboardInterrupt keep their semantics
        finally:
            # Unconditional: however the derive ended — clean commit,
            # bad delta, worker death — the one-at-a-time flag drops so
            # the next POST /ingest is a 202, never a permanent 409.
            with self._lock:
                self._ingest_active = False

    def ingest_status(self) -> dict[str, Any]:
        with self._lock:
            return {
                "ingests": [dict(job) for job in self._ingests.values()],
                "default": self._default_key,
            }


class _Handler(BaseHTTPRequestHandler):
    service: QueryService  # injected by make_server
    access_log = False  # set by make_server (`repro serve --access-log`)

    # Quiet: http.server's own lines carry no request ids or latency;
    # the structured access log in _run replaces them when enabled.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _respond(
        self,
        status: int,
        body: dict[str, Any],
        headers: Mapping[str, str] | None = None,
    ) -> None:
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        self._send(status, data, "application/json", headers)

    def _send(
        self,
        status: int,
        data: bytes,
        content_type: str,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-response.  There is nobody left to
            # answer; letting the exception escape used to crash the
            # request thread with a traceback on stderr.
            self.close_connection = True

    def _run(self, fn, *args) -> None:
        service = self.service
        trace = obs_trace.current_trace()
        request_id = trace.trace_id if trace is not None else uuid.uuid4().hex[:12]
        started = monotonic()
        status, headers = 200, None
        try:
            body = fn(*args)
        except ServiceError as error:
            status = error.status
            body = {"error": str(error)}
            if error.retry_after is not None:
                headers = {"Retry-After": str(int(error.retry_after))}
        except Exception as error:  # pragma: no cover - defensive
            status, body = 500, {"error": f"internal error: {error}"}
        self._respond(status, body, headers)
        duration_s = monotonic() - started
        # Out-of-band by construction: recorded after the response
        # bytes are already on the wire.
        service._requests.inc(endpoint=self.path, status=status)
        service._request_seconds.observe(duration_s, endpoint=self.path)
        if self.access_log:
            logger.info(
                '%s "%s %s" %d %.1fms id=%s',
                self.client_address[0],
                self.command,
                self.path,
                status,
                duration_s * 1000.0,
                request_id,
            )

    def _metrics(self) -> None:
        page = render_exposition(self.service.metrics, default_registry())
        self._send(200, page.encode("utf-8"), EXPOSITION_CONTENT_TYPE)

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == "/metrics":
            # Not JSON and not counted in its own counters: a scrape
            # that moved the numbers it reports would never settle.
            self._metrics()
            return
        routes = {
            "/healthz": self.service.healthz,
            "/contexts": self.service.contexts,
            "/selectors": self.service.selectors,
            "/ingest": self.service.ingest_status,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._respond(404, {"error": f"unknown path {self.path!r}"})
            return
        self._run(handler)

    def do_POST(self) -> None:  # noqa: N802
        routes = {
            "/select": self.service.select,
            "/spread": self.service.spread,
            "/predict": self.service.predict,
            "/ingest": self.service.ingest,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._respond(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
        except (ValueError, TypeError) as error:
            self._respond(400, {"error": f"bad request body: {error}"})
            return
        self._run(handler, payload)


def make_server(
    store_root: str,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_size: int = 4,
    queue_depth: int = 64,
    ingest_timeout: float | None = 600.0,
    evaluation_timeout: float | None = 60.0,
    io: StoreIO | None = None,
    retry: RetryPolicy | None = None,
    access_log: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-run HTTP server over ``store_root`` (not yet serving).

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.server_address``.  ``access_log=True`` logs one line per
    request (client, route, status, latency, request id) on the
    ``repro.serve`` logger.
    """
    service = QueryService(
        store_root,
        cache_size=cache_size,
        queue_depth=queue_depth,
        ingest_timeout=ingest_timeout,
        evaluation_timeout=evaluation_timeout,
        io=io,
        retry=retry,
    )
    handler = type(
        "BoundHandler",
        (_Handler,),
        {"service": service, "access_log": access_log},
    )
    return ThreadingHTTPServer((host, port), handler)


def serve(
    store_root: str,
    host: str = "127.0.0.1",
    port: int = 8734,
    cache_size: int = 4,
    queue_depth: int = 64,
    ingest_timeout: float | None = 600.0,
    access_log: bool = False,
) -> None:
    """Run the query service until interrupted (the CLI entry point)."""
    if access_log and not logging.getLogger().handlers:
        logging.basicConfig(
            level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
        )
    server = make_server(
        store_root,
        host=host,
        port=port,
        cache_size=cache_size,
        queue_depth=queue_depth,
        ingest_timeout=ingest_timeout,
        access_log=access_log,
    )
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: http://{bound_host}:{bound_port} over store {store_root}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
