"""Whole-store integrity audit: ``repro store verify [--deep]``.

Walks every entry directory of an :class:`~repro.store.store.ArtifactStore`
and classifies what it finds:

* **errors** — states that should be impossible under the store's
  commit discipline and mean bytes were lost or mutated: an unreadable
  manifest, a manifest whose payload is missing or fails its checksum
  (a torn write), a payload that does not unpickle (``--deep``), and a
  context record that references an artifact, alias source or selection
  prefix that does not load (a dangling reference);
* **orphans** — healthy, committed entries that no context record
  claims: the residue of a crash between artifact writes and the
  record commit (re-derivable by design, reclaimable by ``gc``), or of
  a dropped prefix row.  Reported — and non-zero-exiting in the CLI —
  because an operator should know the store carries unreachable bytes;
* **notes** — benign observations: other-format entries (invisible
  misses), leftover temp files inside the gc grace window.

The soak harness runs this after every chaos run: injected faults may
legitimately orphan entries (a failed mid-derive), but any *error* is
a reliability bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.store.keys import FORMAT_VERSION, artifact_key
from repro.store.serialize import checksum, load_payload
from repro.store.store import ArtifactStore, StoreError

__all__ = ["VerifyProblem", "VerifyReport", "verify_store"]


@dataclass(frozen=True)
class VerifyProblem:
    """One finding: its severity class, the entry, and what is wrong."""

    severity: str  # "error" | "orphan" | "note"
    kind: str
    key: str
    detail: str

    def render(self) -> str:
        return f"[{self.severity}] {self.kind}: {self.key[:16]} — {self.detail}"


@dataclass
class VerifyReport:
    """Everything a verify pass observed."""

    entries: int = 0
    records: int = 0
    payload_bytes: int = 0
    deep: bool = False
    problems: list[VerifyProblem] = field(default_factory=list)

    @property
    def errors(self) -> list[VerifyProblem]:
        return [p for p in self.problems if p.severity == "error"]

    @property
    def orphans(self) -> list[VerifyProblem]:
        return [p for p in self.problems if p.severity == "orphan"]

    @property
    def notes(self) -> list[VerifyProblem]:
        return [p for p in self.problems if p.severity == "note"]

    @property
    def clean(self) -> bool:
        """No errors and no orphans (notes are always tolerated)."""
        return not self.errors and not self.orphans

    def to_dict(self) -> dict[str, Any]:
        return {
            "entries": self.entries,
            "records": self.records,
            "payload_bytes": self.payload_bytes,
            "deep": self.deep,
            "errors": len(self.errors),
            "orphans": len(self.orphans),
            "notes": len(self.notes),
            "clean": self.clean,
        }


def verify_store(store: ArtifactStore, deep: bool = False) -> VerifyReport:
    """Audit every entry and record reference; see the module docstring.

    ``deep`` additionally unpickles every current-format payload —
    catching a payload that checksums correctly but does not decode
    (version skew, truncated pickle stream with a stale manifest).
    """
    report = VerifyReport(deep=deep)
    found = report.problems
    committed: dict[str, dict[str, str]] = {}

    for directory in store._entry_dirs():
        key = directory.name
        if not store._valid_key(key):
            found.append(VerifyProblem(
                "note", "foreign-entry", str(directory.name),
                "directory is not a store key (gc will remove it)",
            ))
            continue
        temp_files = list(directory.glob(".tmp-*"))
        if temp_files:
            found.append(VerifyProblem(
                "note", "temp-files", key,
                f"{len(temp_files)} in-flight/leftover temp file(s)",
            ))
        manifest_path = directory / "manifest.json"
        if not manifest_path.exists():
            if any(directory.glob("payload*")):
                found.append(VerifyProblem(
                    "note", "uncommitted", key,
                    "payload without a manifest (crashed writer; invisible)",
                ))
            continue
        try:
            entry = store._read_manifest(manifest_path)
        except StoreError as error:
            found.append(VerifyProblem(
                "error", "corrupt-manifest", key, str(error)
            ))
            continue
        report.entries += 1
        payload_path = directory / entry.payload_name
        stale = [
            stray for stray in directory.glob("payload*")
            if stray.name != entry.payload_name
        ]
        if stale:
            found.append(VerifyProblem(
                "note", "stale-payload", key,
                f"{len(stale)} superseded payload generation(s) "
                "(crashed refresh; gc reclaims them)",
            ))
        if entry.format_version != FORMAT_VERSION:
            found.append(VerifyProblem(
                "note", "stale-format", key,
                f"format_version {entry.format_version} (reader wants "
                f"{FORMAT_VERSION}); treated as a miss",
            ))
            continue
        try:
            payload = store.io.read_bytes(payload_path)
        except OSError as error:
            found.append(VerifyProblem(
                "error", "missing-payload", key,
                f"manifest committed but payload unreadable: {error}",
            ))
            continue
        if (
            len(payload) != entry.payload_bytes
            or checksum(payload) != entry.checksum
        ):
            found.append(VerifyProblem(
                "error", "torn-payload", key,
                f"payload is {len(payload)}B, manifest says "
                f"{entry.payload_bytes}B / checksum mismatch",
            ))
            continue
        report.payload_bytes += len(payload)
        if deep:
            try:
                load_payload(payload)
            except ValueError as error:
                found.append(VerifyProblem(
                    "error", "undecodable-payload", key, str(error)
                ))
                continue
        committed[key] = {
            "context": str(entry.meta.get("context", "")),
            "artifact": str(entry.meta.get("artifact", "")),
        }

    # Cross-checks: every readable record's references must resolve to
    # healthy entries, and every healthy entry should be reachable from
    # some record.
    from repro.store.warm import (
        CONTEXT_RECORD,
        GRAPH_ARTIFACT,
        STREAM_STATS_ARTIFACT,
        TRAIN_LOG_ARTIFACT,
        artifact_source_key,
        list_context_records,
    )

    referenced: set[str] = set()
    records = list_context_records(store)
    report.records = len(records)
    for record in records:
        ckey = record["context_key"]
        referenced.add(artifact_key(ckey, CONTEXT_RECORD))
        names = [GRAPH_ARTIFACT, *record.get("artifacts", [])]
        for name in names:
            source = artifact_source_key(record, name)
            akey = artifact_key(source, name)
            referenced.add(akey)
            if akey not in committed:
                found.append(VerifyProblem(
                    "error", "dangling-reference", akey,
                    f"record {ckey[:12]} references artifact {name!r} "
                    f"(context {source[:12]}) with no healthy entry",
                ))
        # Bundle-support artifacts (the incremental-maintenance inputs)
        # ride alongside the record without being listed in its
        # ``artifacts``; they are reachable, but optional — absence is
        # not a dangling reference.
        for name in (TRAIN_LOG_ARTIFACT, STREAM_STATS_ARTIFACT):
            source = artifact_source_key(record, name)
            referenced.add(artifact_key(source, name))
        for row in record.get("prefixes", []):
            akey = artifact_key(ckey, row.get("name", ""))
            referenced.add(akey)
            if akey not in committed:
                found.append(VerifyProblem(
                    "error", "dangling-prefix", akey,
                    f"record {ckey[:12]} lists prefix {row.get('name')!r} "
                    "with no healthy entry",
                ))

    for key, meta in sorted(committed.items()):
        if key not in referenced:
            found.append(VerifyProblem(
                "orphan", "orphaned-entry", key,
                f"healthy entry ({meta['artifact'] or '?'} of context "
                f"{meta['context'][:12] or '?'}) that no record references",
            ))
    return report
