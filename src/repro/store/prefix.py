"""Persisted selection prefixes: ``/select`` as a lookup, not a sweep.

The greedy family (``cd``, ``celf``, ``celfpp``, ``greedy``) shares one
structural property: the execution trace up to the j-th selection is
identical for every target ``k >= j`` — ``k`` is only a stopping bound.
A single run to ``K_max`` that records per-selection checkpoints
therefore answers *every* ``k <= K_max`` byte-identically to a cold run
at that ``k``; and for the lazy-queue maximizers the exported machine
state (:class:`~repro.maximization.celf.CELFState` and friends) resumes
past ``K_max`` bit-identically too.

This module persists that trace as a store artifact — a
:class:`SelectionPrefix` keyed alongside the context bundle — so a
warm ``repro serve`` answers ``/select`` in microseconds:

* ``k <= k_max`` — slice the prefix (:func:`selection_at`), no
  algorithm runs at all;
* ``k > k_max`` and the prefix is resumable — restore the lazy queue
  and run only the missing selections (:func:`resume_selection`);
* anything else falls back to the cold path.

Prefixes are keyed by the *fully bound* selector parameters (after the
service's deterministic per-(selector, trial) seed injection), so a
request only ever hits a prefix that the cold path would have answered
identically — ``tests/test_serve_prefix.py`` asserts the byte-identity.
Derived bundles (``repro ingest``) re-learn artifacts, so
:func:`refresh_prefixes` recomputes every recorded prefix against the
derived context as part of :func:`repro.stream.derive.derive_bundle`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.context import SelectionContext
from repro.api.registry import Selector, get_selector
from repro.obs import trace as obs_trace
from repro.api.results import SeedSelection
from repro.store.keys import artifact_key, canonical_json
from repro.store.store import ArtifactStore, StoreError, StoreMiss
from repro.store.warm import CONTEXT_RECORD

__all__ = [
    "PREFIXABLE_SELECTORS",
    "SelectionPrefix",
    "prefix_artifact_name",
    "bind_selector",
    "compute_prefix",
    "save_prefix",
    "load_prefix",
    "load_prefix_checked",
    "selection_at",
    "resume_selection",
    "precompute_prefix",
    "refresh_prefixes",
]

# Selector name -> whether its exported state supports resuming past
# k_max (greedy records checkpoints but has no resumable queue).
PREFIXABLE_SELECTORS: dict[str, bool] = {
    "cd": True,
    "celf": True,
    "celfpp": True,
    "greedy": False,
    "ris": False,
    "hop": False,
}

_DIGEST_SIZE = 16


@dataclass
class SelectionPrefix:
    """One persisted selection trace for ``(selector, bound params)``.

    ``checkpoints[i]`` is ``(oracle_calls, spread)`` immediately after
    the ``i+1``-th selection — exactly the terminal values of a cold run
    at ``k = i + 1`` (the maximizers' checkpoint contract).  ``state``
    is the resumable machine state after ``k_max`` selections, or
    ``None`` for checkpoint-only selectors.  ``metadata`` is the cold
    selection's deterministic metadata (``num_rr_sets`` for the sketch
    selectors; wall-clock ``time_log`` is excluded), replayed verbatim
    so a prefix hit is byte-identical to a cold response.
    """

    selector: str
    params: dict[str, Any]
    k_max: int
    seeds: list = field(default_factory=list)
    gains: list[float] = field(default_factory=list)
    checkpoints: list = field(default_factory=list)
    state: Any = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def resumable(self) -> bool:
        return self.state is not None

    def artifact_name(self) -> str:
        return prefix_artifact_name(self.selector, self.params)

    def record_entry(self) -> dict[str, Any]:
        """The row the context record's ``prefixes`` list carries."""
        return {
            "name": self.artifact_name(),
            "selector": self.selector,
            "params": dict(self.params),
            "k_max": self.k_max,
        }


def prefix_artifact_name(selector: str, params: Mapping[str, Any]) -> str:
    """The artifact slot name for one ``(selector, bound params)`` pair.

    ``params`` must be the fully bound set (including any injected
    ``seed``) — the same dict the cold path stamps into
    ``SeedSelection.params`` — so equal names imply byte-equal answers.
    """
    digest = hashlib.blake2b(
        canonical_json({"selector": selector, "params": dict(params)}).encode(
            "utf-8"
        ),
        digest_size=_DIGEST_SIZE,
    ).hexdigest()
    return f"__prefix__/{digest}"


def bind_selector(
    context: SelectionContext,
    name: str,
    params: Mapping[str, Any] | None = None,
    trial: int = 0,
) -> Selector:
    """Bind ``name`` with the service's deterministic seed injection.

    A stochastic selector without an explicit ``seed`` parameter gets
    ``context.derive_seed(name, trial)`` — the exact rule
    ``QueryService.select`` and the experiment runner apply — so the
    bound parameter set (and with it the prefix key) matches what a
    live request would run with.
    """
    selector = get_selector(name, **dict(params or {}))
    if selector.spec.stochastic and "seed" not in selector.params:
        selector = selector.with_params(seed=context.derive_seed(name, trial))
    return selector


def compute_prefix(
    context: SelectionContext, selector: Selector, k_max: int
) -> SelectionPrefix:
    """Run ``selector`` to ``k_max`` once, capturing the full trace."""
    name = selector.name
    if name not in PREFIXABLE_SELECTORS:
        raise ValueError(
            f"selector {name!r} has no prefix support; prefixable: "
            f"{sorted(PREFIXABLE_SELECTORS)}"
        )
    checkpoints: list = []
    extras: dict[str, Any] = {"checkpoints": checkpoints}
    state_out: list = []
    if PREFIXABLE_SELECTORS[name]:
        extras["state_out"] = state_out
    with obs_trace.span("prefix.compute", selector=name, k_max=k_max):
        selection = selector.select(context, k_max, extras=extras)
    return SelectionPrefix(
        selector=name,
        params=dict(selector.params),
        k_max=len(selection.seeds),
        seeds=list(selection.seeds),
        gains=list(selection.gains),
        checkpoints=[tuple(entry) for entry in checkpoints],
        state=state_out[0] if state_out else None,
        metadata={
            key: value
            for key, value in selection.metadata.items()
            if key != "time_log"
        },
    )


def selection_at(prefix: SelectionPrefix, k: int) -> SeedSelection:
    """The ``k``-seed selection, reconstructed from the prefix alone.

    Matches the cold selection field-for-field (seeds, gains, spread,
    oracle_calls, selector, params); only the instrumentation the
    service strips anyway (``wall_time_s``, ``metadata["time_log"]``)
    differs.
    """
    if not 1 <= k <= prefix.k_max:
        raise ValueError(
            f"k={k} is outside the prefix range 1..{prefix.k_max}"
        )
    oracle_calls, spread = prefix.checkpoints[k - 1]
    return SeedSelection(
        seeds=list(prefix.seeds[:k]),
        gains=list(prefix.gains[:k]),
        spread=spread,
        oracle_calls=int(oracle_calls),
        selector=prefix.selector,
        params=dict(prefix.params),
        metadata=dict(getattr(prefix, "metadata", {}) or {}),
    )


def resume_selection(
    context: SelectionContext, prefix: SelectionPrefix, k: int
) -> tuple[SeedSelection, SelectionPrefix]:
    """Continue a resumable prefix to ``k > k_max``.

    Runs only the ``k - k_max`` missing selections from the persisted
    machine state — bit-identical to a cold run at ``k`` — and returns
    both the selection and an extended prefix covering ``k`` (which the
    caller may cache or persist in place of the old one).
    """
    if prefix.state is None:
        raise ValueError(
            f"prefix for {prefix.selector!r} is not resumable"
        )
    selector = get_selector(prefix.selector, **prefix.params)
    checkpoints: list = []
    state_out: list = []
    with obs_trace.span(
        "prefix.resume", selector=prefix.selector,
        k_max=prefix.k_max, k=k,
    ):
        selection = selector.select(
            context,
            k,
            extras={
                "state": prefix.state,
                "checkpoints": checkpoints,
                "state_out": state_out,
            },
        )
    extended = SelectionPrefix(
        selector=prefix.selector,
        params=dict(prefix.params),
        k_max=len(selection.seeds),
        seeds=list(selection.seeds),
        gains=list(selection.gains),
        checkpoints=list(prefix.checkpoints)
        + [tuple(entry) for entry in checkpoints],
        state=state_out[0] if state_out else None,
        metadata={
            key: value
            for key, value in selection.metadata.items()
            if key != "time_log"
        },
    )
    return selection, extended


# ----------------------------------------------------------------------
# Store plumbing
# ----------------------------------------------------------------------
def save_prefix(
    store: ArtifactStore,
    record: Mapping[str, Any],
    prefix: SelectionPrefix,
) -> dict[str, Any]:
    """Commit ``prefix`` and list it on the context record.

    The artifact is written first, the record updated second (record-
    as-commit, like every other store mutation): a crash in between
    leaves an unreferenced artifact, never a dangling reference.
    Returns the updated record.
    """
    ckey = record["context_key"]
    name = prefix.artifact_name()
    store.put(
        artifact_key(ckey, name),
        prefix,
        meta={
            "context": ckey,
            "artifact": name,
            "dataset": record.get("dataset", ""),
            "selector": prefix.selector,
            "k_max": prefix.k_max,
        },
        refresh=True,
    )
    updated = dict(record)
    rows = [
        row
        for row in updated.get("prefixes", [])
        if row.get("name") != name
    ]
    rows.append(prefix.record_entry())
    updated["prefixes"] = sorted(rows, key=lambda row: row["name"])
    store.put(
        artifact_key(ckey, CONTEXT_RECORD),
        updated,
        meta={
            "context": ckey,
            "artifact": CONTEXT_RECORD,
            "dataset": record.get("dataset", ""),
        },
        refresh=True,
    )
    return updated


def load_prefix_checked(
    store: ArtifactStore,
    record: Mapping[str, Any],
    selector: str,
    params: Mapping[str, Any],
) -> tuple[SelectionPrefix | None, str | None]:
    """Like :func:`load_prefix`, but tells *absent* apart from *broken*.

    Returns ``(prefix, problem)``: ``(None, None)`` when the record
    simply lists no prefix for these bound params — the expected cold
    case — and ``(None, "<reason>")`` when the record **does** list one
    but the artifact would not load (corruption, concurrent gc, a
    payload of the wrong type).  The caller still serves the cold path
    either way; the ``problem`` string is what lets the service surface
    a ``degraded`` health marker instead of silently absorbing store
    damage request after request.
    """
    name = prefix_artifact_name(selector, params)
    if not any(
        row.get("name") == name for row in record.get("prefixes", [])
    ):
        return None, None
    try:
        value = store.get(artifact_key(record["context_key"], name))
    except StoreMiss as error:
        return None, f"prefix {name!r} listed on the record but gone: {error}"
    except StoreError as error:
        return None, f"prefix {name!r} unreadable: {error}"
    if not isinstance(value, SelectionPrefix):
        return None, (
            f"prefix {name!r} loaded as {type(value).__name__}, "
            "not SelectionPrefix"
        )
    return value, None


def load_prefix(
    store: ArtifactStore,
    record: Mapping[str, Any],
    selector: str,
    params: Mapping[str, Any],
) -> SelectionPrefix | None:
    """The stored prefix for ``(selector, bound params)``, or ``None``.

    Consults the record's ``prefixes`` list before touching disk, so a
    context without prefixes costs one dict lookup; a listed-but-
    unreadable artifact (corruption, concurrent gc) degrades to the
    cold path rather than failing the request.
    """
    value, _problem = load_prefix_checked(store, record, selector, params)
    return value


def precompute_prefix(
    store: ArtifactStore,
    record: Mapping[str, Any],
    context: SelectionContext,
    selector_name: str,
    k_max: int,
    params: Mapping[str, Any] | None = None,
    trial: int = 0,
) -> SelectionPrefix:
    """Compute and persist one prefix for a stored context (CLI entry)."""
    selector = bind_selector(context, selector_name, params, trial=trial)
    prefix = compute_prefix(context, selector, k_max)
    save_prefix(store, record, prefix)
    return prefix


def refresh_prefixes(
    store: ArtifactStore,
    record: Mapping[str, Any],
    context: SelectionContext,
) -> tuple[dict[str, Any], list[SelectionPrefix]]:
    """Recompute every prefix listed on ``record`` against ``context``.

    The ingest maintenance hook: a derived bundle's artifacts differ
    from its base's, so the base's traces are stale for it — each one
    is recomputed from the (already loaded) derived artifacts with the
    same selector, bound parameters and ``k_max``, and committed under
    the derived context's own key.  (The recorded parameters already
    include any injected seed; derivation keeps the learn-spec seed, so
    a live request against the derived bundle injects the same value.)

    Returns ``(updated record, refreshed prefixes)``.  Rows start
    stripped and re-enter the record only as their recomputed artifact
    commits — the record never references a prefix artifact that does
    not exist under its own context key.  A row whose recompute fails
    (e.g. the derived bundle lacks the needed artifacts) is dropped,
    which just means the cold path serves it.
    """
    refreshed: list[SelectionPrefix] = []
    current = dict(record)
    worklist = list(current.get("prefixes", []))
    current["prefixes"] = []
    for row in worklist:
        try:
            selector = bind_selector(
                context, row["selector"], row.get("params", {})
            )
            prefix = compute_prefix(context, selector, int(row["k_max"]))
        except (ValueError, KeyError, StoreMiss):
            continue
        current = save_prefix(store, current, prefix)
        refreshed.append(prefix)
    return current, refreshed
