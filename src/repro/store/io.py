"""The store's physical I/O operations, as an injectable seam.

Every byte :class:`~repro.store.store.ArtifactStore` moves to or from
disk goes through one :class:`StoreIO` instance — open, write, fsync,
``os.replace``, directory fsync, and the read side.  The default
implementation is a thin veneer over ``os``/``pathlib``; the point of
the indirection is that :mod:`repro.faults` can substitute a
:class:`~repro.faults.injector.FaultInjector` that implements the same
surface and deterministically simulates torn writes, ``ENOSPC``,
``EIO`` and crash-at-step-N — so crash-consistency and degradation
behavior are testable without root privileges, loop devices or actual
power cuts.

Durability note: :meth:`StoreIO.fsync_dir` flushes a *directory* entry
after a rename, which is what makes an ``os.replace``-committed file
survive power loss (the data fsync alone only protects the inode's
contents, not the link to it).  On platforms that cannot open
directories (no ``O_DIRECTORY``; e.g. Windows) it degrades to a no-op —
the rename is still atomic with respect to crashes of *this process*,
which is the portable part of the contract.

Selecting an injector without code changes: ``default_store_io``
consults the ``REPRO_FAULTS`` environment variable and, when set,
builds a :class:`~repro.faults.injector.FaultInjector` from its plan
text (see :func:`repro.faults.plan.parse_fault_plan`).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, BinaryIO

__all__ = ["StoreIO", "default_store_io", "REPRO_FAULTS_ENV"]

REPRO_FAULTS_ENV = "REPRO_FAULTS"


class StoreIO:
    """Real disk I/O — the production implementation of the seam."""

    def open_write(self, path: Path) -> BinaryIO:
        """Open ``path`` for binary writing (the temp-file side)."""
        return open(path, "wb")

    def write(self, handle: BinaryIO, data: bytes) -> None:
        """Write ``data`` to an open handle."""
        handle.write(data)

    def fsync(self, handle: BinaryIO) -> None:
        """Flush and fsync an open handle (file contents reach the disk)."""
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, source: Path, target: Path) -> None:
        """Atomically rename ``source`` over ``target``."""
        os.replace(source, target)

    def fsync_dir(self, directory: Path) -> None:
        """Fsync a directory so a just-renamed entry survives power loss.

        No-op where directories cannot be opened for fsync (platforms
        without ``O_DIRECTORY``) — the crash-of-this-process atomicity
        of ``os.replace`` is unaffected, only power-loss durability.
        """
        flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
        try:
            fd = os.open(directory, flags)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def read_bytes(self, path: Path) -> bytes:
        """Read a file's full contents (payloads, manifests)."""
        return Path(path).read_bytes()

    def fire(self, site: str, **info: Any) -> None:
        """Service-level fault hook; the real IO never fires anything.

        :class:`~repro.faults.injector.FaultInjector` overrides this to
        inject delays/errors at named sites (``serve.spread``,
        ``serve.worker``, ``serve.ingest``, ...); production code calls
        it unconditionally so the call sites are always exercised.
        """


_DEFAULT = StoreIO()


def default_store_io() -> StoreIO:
    """The process-wide IO: real disk, unless ``REPRO_FAULTS`` is set.

    The environment hook is how the soak harness (and an operator
    running a game-day) injects faults into an unmodified binary:
    ``REPRO_FAULTS='seed=7;read:eio@p=0.01' repro serve ...``.
    """
    plan_text = os.environ.get(REPRO_FAULTS_ENV, "").strip()
    if not plan_text:
        return _DEFAULT
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import parse_fault_plan

    return FaultInjector(parse_fault_plan(plan_text))
