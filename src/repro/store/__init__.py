"""``repro.store`` — persistent artifacts and warm-start serving.

The paper's premise is that influence artifacts are *learned once* from
the action log and then reused to answer many maximization/prediction
queries.  This package makes that literal:

* :mod:`repro.store.keys` — deterministic, content-derived cache keys
  (dataset fingerprint x split spec x learn spec x format version);
* :mod:`repro.store.serialize` — exact payload codec + checksums;
* :mod:`repro.store.store` — :class:`ArtifactStore`: the versioned,
  content-addressed on-disk store with atomic, corruption-safe writes;
* :mod:`repro.store.warm` — warm-starting
  :class:`~repro.api.context.SelectionContext` caches from the store
  (``ExperimentConfig(store=..., warm_start=True)`` routes the runtime
  learn stage through here);
* :mod:`repro.store.prefix` — persisted selection-prefix artifacts
  (:class:`SelectionPrefix`): one CELF-style run to ``K_max`` recorded
  with per-k checkpoints and resumable queue state, so a warm
  ``/select`` for any ``k <= K_max`` is a lookup and larger ``k`` a
  short resume — byte-identical to the cold path;
* :mod:`repro.store.service` — the ``repro serve`` HTTP query service
  answering ``select``/``spread``/``predict`` from preloaded artifacts,
  without ever reading the raw action log (and ``/ingest``-ing
  action-log deltas into derived bundles with a zero-downtime context
  swap, via :mod:`repro.stream`).

The invariant everything here protects: a warm (store-hit) run returns
results **byte-identical** to the cold run that populated the store, on
every executor and backend.
"""

from repro.store.io import StoreIO, default_store_io
from repro.store.keys import (
    FORMAT_VERSION,
    artifact_key,
    context_key,
    fingerprint_dataset,
)
from repro.store.store import (
    ArtifactStore,
    StoreCorruption,
    StoreEntry,
    StoreError,
    StoreMiss,
)
from repro.store.prefix import (
    PREFIXABLE_SELECTORS,
    SelectionPrefix,
    load_prefix,
    load_prefix_checked,
    precompute_prefix,
    prefix_artifact_name,
    refresh_prefixes,
)
from repro.store.verify import VerifyProblem, VerifyReport, verify_store
from repro.store.warm import (
    STREAM_STATS_ARTIFACT,
    TRAIN_LOG_ARTIFACT,
    artifact_source_key,
    load_context_record,
    load_serving_context,
    list_context_records,
    required_artifacts,
    warm_start,
)

__all__ = [
    "FORMAT_VERSION",
    "fingerprint_dataset",
    "context_key",
    "artifact_key",
    "ArtifactStore",
    "StoreEntry",
    "StoreError",
    "StoreMiss",
    "StoreCorruption",
    "StoreIO",
    "default_store_io",
    "VerifyProblem",
    "VerifyReport",
    "verify_store",
    "required_artifacts",
    "warm_start",
    "load_context_record",
    "load_serving_context",
    "list_context_records",
    "artifact_source_key",
    "TRAIN_LOG_ARTIFACT",
    "STREAM_STATS_ARTIFACT",
    "PREFIXABLE_SELECTORS",
    "SelectionPrefix",
    "prefix_artifact_name",
    "precompute_prefix",
    "load_prefix",
    "load_prefix_checked",
    "refresh_prefixes",
]
