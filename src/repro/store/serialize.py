"""Payload (de)serialization and integrity checks for the store.

Artifacts are persisted as pickle protocol 4 with a ``blake2b``
checksum recorded in the manifest.  Pickle is the right codec here —
and JSON/TSV would be wrong — because the warm-start contract is
*byte-for-byte* identity with a cold run:

* learned artifacts are dicts whose **iteration order** is part of the
  reproducibility contract (selector tie-breaks walk them in order);
  pickle preserves insertion order exactly;
* floats round-trip bit-exactly, with no decimal formatting layer;
* node/action identifiers are arbitrary hashables (ints, strings,
  tuples), which a textual format would have to re-parse heuristically;
* the compiled CSR forms of :mod:`repro.kernels.interning` and the
  nested-dict :class:`~repro.core.index.CreditIndex` define compact
  pickle state already shared with the process executor.

The safety considerations that usually argue against pickle do not
apply: the store is a local cache written and read by the same library,
every payload is integrity-checked against its manifest before
unpickling, and a checksum mismatch or undecodable payload surfaces as
:class:`~repro.store.store.StoreCorruption` — which consumers treat as
a cache miss (re-learn), never as data.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any

__all__ = ["dump_payload", "load_payload", "checksum", "PayloadError"]

_PROTOCOL = 4  # stable since Python 3.4; one choice for every writer


class PayloadError(ValueError):
    """A payload could not be encoded or decoded."""


def dump_payload(obj: Any) -> bytes:
    """Serialize one artifact to its on-disk payload bytes."""
    try:
        return pickle.dumps(obj, protocol=_PROTOCOL)
    except Exception as error:  # unpicklable artifact: a caller bug
        raise PayloadError(f"artifact is not serializable: {error}") from error


def load_payload(data: bytes) -> Any:
    """Decode payload bytes back into the artifact object."""
    try:
        return pickle.loads(data)
    except Exception as error:
        raise PayloadError(f"payload does not decode: {error}") from error


def checksum(data: bytes) -> str:
    """The integrity digest recorded in (and verified against) manifests."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()
