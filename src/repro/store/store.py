"""The on-disk artifact store: versioned, content-addressed, atomic.

Layout (all under one root directory)::

    <root>/objects/<key[:2]>/<key>/manifest.json   # commit marker
    <root>/objects/<key[:2]>/<key>/payload.bin     # pickled artifact

(A ``refresh`` that replaces a live entry commits its new bytes under a
checksum-named ``payload-<sum>.bin`` generation file instead — the
manifest records which file is current — so the old manifest+payload
pair stays readable until the new manifest renames over it.)

A manifest names the store format version, the payload's byte count and
checksum, a creation timestamp and a JSON ``meta`` mapping (dataset
name, artifact slot, learn parameters — whatever the writer wants
``repro store ls`` to render).  Writes are corruption-safe: the payload
is written to a temp file and ``os.replace``d into place, then the
manifest likewise — the manifest's presence *is* the commit, so a
crash mid-write leaves either no entry or a complete one, never a torn
one.  Reads verify the checksum before decoding; any mismatch, parse
failure or missing payload raises :class:`StoreCorruption`, which
consumers (the warm-start loader, the CLI) treat as a miss.

Entries written by a different :data:`~repro.store.keys.FORMAT_VERSION`
are reported as misses, not errors — version bumps invalidate, they do
not corrupt.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Collection, Iterator

from repro.obs import trace as obs_trace
from repro.store.io import StoreIO, default_store_io
from repro.store.keys import FORMAT_VERSION
from repro.store.serialize import (
    PayloadError,
    checksum,
    dump_payload,
    load_payload,
)

__all__ = [
    "StoreError",
    "StoreMiss",
    "StoreCorruption",
    "StoreEntry",
    "ArtifactStore",
]

_MANIFEST = "manifest.json"
_PAYLOAD = "payload.bin"


class StoreError(Exception):
    """Base class for artifact-store failures."""


class StoreMiss(StoreError, KeyError):
    """The requested key has no (current-format) entry."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return Exception.__str__(self)


class StoreCorruption(StoreError):
    """An entry exists but cannot be trusted (torn write, bad checksum)."""


@dataclass(frozen=True)
class StoreEntry:
    """One committed entry's manifest, as read from disk."""

    key: str
    format_version: int
    payload_bytes: int
    checksum: str
    created_at: float
    meta: dict[str, Any] = field(default_factory=dict)
    # Which file in the entry directory holds the payload.  Fresh
    # entries use ``payload.bin``; a ``refresh`` over a live entry
    # commits its new bytes under a checksum-named generation file so
    # the old manifest+payload pair stays readable until the new
    # manifest renames into place (crash-atomic replacement).
    payload_name: str = _PAYLOAD

    def describe(self) -> str:
        """A one-line human summary (the ``repro store ls`` row source)."""
        artifact = self.meta.get("artifact", "?")
        dataset = self.meta.get("dataset", "?")
        return f"{self.key[:12]}  {dataset}  {artifact}  {self.payload_bytes}B"


class ArtifactStore:
    """A content-addressed artifact store rooted at one directory."""

    # Orphaned temp files are only collected after this many seconds —
    # younger ones may be a concurrent writer's in-flight payload.
    _TMP_GRACE_S = 3600.0

    def __init__(
        self,
        root: str | os.PathLike[str],
        create: bool = True,
        io: StoreIO | None = None,
        metrics: Any | None = None,
    ) -> None:
        self.root = Path(root)
        # All physical I/O routes through this seam; ``repro.faults``
        # substitutes a deterministic fault injector here (directly, or
        # process-wide via the REPRO_FAULTS environment variable).
        self.io = io if io is not None else default_store_io()
        # Optional observability seam: a repro.obs.metrics.Registry.
        # When set (the query service passes its own), every get/put
        # outcome is counted — strictly out-of-band, bytes unchanged.
        self._get_counter = self._put_counter = None
        if metrics is not None:
            self._get_counter = metrics.counter(
                "repro_store_get_total",
                "Store reads by outcome",
                ("result",),
            )
            self._put_counter = metrics.counter(
                "repro_store_put_total", "Store entry commits"
            )
        self._objects = self.root / "objects"
        if create:
            self._objects.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            # Readers fail fast on a typo'd path instead of presenting
            # a healthy-looking empty store.
            raise StoreError(f"no artifact store at {self.root}")

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @staticmethod
    def _valid_key(key: str) -> bool:
        return bool(key) and all(ch in "0123456789abcdef" for ch in key)

    def _entry_dir(self, key: str) -> Path:
        if not self._valid_key(key):
            raise StoreError(f"malformed store key {key!r}")
        return self._objects / key[:2] / key

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        obj: Any,
        meta: dict[str, Any] | None = None,
        refresh: bool = False,
    ) -> StoreEntry:
        """Commit ``obj`` under ``key`` (idempotent unless ``refresh``).

        An existing current-format entry is left untouched when
        ``refresh`` is false — the key scheme guarantees equal keys mean
        equal values, so rewriting would only churn bytes.
        """
        with obs_trace.span("store.put", key=key[:12], refresh=refresh):
            return self._put(key, obj, meta, refresh)

    def _put(
        self,
        key: str,
        obj: Any,
        meta: dict[str, Any] | None,
        refresh: bool,
    ) -> StoreEntry:
        if self._put_counter is not None:
            self._put_counter.inc()
        if not refresh and self.contains(key):
            return self.entry(key)
        payload = dump_payload(obj)
        directory = self._entry_dir(key)
        directory.mkdir(parents=True, exist_ok=True)
        # A refresh over a live entry must be crash-atomic: replacing
        # payload.bin in place would leave the *old* manifest pointing
        # at the *new* bytes if we die before the manifest commits — a
        # torn entry where both versions are lost.  Instead the new
        # payload lands under a checksum-named generation file and the
        # manifest (the commit marker) says which file is current; the
        # superseded file is unlinked only after the commit.
        previous: StoreEntry | None = None
        if refresh and (directory / _MANIFEST).exists():
            try:
                previous = self._read_manifest(directory / _MANIFEST)
                if previous.format_version != FORMAT_VERSION:
                    previous = None
            except StoreCorruption:
                previous = None
        digest = checksum(payload)
        payload_name = _PAYLOAD
        if previous is not None and previous.checksum != digest:
            payload_name = f"payload-{digest[:12]}.bin"
        elif previous is not None:
            # Same bytes: rewriting the existing file is tear-free (the
            # replacement content matches what the old manifest claims)
            # and repairs any external damage to it.
            payload_name = previous.payload_name
        entry = StoreEntry(
            key=key,
            format_version=FORMAT_VERSION,
            payload_bytes=len(payload),
            checksum=digest,
            created_at=time.time(),
            meta=dict(meta or {}),
            payload_name=payload_name,
        )
        self._replace_into(directory / entry.payload_name, payload)
        manifest = {
            "format_version": entry.format_version,
            "key": entry.key,
            "payload_bytes": entry.payload_bytes,
            "checksum": entry.checksum,
            "created_at": entry.created_at,
            "meta": entry.meta,
        }
        if entry.payload_name != _PAYLOAD:
            manifest["payload"] = entry.payload_name
        self._replace_into(
            directory / _MANIFEST,
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
        )
        if previous is not None and previous.payload_name != entry.payload_name:
            # Post-commit garbage: the superseded payload generation.
            # A crash before this unlink leaves a stale file that gc
            # collects after the grace window.
            try:
                (directory / previous.payload_name).unlink()
            except OSError:
                pass
        return entry

    def _replace_into(self, target: Path, data: bytes) -> None:
        """Atomically materialize ``data`` at ``target`` (durably).

        temp write → fsync → ``os.replace`` → parent-directory fsync.
        The directory fsync is what makes the rename itself survive
        power loss: without it a committed manifest can vanish with the
        unflushed directory block, resurrecting the pre-write state (or
        a payload/manifest tear) after reboot.
        """
        io = self.io
        temporary = target.parent / f".tmp-{uuid.uuid4().hex}"
        handle = io.open_write(temporary)
        try:
            io.write(handle, data)
            io.fsync(handle)
        finally:
            handle.close()
        io.replace(temporary, target)
        io.fsync_dir(target.parent)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        """True iff ``key`` has a committed current-format entry."""
        try:
            self.entry(key)
        except StoreError:
            return False
        return True

    def entry(self, key: str) -> StoreEntry:
        """The manifest of ``key`` (no payload read).

        Raises :class:`StoreMiss` for absent or other-format entries and
        :class:`StoreCorruption` for unreadable manifests.
        """
        manifest_path = self._entry_dir(key) / _MANIFEST
        if not manifest_path.exists():
            raise StoreMiss(f"no entry for key {key}")
        entry = self._read_manifest(manifest_path)
        if entry.format_version != FORMAT_VERSION:
            raise StoreMiss(
                f"entry {key} has format_version {entry.format_version}, "
                f"this library reads {FORMAT_VERSION}"
            )
        return entry

    def _read_manifest(self, path: Path) -> StoreEntry:
        # A vanished file is evidence about the *entry* (torn or
        # concurrently deleted) and maps to StoreCorruption; any other
        # OSError (EIO, a flaky mount) is evidence about the *device*
        # and propagates raw — it may succeed on retry, and classifying
        # it as corruption would let gc delete a healthy entry.
        try:
            data = self.io.read_bytes(path)
        except FileNotFoundError as error:
            raise StoreCorruption(
                f"unreadable manifest {path}: {error}"
            ) from error
        try:
            payload = json.loads(data.decode("utf-8"))
            name = str(payload.get("payload", _PAYLOAD))
            if "/" in name or "\\" in name or not name.startswith("payload"):
                raise ValueError(f"suspicious payload file name {name!r}")
            return StoreEntry(
                key=str(payload["key"]),
                format_version=int(payload["format_version"]),
                payload_bytes=int(payload["payload_bytes"]),
                checksum=str(payload["checksum"]),
                created_at=float(payload["created_at"]),
                meta=dict(payload.get("meta", {})),
                payload_name=name,
            )
        except (ValueError, TypeError, KeyError) as error:
            raise StoreCorruption(f"unreadable manifest {path}: {error}") from error

    def _verified_payload(self, key: str) -> bytes:
        """The raw payload bytes of ``key``, checksum-verified."""
        entry = self.entry(key)
        payload_path = self._entry_dir(key) / entry.payload_name
        try:
            payload = self.io.read_bytes(payload_path)
        except FileNotFoundError as error:
            raise StoreCorruption(
                f"entry {key} has a manifest but no readable payload: {error}"
            ) from error
        # Other OSErrors propagate raw — transient device errors are
        # retryable, not proof of a torn write (see _read_manifest).
        if len(payload) != entry.payload_bytes or checksum(payload) != entry.checksum:
            raise StoreCorruption(
                f"entry {key} payload does not match its manifest "
                "(torn write or external modification)"
            )
        return payload

    def get(self, key: str) -> Any:
        """Load and decode the artifact stored under ``key``.

        Raises :class:`StoreMiss` when absent, :class:`StoreCorruption`
        when the entry cannot be trusted (checksum or size mismatch,
        undecodable payload).
        """
        with obs_trace.span("store.get", key=key[:12]):
            try:
                value = load_payload(self._verified_payload(key))
            except PayloadError as error:
                self._count_get("corrupt")
                raise StoreCorruption(f"entry {key}: {error}") from error
            except StoreCorruption:
                self._count_get("corrupt")
                raise
            except StoreMiss:
                self._count_get("miss")
                raise
            self._count_get("hit")
            return value

    def _count_get(self, result: str) -> None:
        if self._get_counter is not None:
            self._get_counter.inc(result=result)

    def verify(self, key: str) -> bool:
        """True iff ``key``'s entry is committed and its bytes check out.

        Reads the payload and compares checksums but never decodes it —
        the cheap health probe ``gc`` and the warm-start writer use to
        detect torn/modified entries without unpickling them.
        """
        try:
            self._verified_payload(key)
        except StoreError:
            return False
        return True

    # ------------------------------------------------------------------
    # Enumeration and maintenance
    # ------------------------------------------------------------------
    def _entry_dirs(self) -> Iterator[Path]:
        if not self._objects.exists():
            return
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for directory in sorted(shard.iterdir()):
                if directory.is_dir():
                    yield directory

    def entries(self) -> list[StoreEntry]:
        """Every committed, readable, current-format entry's manifest."""
        found: list[StoreEntry] = []
        for directory in self._entry_dirs():
            try:
                found.append(self.entry(directory.name))
            except StoreError:
                continue
        return found

    def delete(self, key: str) -> None:
        """Remove an entry (manifest first, so readers never see a torn one)."""
        directory = self._entry_dir(key)
        for name in (_MANIFEST, _PAYLOAD):
            try:
                (directory / name).unlink()
            except FileNotFoundError:
                pass
        self._remove_dir(directory)

    def _remove_dir(self, directory: Path) -> None:
        try:
            for stray in directory.iterdir():
                stray.unlink()
            directory.rmdir()
        except OSError:
            pass

    def gc(
        self,
        older_than_s: float | None = None,
        dry_run: bool = False,
        protect_contexts: Collection[str] = (),
    ) -> list[str]:
        """Collect garbage; returns the keys/paths that were (or would be)
        removed.

        Always collects broken entries — torn writes, checksum
        mismatches, stale-format manifests, leftover temp files.
        ``older_than_s`` additionally expires healthy entries whose
        manifest is older than that many seconds (age-based cache
        rotation; the key scheme makes any entry safe to drop — the
        next run re-learns and re-saves).  ``protect_contexts`` exempts
        healthy entries whose ``meta["context"]`` is listed from age
        expiry — the lineage guard: a delta-derived bundle aliases
        artifacts of its ancestors instead of copying them, so
        collecting a still-referenced ancestor would tear the derived
        bundle (see :func:`repro.stream.derive.referenced_context_keys`).
        """
        removed: list[str] = []
        protected = set(protect_contexts)
        now = time.time()
        for directory in list(self._entry_dirs()):
            key = directory.name
            if not self._valid_key(key):
                # A foreign directory under objects/ is garbage by
                # definition — nothing the store wrote lands there.
                removed.append(str(directory.relative_to(self.root)))
                if not dry_run:
                    self._remove_dir(directory)
                continue
            for stray in directory.glob(".tmp-*"):
                # Temp files younger than the grace window may belong
                # to a concurrent writer mid-_replace_into; deleting
                # one would crash that writer's os.replace.
                try:
                    age = now - stray.stat().st_mtime
                except OSError:
                    continue
                if age < self._TMP_GRACE_S:
                    continue
                removed.append(str(stray.relative_to(self.root)))
                if not dry_run:
                    stray.unlink()
            try:
                entry = self.entry(key)
                self._verified_payload(key)
            except StoreError:
                removed.append(key)
                if not dry_run:
                    self.delete(key)
                continue
            for stray in directory.glob("payload*"):
                # Superseded payload generations: a crashed refresh can
                # leave the old (or an uncommitted new) payload file
                # behind.  Same grace window as temp files — a younger
                # one may belong to a refresh that is about to commit.
                if stray.name == entry.payload_name:
                    continue
                try:
                    age = now - stray.stat().st_mtime
                except OSError:
                    continue
                if age < self._TMP_GRACE_S:
                    continue
                removed.append(str(stray.relative_to(self.root)))
                if not dry_run:
                    try:
                        stray.unlink()
                    except OSError:
                        pass
            if older_than_s is not None and now - entry.created_at > older_than_s:
                if entry.meta.get("context") in protected:
                    continue
                removed.append(key)
                if not dry_run:
                    self.delete(key)
        return removed

    def derive(
        self,
        delta: Any,
        context: str | None = None,
        dataset_name: str | None = None,
        verify: bool = False,
    ) -> Any:
        """Apply an action-log delta to a stored bundle (see repro.stream).

        Thin delegate to :func:`repro.stream.derive.derive_bundle`:
        folds ``delta`` into the bundle selected by ``context`` (key or
        prefix; default the store's only context) and commits the
        updated bundle under the union dataset's fingerprint with a
        ``derived_from`` lineage link.  Returns the
        :class:`~repro.stream.derive.DeriveResult`.
        """
        from repro.stream.derive import derive_bundle

        with obs_trace.span("store.derive"):
            return derive_bundle(
                self,
                delta,
                context=context,
                dataset_name=dataset_name,
                verify=verify,
            )

    def size_bytes(self) -> int:
        """Total payload bytes across committed entries."""
        return sum(entry.payload_bytes for entry in self.entries())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore(root={str(self.root)!r})"
