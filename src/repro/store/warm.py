"""Warm-starting contexts from the store (learn once, reuse everywhere).

This module is the bridge between :class:`~repro.store.store.ArtifactStore`
and :class:`~repro.api.context.SelectionContext`:

* :func:`required_artifacts` maps an
  :class:`~repro.api.experiment.ExperimentConfig` to the artifact slots
  its selectors / prediction methods / evaluation will pull — the same
  capability-flag routing the runtime's learn stage validates against;
* :func:`warm_start` loads whatever the store holds for the context's
  key (hit), builds what is missing through the context's own lazy
  accessors (miss → learn), and saves every newly built artifact back —
  so the *next* run with the same key skips learning entirely;
* :func:`save_context`/:func:`load_context_record` persist the *context
  record*: the graph plus the learn parameters and artifact inventory
  the ``repro serve`` query service needs to rebuild a servable context
  without ever touching the raw action log.

Because stored payloads are the exact objects a cold run would have
built (see :mod:`repro.store.serialize`), a warm run's results are
byte-identical to the cold run's on every executor; the parity tests
pin this.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

from repro.api.context import ARTIFACT_NAMES, SelectionContext
from repro.obs import trace as obs_trace
from repro.store.keys import artifact_key, context_key, fingerprint_dataset
from repro.store.store import ArtifactStore, StoreCorruption, StoreMiss

__all__ = [
    "GRAPH_ARTIFACT",
    "CONTEXT_RECORD",
    "TRAIN_LOG_ARTIFACT",
    "STREAM_STATS_ARTIFACT",
    "required_artifacts",
    "context_key_for",
    "artifact_source_key",
    "warm_start",
    "load_context_record",
    "list_context_records",
]

# Extra store slots beyond the context's learned artifacts: the social
# graph (serving needs it to rebuild a context), the context record
# (the serving layer's table of contents), the training action log and
# the streaming sufficient statistics (both feed `repro ingest`, which
# validates deltas against the log and updates LT weights from the
# statistics — see :mod:`repro.stream`).
GRAPH_ARTIFACT = "graph"
CONTEXT_RECORD = "__context__"
TRAIN_LOG_ARTIFACT = "__train_log__"
STREAM_STATS_ARTIFACT = "__stream_stats__"


def artifact_source_key(record: Mapping[str, Any], name: str) -> str:
    """The context key artifact ``name`` actually lives under.

    Delta-derived bundles alias artifacts a delta cannot change (the
    graph, graph-only probabilities) instead of copying them; the
    record's ``artifact_sources`` maps those names to the ancestor
    bundle holding the bytes.  Base bundles have no sources — every
    artifact lives under the record's own key.
    """
    return record.get("artifact_sources", {}).get(name, record["context_key"])


def required_artifacts(config: Any) -> list[str]:
    """The artifact slots ``config`` will pull, from the capability flags.

    Mirrors the routing rule of the runtime learn stage
    (``_missing_artifacts`` / ``_prefetch_artifacts``): ``needs_index``
    → the credit index, ``needs_probabilities`` → the resolved
    assignment's probabilities, ``needs_weights`` → LT weights,
    ``needs_sketches`` → the default reverse-reachability batch (plus
    the probabilities it is drawn over, so a sketch miss can re-learn),
    ``needs_oracle`` → whatever the bound model consumes; the CD-proxy
    evaluation and the prediction task add their own.  The
    influenceability parameters ride along whenever the time-decay
    credit scheme backs an index/evaluator build.
    """
    from repro.api.registry import get_selector

    needed: list[str] = []

    def _add(name: str) -> None:
        if name not in needed:
            needed.append(name)

    if config.task == "prediction":
        for method in config.methods:
            if method == "CD":
                _add("cd_evaluator")
            elif method == "LT":
                _add("lt_weights")
            else:
                assignment = "EM" if method == "IC" else method
                _add(f"ic_probabilities/{assignment}")
    else:
        for entry in config.selectors:
            spec = get_selector(entry.name).spec
            method = entry.params.get("method") or config.probability_method
            model = entry.params.get("model", "cd")
            if spec.needs_index:
                _add("credit_index")
            if spec.needs_probabilities:
                _add(f"ic_probabilities/{method}")
            if spec.needs_weights:
                _add("lt_weights")
            if spec.needs_sketches:
                _add(f"ic_probabilities/{method}")
                _add("sketches")
            if spec.needs_oracle:
                if model == "cd":
                    _add("cd_evaluator")
                elif model == "ic":
                    _add(f"ic_probabilities/{method}")
                else:
                    _add("lt_weights")
        if config.evaluate_spread:
            _add("cd_evaluator")
    if config.probability_method == "PT" or any(
        name == "ic_probabilities/PT" for name in needed
    ):
        # PT perturbs the EM probabilities; storing EM too means a PT
        # miss still warm-starts its expensive half.
        _add("ic_probabilities/EM")
    if ("credit_index" in needed or "cd_evaluator" in needed) and (
        getattr(config, "credit_scheme", "timedecay") == "timedecay"
    ):
        _add("influence_params")
    return needed


def context_key_for(
    context: SelectionContext,
    dataset: Any | None = None,
    split: Mapping[str, Any] | None = None,
) -> str:
    """The store namespace key of ``context``.

    When the pipeline built the training fold itself, pass the raw
    ``dataset`` and its ``split`` spec — the fingerprint then covers the
    *full* log, so selection and prediction runs over the same dataset
    share entries.  A pre-built context (no dataset in hand)
    fingerprints its own graph/train-log under ``split="external"``.
    """
    if dataset is not None:
        fingerprint = fingerprint_dataset(dataset.graph, dataset.log)
        split_spec = dict(split or {"split": False})
    else:
        fingerprint = fingerprint_dataset(context.graph, context.train_log)
        split_spec = {"split": "external"}
    return context_key(fingerprint, split_spec, context.learn_spec())


def _load_one(
    store: ArtifactStore, key: str, events: dict, label: str
) -> Any | None:
    try:
        value = store.get(key)
    except StoreMiss:
        return None
    except StoreCorruption as error:
        warnings.warn(
            f"artifact store entry for {label!r} is corrupt and will be "
            f"re-learned: {error}",
            RuntimeWarning,
            stacklevel=3,
        )
        events["corrupt"].append(label)
        return None
    return value


def warm_start(
    store: ArtifactStore,
    context: SelectionContext,
    needed: list[str],
    *,
    consult: bool = True,
    dataset: Any | None = None,
    split: Mapping[str, Any] | None = None,
    dataset_name: str = "",
    num_simulations: int | None = None,
) -> dict[str, Any]:
    """Load hits, learn misses, save what was learned; returns the events.

    The returned mapping records the context key and, per artifact
    name, whether it was a ``hit`` (loaded), ``miss`` (learned) or
    ``corrupt`` (store entry discarded, then learned); ``saved`` lists
    what this call committed.  ``consult=False`` (``warm_start=False``
    on the config) skips the read side — every needed artifact is
    rebuilt and the store refreshed, a cache-priming mode.
    """
    with obs_trace.span("store.warm_start", consult=consult) as span:
        events = _warm_start(
            store,
            context,
            needed,
            consult=consult,
            dataset=dataset,
            split=split,
            dataset_name=dataset_name,
            num_simulations=num_simulations,
        )
        span.set(
            context=events["context_key"][:12],
            hits=len(events["hits"]),
            misses=len(events["misses"]),
            corrupt=len(events["corrupt"]),
            saved=len(events["saved"]),
        )
        return events


def _warm_start(
    store: ArtifactStore,
    context: SelectionContext,
    needed: list[str],
    *,
    consult: bool = True,
    dataset: Any | None = None,
    split: Mapping[str, Any] | None = None,
    dataset_name: str = "",
    num_simulations: int | None = None,
) -> dict[str, Any]:
    ckey = context_key_for(context, dataset=dataset, split=split)
    events: dict[str, Any] = {
        "context_key": ckey,
        "hits": [],
        "misses": [],
        "corrupt": [],
        "saved": [],
        "derived": None,
    }
    # The record comes first: a delta-derived bundle's record carries the
    # artifact_sources aliases the reads below must follow, and warm runs
    # report whether they hit a base or derived bundle through it.
    record_key = artifact_key(ckey, CONTEXT_RECORD)
    previous = _load_one(store, record_key, events, CONTEXT_RECORD) or {}
    sources: Mapping[str, str] = previous.get("artifact_sources", {})
    if previous.get("derived_from"):
        events["derived"] = {
            "derived_from": previous["derived_from"],
            "lineage_depth": int(previous.get("lineage_depth", 0)),
        }
    if consult:
        for name in needed:
            if context.get_artifact(name) is not None:
                continue
            key = artifact_key(sources.get(name, ckey), name)
            value = _load_one(store, key, events, name)
            if value is None:
                events["misses"].append(name)
            else:
                context.set_artifact(name, value)
                events["hits"].append(name)
        if events["misses"] and context.backend == "numpy":
            # A kernel-built artifact must be relearned: pulling the
            # interned CSR form (if stored) skips recompilation too.
            if context.get_artifact("compiled_log") is None:
                compiled = _load_one(
                    store, artifact_key(ckey, "compiled_log"), events,
                    "compiled_log",
                )
                if compiled is not None:
                    context.set_artifact("compiled_log", compiled)
                    events["hits"].append("compiled_log")
    else:
        events["misses"] = [
            name for name in needed if context.get_artifact(name) is None
        ]
    for name in needed:
        context.build_artifact(name)

    meta_base = {
        "context": ckey,
        "dataset": (
            dataset_name
            or (dataset.name if dataset is not None else "")
            or previous.get("dataset", "")
        ),
        "learn": context.learn_spec(),
    }
    stored_names = set()
    for name in context.artifact_names():
        key = artifact_key(ckey, name)
        stored_names.add(name)
        # Rewrite entries whose payload proved corrupt (the manifest may
        # still look healthy, so a plain contains() check would skip the
        # repair forever) and everything in the explicit cache-priming
        # mode; otherwise an existing entry is authoritative.
        refresh = (not consult) or name in events["corrupt"]
        source = sources.get(name)
        if source and not refresh and store.contains(artifact_key(source, name)):
            # The record aliases this artifact to an ancestor bundle and
            # the aliased entry is healthy — writing a copy under our own
            # key would only duplicate bytes.
            continue
        if store.contains(key) and not refresh:
            continue
        value = context.get_artifact(name)
        meta = {**meta_base, "artifact": name}
        describe = getattr(value, "describe", None)
        if callable(describe):
            # Self-describing artifacts (the sketch batch reports its
            # hops / sample count / generation seed) surface their
            # parameters in `repro store ls`.
            meta["flags"] = describe()
        store.put(key, value, meta=meta, refresh=refresh)
        events["saved"].append(name)
    # The graph is written for the serving layer but never *read* by
    # warm runs, so a corrupt payload would go unnoticed by the load
    # phase above; probe the bytes (no decode) and rewrite on any doubt.
    graph_key = artifact_key(
        sources.get(GRAPH_ARTIFACT, ckey), GRAPH_ARTIFACT
    )
    if not consult or not store.verify(graph_key):
        store.put(
            graph_key,
            context.graph,
            meta={**meta_base, "artifact": GRAPH_ARTIFACT},
            refresh=True,
        )
        events["saved"].append(GRAPH_ARTIFACT)
    # The training log and streaming statistics feed `repro ingest`
    # (delta validation, re-learn paths, incremental LT updates).  The
    # statistics are only computed when LT weights were learned in this
    # run — the propagation DAGs are then already memoized, so the tally
    # is nearly free; on a warm hit, recomputing would cost a full DAG
    # sweep for a by-definition-unchanged value.
    if context.train_log is not None:
        log_key = artifact_key(ckey, TRAIN_LOG_ARTIFACT)
        if not consult or not store.verify(log_key):
            store.put(
                log_key,
                context.train_log,
                meta={**meta_base, "artifact": TRAIN_LOG_ARTIFACT},
                refresh=True,
            )
            events["saved"].append(TRAIN_LOG_ARTIFACT)
        stats_key = artifact_key(ckey, STREAM_STATS_ARTIFACT)
        if "lt_weights" in stored_names and (
            "lt_weights" in events["misses"] or not consult
        ):
            if not consult or not store.contains(stats_key):
                from repro.stream.update import compute_stream_stats

                store.put(
                    stats_key,
                    compute_stream_stats(context),
                    meta={**meta_base, "artifact": STREAM_STATS_ARTIFACT},
                    refresh=not consult,
                )
                events["saved"].append(STREAM_STATS_ARTIFACT)

    # Refresh the context record (the serving layer's entry point) with
    # the union of everything now stored for this namespace.  Spreading
    # ``previous`` first preserves streaming fields (``derived_from``,
    # ``artifact_sources``, ``pending``, ...) a derive wrote earlier.
    artifacts = sorted(set(previous.get("artifacts", [])) | stored_names)
    record = {
        **previous,
        "context_key": ckey,
        "dataset": meta_base["dataset"],
        "learn": context.learn_spec(),
        "probability_method": context.probability_method,
        "num_simulations": (
            context.num_simulations
            if num_simulations is None
            else num_simulations
        ),
        "artifacts": artifacts,
    }
    if record != previous:
        store.put(
            record_key,
            record,
            meta={**meta_base, "artifact": CONTEXT_RECORD},
            refresh=True,
        )
    return events


# ----------------------------------------------------------------------
# Serving-side loading
# ----------------------------------------------------------------------
def list_context_records(store: ArtifactStore) -> list[dict[str, Any]]:
    """Every context record in the store (unreadable ones skipped)."""
    records = []
    for entry in store.entries():
        if entry.meta.get("artifact") != CONTEXT_RECORD:
            continue
        try:
            records.append(store.get(entry.key))
        except StoreMiss:
            continue
        except StoreCorruption as error:
            warnings.warn(
                f"skipping corrupt context record: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
    return sorted(records, key=lambda record: record["context_key"])


def load_context_record(
    store: ArtifactStore, context_key_or_prefix: str | None = None
) -> dict[str, Any]:
    """Resolve one context record by full key, unique prefix, or default.

    With ``None``, the store must hold exactly one context — the
    zero-configuration serving case.
    """
    records = list_context_records(store)
    if not records:
        raise StoreMiss("the store holds no context records; run "
                        "`repro learn --store` or a store-backed experiment")
    if context_key_or_prefix is None:
        if len(records) == 1:
            return records[0]
        keys = [record["context_key"] for record in records]
        raise StoreMiss(
            f"the store holds {len(records)} contexts; name one of {keys}"
        )
    matches = [
        record
        for record in records
        if record["context_key"].startswith(context_key_or_prefix)
    ]
    if not matches:
        raise StoreMiss(f"no context matches {context_key_or_prefix!r}")
    if len(matches) > 1:
        raise StoreMiss(
            f"context prefix {context_key_or_prefix!r} is ambiguous: "
            f"{[record['context_key'] for record in matches]}"
        )
    return matches[0]


def load_serving_context(
    store: ArtifactStore, record: Mapping[str, Any]
) -> SelectionContext:
    """Rebuild a query-ready context from stored artifacts alone.

    The returned context has **no training log** — every learned
    artifact named by the record is preloaded into its cache slots, so
    selectors and evaluators run purely from persisted state.  An
    artifact a query would need that is absent raises the context's
    usual "needs a training action log" error, which the service maps
    to a client-visible message.
    """
    ckey = record["context_key"]
    graph = store.get(
        artifact_key(artifact_source_key(record, GRAPH_ARTIFACT), GRAPH_ARTIFACT)
    )
    learn = record["learn"]
    context = SelectionContext(
        graph,
        train_log=None,
        probability_method=record.get("probability_method", "EM"),
        num_simulations=int(record.get("num_simulations", 100)),
        truncation=float(learn["truncation"]),
        seed=int(learn["seed"]),
        credit_scheme=str(learn["credit_scheme"]),
        backend=str(learn["backend"]),
        num_sketches=int(learn.get("num_sketches", 10_000)),
        sketch_hops=(
            None
            if learn.get("sketch_hops") is None
            else int(learn["sketch_hops"])
        ),
    )
    for name in record.get("artifacts", []):
        if name in ARTIFACT_NAMES:
            source = artifact_source_key(record, name)
            context.set_artifact(name, store.get(artifact_key(source, name)))
    return context
