"""Deterministic cache keys for the artifact store.

Every stored artifact is addressed by content-derived identity, never by
file name: a *context key* digests (dataset fingerprint, split spec,
learn spec, store format version), and an *artifact key* appends the
artifact slot name (``credit_index``, ``ic_probabilities/EM``, ...).
Two runs that would learn byte-identical artifacts therefore compute
the same key and share the payload; any change to the data, the split,
a learn parameter, the backend or the on-disk format changes the key
and misses cleanly — there is no invalidation logic to get wrong.

Fingerprints hash the dataset *in iteration order*.  That is stricter
than set equality on purpose: learned artifacts are dicts whose
iteration order descends from graph/log iteration order, and the
warm-start guarantee is byte-for-byte identity, not value equality.
All digests are ``blake2b`` (stable across processes and platforms,
unlike the salted builtin ``hash``).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.data.actionlog import ActionLog
from repro.graphs.digraph import SocialGraph

__all__ = [
    "FORMAT_VERSION",
    "canonical_json",
    "fingerprint_dataset",
    "context_key",
    "artifact_key",
]

# The store's on-disk format version.  Part of every context key and
# recorded in every manifest: bumping it makes every old entry an
# invisible miss (re-learn and re-save) instead of a misread.
FORMAT_VERSION = 1

_DIGEST_SIZE = 16  # 128-bit hex keys: 32 characters


def canonical_json(value: Any) -> str:
    """The canonical JSON text of ``value`` (sorted keys, tight separators)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _hexdigest(hasher: "hashlib.blake2b") -> str:
    return hasher.hexdigest()


def fingerprint_dataset(graph: SocialGraph, log: ActionLog | None) -> str:
    """A streaming digest of one (graph, action log) pair.

    Hashes nodes and edges in graph iteration order, then every trace
    in log iteration order (chronological within a trace, as
    :meth:`~repro.data.actionlog.ActionLog.tuples` yields them).
    Identifiers hash by ``repr`` — exact for the ints/strings the TSV
    formats round-trip — and times by ``repr`` as well, so distinct
    floats never collide.
    """
    hasher = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    update = hasher.update
    for node in graph.nodes():
        update(f"n\t{node!r}\n".encode("utf-8"))
    for source, target in graph.edges():
        update(f"e\t{source!r}\t{target!r}\n".encode("utf-8"))
    if log is not None:
        for user, action, time in log.tuples():
            update(f"t\t{user!r}\t{action!r}\t{time!r}\n".encode("utf-8"))
    return _hexdigest(hasher)


def context_key(
    fingerprint: str,
    split: Mapping[str, Any],
    learn: Mapping[str, Any],
) -> str:
    """The digest addressing one learned-artifact namespace.

    ``fingerprint`` is :func:`fingerprint_dataset` of the *raw* dataset,
    ``split`` describes how the training fold was carved out of it
    (e.g. ``{"split": True, "every": 5}``, or ``{"split": "external"}``
    for a pre-built context), and ``learn`` is
    :meth:`~repro.api.context.SelectionContext.learn_spec`.
    """
    parts = {
        "format": FORMAT_VERSION,
        "dataset": fingerprint,
        "split": dict(split),
        "learn": dict(learn),
    }
    hasher = hashlib.blake2b(
        canonical_json(parts).encode("utf-8"), digest_size=_DIGEST_SIZE
    )
    return _hexdigest(hasher)


def artifact_key(context: str, artifact: str) -> str:
    """The storage key of one artifact slot within a context namespace."""
    hasher = hashlib.blake2b(
        f"{context}\t{artifact}".encode("utf-8"), digest_size=_DIGEST_SIZE
    )
    return _hexdigest(hasher)
