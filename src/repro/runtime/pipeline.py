"""The stage-graph experiment runtime both protocols compile into.

The paper's evaluation is two protocols over one pipeline shape:

* **selection** (Figures 6-9): ``dataset → split → learn → select →
  evaluate`` — pick seeds with every configured selector, score the
  k-grid prefixes under the CD proxy (an ``ingest`` stage slots in
  after ``learn`` when ``config.delta`` names an action-log delta —
  see :mod:`repro.stream`);
* **prediction** (Figures 2-4): ``dataset → split → learn → predict →
  evaluate`` — fit every model on the training traces, predict each
  held-out trace's spread from its initiators, score the predictions.

:func:`compile_pipeline` turns an
:class:`~repro.api.experiment.ExperimentConfig` into the stage list for
its ``task``; :func:`execute_pipeline` runs the stages, timing each one
into ``ExperimentResult.timings`` (``<stage>_s`` keys).

Parallelism.  Each stage dispatches its independent units through the
experiment's :class:`~repro.runtime.executor.Executor` — (selector,
trial) cells in ``select``, per-run k-grid scoring in ``evaluate``,
(method, trace-chunk) tasks in ``predict`` — and the selectors
themselves thread the executor into the greedy/CELF candidate sweeps
and :class:`~repro.runtime.estimator.SpreadEstimator` batches.  Every
unit draws its randomness from label-derived seeds and every reduction
happens in submission order, so ``serial``/``thread``/``process`` runs
are bit-identical (``tests/test_runtime_parallel.py``).

The ``learn`` stage is where the registry's capability flags become
load-bearing: before anything runs, every selector entry is validated
against the workload (budget vs ``supports_budget``) and the context
(``needs_index``/``needs_oracle``/``needs_probabilities``/
``needs_weights``/``needs_sketches`` vs the availability of a training
log), raising
:class:`~repro.utils.validation.ConfigError` up front; under a parallel
executor the same flags drive artifact *prefetching*, so worker tasks
only ever read the shared context instead of racing to build it (or,
under the process executor, rebuilding it per task and throwing the
result away).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.api.context import SelectionContext
from repro.api.experiment import (
    ExperimentConfig,
    ExperimentResult,
    SelectorRun,
    _bind,
    _make_dataset,
    _missing_artifacts,
)
from repro.api.registry import get_selector
from repro.data.split import train_test_split
from repro.evaluation.prediction import PredictionExperiment, select_test_traces
from repro.obs import trace as obs_trace
from repro.obs.metrics import default_registry
from repro.runtime.estimator import SpreadEstimator
from repro.runtime.executor import Executor, as_executor, split_chunks
from repro.utils.rng import derive_seed
from repro.utils.timing import Timer
from repro.utils.validation import ConfigError, require_config

__all__ = [
    "Stage",
    "PipelineState",
    "PredictorSpec",
    "compile_pipeline",
    "execute_pipeline",
]

User = Hashable


# ----------------------------------------------------------------------
# Worker task functions (module-level: picklable for the process executor)
# ----------------------------------------------------------------------
def _select_chunk(payload: tuple) -> list:
    """Run a chunk of (selector, trial) cells against the shared context.

    Cells are chunked so the (large, prefetched) context is pickled
    once per worker task rather than once per cell; each cell's result
    is a pure function of the cell, so chunking never changes it.
    """
    import repro.api.adapters  # noqa: F401  (populate the registry in workers)

    context, k, cells = payload
    return [
        get_selector(name, **params).select(context, k)
        for name, params in cells
    ]


def _evaluate_chunk(payload: tuple) -> list[list[float]]:
    """CD-proxy spreads of a chunk of runs' k-grid seed prefixes."""
    evaluator, runs_seed_sets = payload
    return [
        [evaluator.spread(seeds) for seeds in seed_sets]
        for seed_sets in runs_seed_sets
    ]


def _predict_chunk(payload: tuple) -> list[float]:
    """One predictor over a chunk of test-trace seed sets."""
    spec, seed_sets = payload
    return [spec.predict(list(seeds)) for seeds in seed_sets]


# ----------------------------------------------------------------------
# Predictors (the prediction protocol's per-method engines)
# ----------------------------------------------------------------------
@dataclass
class PredictorSpec:
    """One spread predictor of the prediction protocol, picklable.

    ``estimator`` is set for the Monte-Carlo models (the five IC
    probability assignments, the EM-learned ``IC`` entry, ``LT``);
    ``evaluator`` for the closed-form ``CD`` model.
    """

    method: str
    estimator: SpreadEstimator | None = None
    evaluator: Any | None = None

    def predict(self, seeds: list[User]) -> float:
        """The predicted spread of ``seeds`` under this model."""
        if self.evaluator is not None:
            return float(self.evaluator.spread(seeds))
        assert self.estimator is not None
        return self.estimator.spread(seeds)


def _build_predictor(
    method: str, context: SelectionContext, config: ExperimentConfig,
    executor: Executor,
) -> PredictorSpec:
    """Build (and thereby prefetch the artifacts of) one predictor.

    ``IC`` is the paper's Figure-3 entry — the IC model with EM-learned
    probabilities; the five assignment names (``UN``/``TV``/``WC``/
    ``EM``/``PT``) are the Figure-2 line-up; ``LT`` and ``CD`` learn
    their weights/credits from the training fold.
    """
    if method == "CD":
        return PredictorSpec(method=method, evaluator=context.cd_evaluator())
    if method == "LT":
        edge_values, model = context.lt_weights(), "lt"
    else:
        assignment = "EM" if method == "IC" else method
        edge_values, model = context.ic_probabilities(assignment), "ic"
    return PredictorSpec(
        method=method,
        estimator=SpreadEstimator(
            context.graph,
            edge_values,
            model=model,
            num_simulations=config.num_simulations,
            seed=derive_seed(config.seed, "predict", method),
            backend=context.backend,
            executor=executor,
        ),
    )


# ----------------------------------------------------------------------
# Pipeline state and stages
# ----------------------------------------------------------------------
@dataclass
class PipelineState:
    """Everything the stages read and write."""

    config: ExperimentConfig
    executor: Executor
    result: ExperimentResult
    dataset: Any | None = None
    context: SelectionContext | None = None
    train_log: Any | None = None
    test_log: Any | None = None
    predictors: list[PredictorSpec] = field(default_factory=list)
    # Held-out traces as (initiator seed set, actual spread) pairs, and
    # per-method raw predictions aligned with them.
    traces: list[tuple[tuple, float]] = field(default_factory=list)
    predictions: dict[str, list[float]] = field(default_factory=dict)


@dataclass(frozen=True)
class Stage:
    """One named step of the compiled pipeline."""

    name: str
    run: Callable[[PipelineState], None]


def _stage_dataset(state: PipelineState) -> None:
    if state.dataset is None:
        state.dataset = _make_dataset(state.config)
    state.result.dataset_name = state.dataset.name


def _stage_split(state: PipelineState) -> None:
    config = state.config
    log = state.dataset.log
    if config.split:
        state.train_log, state.test_log = train_test_split(
            log, every=config.split_every
        )
    else:
        state.train_log = log


def _make_context(state: PipelineState) -> SelectionContext:
    config = state.config
    return SelectionContext(
        state.dataset.graph,
        state.train_log,
        probability_method=config.probability_method,
        num_simulations=config.num_simulations,
        truncation=config.truncation,
        seed=config.seed,
        backend=config.backend,
        executor=state.executor,
    )


def _validate_entries(config: ExperimentConfig,
                      context: SelectionContext) -> None:
    """Reject selector/context combinations up front (capability flags)."""
    if context.train_log is not None:
        return
    for entry in config.selectors:
        spec = get_selector(entry.name).spec
        missing = _missing_artifacts(spec, entry.params, config)
        require_config(
            not missing,
            f"selector {entry.display()!r} needs {', '.join(missing)}, "
            "which require a training action log, but the context was "
            "built without one",
        )


def _prefetch_artifacts(config: ExperimentConfig,
                        context: SelectionContext) -> None:
    """Build the flagged artifacts once, in the parent, before fan-out.

    Under the thread executor this keeps worker cells read-only over
    the shared context; under the process executor it is what makes the
    fan-out profitable at all — a worker's lazily built artifact dies
    with the worker.  For oracle-backed selectors the per-trial oracles
    themselves are prepared (simulation engines compiled), so workers
    receive ready-to-run engines in the pickled context instead of each
    recompiling them.
    """
    if context.train_log is None:
        return
    for entry in config.selectors:
        spec = get_selector(entry.name).spec
        method = entry.params.get("method") or config.probability_method
        model = entry.params.get("model", "cd")
        if spec.needs_index:
            context.credit_index()
        if spec.needs_probabilities:
            context.ic_probabilities(method)
        if spec.needs_weights:
            context.lt_weights()
        if spec.needs_sketches:
            for trial in range(config.trials):
                bound = _bind(config, entry, context, trial)
                params = bound.params
                # Mirror the ris/hop adapter defaults exactly so the
                # prefetched sketch-cache key matches the worker's
                # lookup (including the injected per-trial seed).
                context.sketches(
                    method=params.get("method"),
                    num_sketches=params.get(
                        "num_rr_sets", params.get("num_sketches", 10_000)
                    ),
                    hops=params.get(
                        "hops", 2 if entry.name == "hop" else None
                    ),
                    seed=params.get("seed"),
                )
        if spec.needs_oracle:
            if model == "cd":
                context.cd_evaluator()
            else:
                for trial in range(config.trials):
                    bound = _bind(config, entry, context, trial)
                    # Mirror the adapter's oracle() call exactly so the
                    # prefetched cache key matches the worker's lookup.
                    context.oracle(
                        model,
                        method=bound.params.get("method"),
                        seed=bound.params.get("seed"),
                    ).prepare()
    if config.evaluate_spread:
        context.cd_evaluator()


def _consult_store(state: PipelineState) -> None:
    """Warm-start the context from the configured artifact store.

    Runs before any fan-out: stored artifacts for this (dataset
    fingerprint, split spec, learn spec) are injected into the shared
    context (hit), everything else the config's selectors/methods need
    is built through the context's own lazy accessors (miss → learn)
    and saved back.  On a full hit the learn functions never run — the
    warm run's artifacts are the *same bytes* the cold run produced, so
    results are identical on every executor.  Corrupt store entries
    warn and fall back to re-learning.
    """
    from repro.store.store import ArtifactStore
    from repro.store.warm import required_artifacts, warm_start

    config = state.config
    context = state.context
    split = None
    dataset = state.dataset if state.train_log is not None else None
    if dataset is not None:
        split = (
            {"split": True, "every": config.split_every}
            if config.split
            else {"split": False}
        )
    state.result.store_events = warm_start(
        ArtifactStore(config.store),
        context,
        required_artifacts(config),
        consult=config.warm_start,
        dataset=dataset,
        split=split,
        dataset_name=state.result.dataset_name,
    )


def _stage_learn_selection(state: PipelineState) -> None:
    if state.context is None:
        state.context = _make_context(state)
    _validate_entries(state.config, state.context)
    if state.config.store is not None:
        _consult_store(state)
    if state.executor.is_parallel:
        _prefetch_artifacts(state.config, state.context)


def _stage_ingest(state: PipelineState) -> None:
    """Fold the config's action-log delta into the learned context.

    Runs between ``learn`` and ``select`` when ``config.delta`` names a
    delta file: selection then operates over the *union* log with
    incrementally maintained artifacts (see :mod:`repro.stream`).  With
    a store configured the fold goes through the store's derive path,
    so the derived bundle — lineage link and all — is committed as a
    side effect and later warm runs over the union hit it.
    """
    from repro.stream.delta import load_action_log_delta

    config = state.config
    delta = load_action_log_delta(config.delta)
    if config.store is not None:
        from repro.store.store import ArtifactStore
        from repro.stream.derive import derive_bundle

        result = derive_bundle(
            ArtifactStore(config.store),
            delta,
            context=state.result.store_events["context_key"],
            dataset_name=state.result.dataset_name,
        )
        context = result.context
        state.result.ingest = result.to_dict()
    else:
        from repro.stream.update import fold_delta

        fold = fold_delta(state.context, delta)
        context = fold.context
        state.result.ingest = fold.report.to_dict()
    context.executor = state.executor
    state.context = context
    state.train_log = context.train_log
    if state.executor.is_parallel:
        _prefetch_artifacts(config, context)


def _stage_select(state: PipelineState) -> None:
    config = state.config
    context = state.context
    k_max = config.ks[-1]
    bound = [
        (entry.display(), trial, _bind(config, entry, context, trial))
        for entry in config.selectors
        for trial in range(config.trials)
    ]
    executor = state.executor
    if executor.is_parallel and len(bound) > 1:
        chunks = split_chunks(bound, executor.workers())
        payloads = [
            (
                context,
                k_max,
                [(selector.spec.name, selector.params)
                 for _, _, selector in chunk],
            )
            for chunk in chunks
        ]
        selections = [
            selection
            for chunk_result in executor.map(_select_chunk, payloads)
            for selection in chunk_result
        ]
    else:
        selections = [
            selector.select(context, k_max) for _, _, selector in bound
        ]
    for (label, trial, _), selection in zip(bound, selections):
        state.result.runs.append(
            SelectorRun(label=label, trial=trial, selection=selection)
        )


def _stage_evaluate_selection(state: PipelineState) -> None:
    config = state.config
    evaluator = state.context.cd_evaluator()
    runs = state.result.runs
    per_run_seed_sets = [
        [run.selection.seeds_at(k) for k in config.ks] for run in runs
    ]
    executor = state.executor
    if executor.is_parallel and len(runs) > 1:
        chunks = split_chunks(per_run_seed_sets, executor.workers())
        spreads_per_run = [
            spreads
            for chunk_result in executor.map(
                _evaluate_chunk, [(evaluator, chunk) for chunk in chunks]
            )
            for spreads in chunk_result
        ]
    else:
        spreads_per_run = _evaluate_chunk((evaluator, per_run_seed_sets))
    for run, spreads in zip(runs, spreads_per_run):
        run.curve = list(zip(config.ks, spreads))


def _stage_learn_prediction(state: PipelineState) -> None:
    state.context = _make_context(state)
    if state.config.store is not None:
        _consult_store(state)
    state.predictors = [
        _build_predictor(method, state.context, state.config, state.executor)
        for method in state.config.methods
    ]


def _stage_predict(state: PipelineState) -> None:
    from repro.data.propagation import PropagationGraph

    config = state.config
    graph = state.dataset.graph
    test_log = state.test_log
    actions = select_test_traces(test_log, config.max_test_traces)
    traces: list[tuple[tuple, float]] = []
    for action in actions:
        propagation = PropagationGraph.build(graph, test_log, action)
        traces.append(
            (tuple(propagation.initiators()), float(propagation.num_nodes))
        )
    state.traces = traces
    seed_sets = [seeds for seeds, _ in traces]
    executor = state.executor
    tasks: list[tuple[str, list]] = []
    for spec in state.predictors:
        chunks = (
            split_chunks(seed_sets, executor.workers())
            if executor.is_parallel and len(seed_sets) > 1
            else [seed_sets]
        )
        tasks.extend((spec.method, (spec, chunk)) for chunk in chunks)
    if executor.is_parallel and len(tasks) > 1:
        outputs = executor.map(_predict_chunk, [p for _, p in tasks])
    else:
        outputs = [_predict_chunk(payload) for _, payload in tasks]
    predictions: dict[str, list[float]] = {
        spec.method: [] for spec in state.predictors
    }
    for (method, _), chunk_output in zip(tasks, outputs):
        predictions[method].extend(chunk_output)
    state.predictions = predictions


def _stage_evaluate_prediction(state: PipelineState) -> None:
    actuals = [actual for _, actual in state.traces]
    experiment = PredictionExperiment(
        methods=[spec.method for spec in state.predictors],
        num_test_traces=len(state.traces),
    )
    for spec in state.predictors:
        predicted = state.predictions[spec.method]
        experiment.records[spec.method] = list(zip(actuals, predicted))
    state.result.prediction = experiment


# ----------------------------------------------------------------------
# Compilation and execution
# ----------------------------------------------------------------------
def compile_pipeline(
    config: ExperimentConfig,
    have_dataset: bool = False,
    have_context: bool = False,
) -> list[Stage]:
    """The stage list ``config.task`` compiles into.

    ``have_dataset``/``have_context`` mirror the ``run_experiment``
    arguments: a pre-built context makes the dataset/split stages
    unnecessary for the selection task (its graph/log are
    authoritative), and is rejected for the prediction task, which
    needs the raw dataset to hold out test traces.
    """
    if config.task == "prediction":
        require_config(
            not have_context,
            "the prediction task re-splits the raw dataset into "
            "train/test traces; pass dataset=, not context=",
        )
        return [
            Stage("dataset", _stage_dataset),
            Stage("split", _stage_split),
            Stage("learn", _stage_learn_prediction),
            Stage("predict", _stage_predict),
            Stage("evaluate", _stage_evaluate_prediction),
        ]
    stages: list[Stage] = []
    if not have_context:
        stages.append(Stage("dataset", _stage_dataset))
        stages.append(Stage("split", _stage_split))
    stages.append(Stage("learn", _stage_learn_selection))
    if config.delta is not None:
        stages.append(Stage("ingest", _stage_ingest))
    stages.append(Stage("select", _stage_select))
    if config.evaluate_spread:
        stages.append(Stage("evaluate", _stage_evaluate_selection))
    return stages


def execute_pipeline(
    config: ExperimentConfig,
    dataset=None,
    context: SelectionContext | None = None,
) -> ExperimentResult:
    """Compile ``config`` into stages and run them, timing each.

    This is the engine behind :func:`repro.api.run_experiment`; see
    there for the argument contract.
    """
    executor = as_executor(config.executor, config.max_workers)
    result = ExperimentResult(config=config, dataset_name="")
    state = PipelineState(
        config=config, executor=executor, result=result, dataset=dataset,
    )
    if context is not None:
        if config.task == "prediction":
            raise ConfigError(
                "the prediction task re-splits the raw dataset into "
                "train/test traces; pass dataset=, not context="
            )
        state.context = context
        result.dataset_name = dataset.name if dataset is not None else "context"
    # Tracing: honor an already-active trace (e.g. `repro trace`), else
    # let REPRO_TRACE opt a run in.  Spans are out-of-band — they never
    # touch RNG state or results — so traced and untraced runs stay
    # bit-identical (the obs parity tests pin this).
    own_trace = None
    if obs_trace.current_trace() is None:
        own_trace = obs_trace.trace_from_env()
    activation = own_trace.activate() if own_trace is not None else None
    stage_gauge = default_registry().gauge(
        "repro_stage_seconds",
        "Duration of the last run of each pipeline stage",
        ("stage",),
    )
    try:
        if activation is not None:
            activation.__enter__()
        with obs_trace.span(
            "pipeline.run",
            task=config.task,
            dataset=config.dataset,
            backend=config.backend or "auto",
            executor=executor.kind,
        ):
            for stage in compile_pipeline(config, dataset is not None,
                                          context is not None):
                with obs_trace.span(f"pipeline.{stage.name}"):
                    with Timer() as timer:
                        stage.run(state)
                result.timings[f"{stage.name}_s"] = timer.elapsed
                stage_gauge.set(timer.elapsed, stage=stage.name)
        active = obs_trace.current_trace()
        if active is not None:
            result.trace = active.to_dict()
    finally:
        if activation is not None:
            activation.__exit__(None, None, None)
        # The pipeline owns this executor (built from the config above);
        # release its worker pool.  A retained reference transparently
        # respawns the pool on the next parallel map.
        executor.close()
    return result
