"""``repro.runtime`` — the unified stage pipeline and its executor seam.

Three pieces:

* :mod:`repro.runtime.executor` — the pluggable parallel executor
  (``serial``/``thread``/``process``, ``max_workers``, env
  ``REPRO_EXECUTOR``) every embarrassingly parallel unit of the
  pipeline dispatches through;
* :mod:`repro.runtime.estimator` — :class:`SpreadEstimator`, batched
  Monte-Carlo IC/LT spread estimation with deterministic per-batch
  seed fan-out (bit-identical on every executor);
* :mod:`repro.runtime.pipeline` — the stage graph
  (``dataset → split → learn → select|predict → evaluate``) both of
  the paper's protocols compile into, plus the capability-flag
  validation/prefetch that makes the selector registry's flags
  load-bearing.

:func:`repro.api.run_experiment` is the public entry point; it
delegates here.  The pipeline module is imported lazily (via module
``__getattr__``) because it sits *above* :mod:`repro.api` in the layer
stack, while the executor/estimator seams sit below it.
"""

from repro.runtime.estimator import SIMULATION_BATCH, SpreadEstimator
from repro.runtime.executor import (
    EXECUTOR_ENV_VAR,
    EXECUTORS,
    Executor,
    as_executor,
    resolve_executor,
    split_chunks,
)

__all__ = [
    "EXECUTOR_ENV_VAR",
    "EXECUTORS",
    "Executor",
    "as_executor",
    "resolve_executor",
    "split_chunks",
    "SIMULATION_BATCH",
    "SpreadEstimator",
    "Stage",
    "PipelineState",
    "PredictorSpec",
    "compile_pipeline",
    "execute_pipeline",
]

_PIPELINE_EXPORTS = (
    "Stage",
    "PipelineState",
    "PredictorSpec",
    "compile_pipeline",
    "execute_pipeline",
)


def __getattr__(name: str):
    if name in _PIPELINE_EXPORTS:
        from repro.runtime import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
