"""The pluggable parallel-executor seam of the experiment runtime.

Every embarrassingly parallel unit in the pipeline — (selector, trial)
cells of the selection stage, Monte-Carlo simulation batches inside a
:class:`~repro.runtime.estimator.SpreadEstimator`, per-method predictor
evaluation, the greedy/CELF candidate sweeps — is dispatched through one
:class:`Executor` object instead of a bare ``for`` loop.  Swapping the
executor changes *where* tasks run, never *what* they compute:

* every task's randomness comes from a seed derived up front with the
  :func:`repro.utils.rng.derive_seed` fan-out (labels, not execution
  order), and
* every reduction consumes results in submission order (``map`` is
  order-preserving),

so the serial, thread and process executors are bit-identical — the
property ``tests/test_runtime_parallel.py`` enforces.

Executor selection mirrors the compute-backend policy of
:func:`repro.kernels.resolve_backend`:

* an explicit ``"serial"`` / ``"thread"`` / ``"process"`` request wins;
* ``None`` / ``"auto"`` defer to the ``REPRO_EXECUTOR`` environment
  variable, falling back to ``"serial"`` when it is unset.

Two safety rules keep nested parallelism sane:

* an :class:`Executor` that crosses a process boundary (pickled into a
  worker) degrades to serial — workers never spawn grandchildren;
* a ``map`` issued from inside one of this executor's own tasks (e.g.
  a CELF sweep inside a selector cell running on the thread pool) runs
  serially in place — tasks never deadlock waiting on their own pool.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

from repro.obs import trace as obs_trace
from repro.utils.validation import require

__all__ = [
    "EXECUTORS",
    "EXECUTOR_ENV_VAR",
    "Executor",
    "as_executor",
    "resolve_executor",
    "split_chunks",
]

T = TypeVar("T")

EXECUTORS = ("serial", "thread", "process")
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"


def resolve_executor(requested: str | None = None) -> str:
    """Resolve an executor request to one of :data:`EXECUTORS`.

    ``None`` / ``"auto"`` defer to the ``REPRO_EXECUTOR`` environment
    variable (default ``"serial"``; an explicit ``auto`` in the
    environment also means the default); anything else must name an
    executor kind explicitly.
    """
    if requested is None or requested == "auto":
        requested = os.environ.get(EXECUTOR_ENV_VAR, "") or "serial"
        if requested == "auto":
            requested = "serial"
    if requested not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {EXECUTORS + ('auto',)}, "
            f"got {requested!r}"
        )
    return requested


def split_chunks(items: Sequence[T], parts: int) -> list[list[T]]:
    """Split ``items`` into at most ``parts`` contiguous, balanced chunks.

    Deterministic and order-preserving; used to group independent tasks
    for transport so a process worker amortises its per-task pickling
    over several units.  Results never depend on the chunking — every
    unit's output is a pure function of the unit itself.
    """
    require(parts >= 1, f"parts must be >= 1, got {parts}")
    items = list(items)
    parts = min(parts, len(items)) or 1
    base, extra = divmod(len(items), parts)
    chunks: list[list[T]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        if size == 0:
            break
        chunks.append(items[start:start + size])
        start += size
    return chunks


def _traced_call(payload):
    """Module-level (hence picklable) task wrapper for traced maps."""
    token, fn, item = payload
    return obs_trace.run_task(token, fn, item)


class Executor:
    """Ordered ``map`` over independent tasks: serial, thread or process.

    Parameters
    ----------
    kind:
        ``"serial"``, ``"thread"`` or ``"process"`` (or ``"auto"`` /
        ``None`` to defer to ``REPRO_EXECUTOR``).
    max_workers:
        Worker count for the parallel kinds; defaults to the CPU count.

    Notes
    -----
    * ``map`` preserves input order, so reductions over its results are
      executor-independent.
    * For the process kind, the callable and every item must be
      picklable (module-level functions with plain-data payloads).
    * The worker pool is created lazily on the first parallel ``map``
      and reused across calls — ``spread()``-shaped hot paths issue
      hundreds of small maps, and paying a pool spawn per call would
      swamp the fan-out.  :meth:`close` tears the pool down (a later
      ``map`` transparently recreates it), and the pool is also
      released when the executor is garbage-collected.
    """

    def __init__(self, kind: str | None = "serial",
                 max_workers: int | None = None) -> None:
        self.kind = resolve_executor(kind)
        require(
            max_workers is None or max_workers >= 1,
            f"max_workers must be >= 1, got {max_workers}",
        )
        self.max_workers = max_workers
        self._local = threading.local()
        self._pool = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def is_parallel(self) -> bool:
        """True iff this executor may run tasks concurrently."""
        return self.kind != "serial"

    def workers(self) -> int:
        """The effective worker count of the parallel kinds."""
        return self.max_workers or os.cpu_count() or 1

    def _get_pool(self):
        with self._pool_lock:
            if self._pool is None:
                if self.kind == "thread":
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.workers()
                    )
                else:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.workers()
                    )
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (a later ``map`` recreates it)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __del__(self):  # pragma: no cover - gc timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def map(self, fn: Callable[[Any], T], items: Sequence[Any]) -> list[T]:
        """Apply ``fn`` to every item, returning results in input order."""
        items = list(items)
        if not items:
            return []
        if obs_trace.trace_enabled():
            return self._map_traced(fn, items)
        if (
            self.kind == "serial"
            or len(items) == 1
            or getattr(self._local, "active", False)
        ):
            return [fn(item) for item in items]
        pool = self._get_pool()
        if self.kind == "thread":
            return list(pool.map(self._reentrancy_guard(fn), items))
        chunksize = max(1, len(items) // (self.workers() * 2))
        return list(pool.map(fn, items, chunksize=chunksize))

    def _map_traced(self, fn: Callable[[Any], T], items: list) -> list[T]:
        """``map`` with span propagation across the executor boundary.

        Worker threads and processes do not inherit the submitting
        context, so every task ships an explicit trace token; tokens
        pin each task's child index, making span ids independent of
        scheduling, and the three kinds wrap tasks identically so
        serial, thread and process runs yield the same span tree.
        Task results are untouched — tracing stays out-of-band.
        """
        inline = (
            self.kind == "serial"
            or len(items) == 1
            or getattr(self._local, "active", False)
        )
        with obs_trace.span("executor.map", kind=self.kind, tasks=len(items)):
            payloads = [
                (obs_trace.export_task(index), fn, item)
                for index, item in enumerate(items)
            ]
            if inline:
                outs = [_traced_call(payload) for payload in payloads]
            elif self.kind == "thread":
                pool = self._get_pool()
                outs = list(
                    pool.map(self._reentrancy_guard(_traced_call), payloads)
                )
            else:
                pool = self._get_pool()
                chunksize = max(1, len(items) // (self.workers() * 2))
                outs = list(pool.map(_traced_call, payloads, chunksize=chunksize))
            results: list[T] = []
            for result, spans in outs:
                obs_trace.absorb_task(spans)
                results.append(result)
            return results

    def _reentrancy_guard(self, fn: Callable[[Any], T]) -> Callable[[Any], T]:
        local = self._local

        def guarded(item: Any) -> T:
            local.active = True
            try:
                return fn(item)
            finally:
                local.active = False

        return guarded

    # ------------------------------------------------------------------
    # Pickling: an executor shipped into a worker degrades to serial so
    # workers never spawn pools of their own.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        return {"kind": "serial", "max_workers": self.max_workers}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.kind = state.get("kind", "serial")
        self.max_workers = state.get("max_workers")
        self._local = threading.local()
        self._pool = None
        self._pool_lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Executor(kind={self.kind!r}, max_workers={self.max_workers})"


def as_executor(value: "Executor | str | None",
                max_workers: int | None = None) -> Executor:
    """Coerce a kind name (or ``None``/``"auto"``) to an :class:`Executor`.

    A ready-made :class:`Executor` passes through unchanged (its own
    ``max_workers`` wins).
    """
    if isinstance(value, Executor):
        return value
    return Executor(value, max_workers=max_workers)
