"""Executor-parallel Monte-Carlo spread estimation.

:class:`SpreadEstimator` is the runtime's spread engine for the IC and
LT models: one object per ``(graph, edge values, model)`` triple that
answers ``spread(seeds)`` by Monte-Carlo simulation, decomposed into
fixed-size *batches* that can be dispatched to any
:class:`~repro.runtime.executor.Executor`.

The decomposition is part of the estimate's definition, not an executor
detail: ``num_simulations`` is always split into the same batch sizes,
every batch ``i`` draws from its own child generator seeded with
``derive_seed(derive_seed(seed, "spread", canonical_seeds), i)``, and
the batch means are reduced in batch order.  Serial, thread and process
executors therefore return bit-identical floats — the parallelism only
moves where the batches run.  (This is a different — chunked — stream
from the single sequential stream of the legacy
``estimate_spread_ic``/``estimate_spread_lt`` protocol, which the
Monte-Carlo *oracles* keep for backward compatibility; statistically the
two are equivalent.)

Cross-process determinism requires more than derived seeds: the python
reference cascades consume their RNG stream in *neighbor-set iteration
order*, and a pickled ``set`` may iterate differently after being
rebuilt in a worker.  The estimator therefore compiles the graph once,
in the parent, into an order-pinned adjacency snapshot
(:class:`_PinnedCascades` — plain lists, which pickle order-identically)
under the ``python`` backend, and into the CSR arrays of
:class:`~repro.kernels.mc_numpy.CompiledDiffusion` under ``numpy``.
Workers only ever replay the snapshot.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Hashable, Iterable, Mapping, Sequence

from repro.graphs.digraph import SocialGraph
from repro.kernels import resolve_backend
from repro.obs import trace as obs_trace
from repro.runtime.executor import Executor, split_chunks
from repro.utils.ordering import node_sort_key
from repro.utils.rng import derive_seed
from repro.utils.validation import require

__all__ = ["SpreadEstimator", "SIMULATION_BATCH"]

User = Hashable
Edge = tuple[User, User]

# Simulations per batch.  A constant (never derived from the worker
# count) so the decomposition — and therefore the estimate — is
# identical on every executor.
SIMULATION_BATCH = 25

MODELS = ("ic", "lt")


class _PinnedCascades:
    """Python-backend IC/LT cascades over an order-pinned snapshot.

    Semantics mirror :func:`repro.diffusion.ic.simulate_ic` and
    :func:`repro.diffusion.lt.simulate_lt` (one Bernoulli trial per
    positive-probability edge when its source activates; lazy LT
    thresholds), but every iteration order — adjacency rows, the
    initial frontier — is fixed by plain lists snapshotted at
    construction, so the RNG stream is consumed identically in the
    parent and in any worker the object is pickled into.
    """

    def __init__(
        self, graph: SocialGraph, edge_values: Mapping[Edge, float]
    ) -> None:
        self.members = list(graph.nodes())
        member_set = set(self.members)
        self.adjacency: dict[User, list[tuple[User, float]]] = {}
        for node in self.members:
            row = [
                (target, edge_values.get((node, target), 0.0))
                for target in graph.out_neighbors(node)
            ]
            row = [(target, value) for target, value in row if value > 0.0]
            if row:
                self.adjacency[node] = row
        self._member_set = member_set

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_member_set")  # rebuilt from the pinned list
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._member_set = set(self.members)

    def _initial(self, seeds: Iterable[User]) -> list[User]:
        """The canonical initial frontier: in-graph seeds, deduplicated
        and ordered by the library-wide :func:`node_sort_key` — so a
        seed *set* maps to exactly one simulation stream regardless of
        the order the caller listed it in (matching the canonical
        per-set seed derivation)."""
        unique = {seed for seed in seeds if seed in self._member_set}
        return sorted(unique, key=node_sort_key)

    def spread_ic(self, seeds, num_simulations: int, seed: int) -> float:
        rng = random.Random(seed)
        initial = self._initial(seeds)
        total = 0
        for _ in range(num_simulations):
            active = set(initial)
            frontier = deque(initial)
            while frontier:
                node = frontier.popleft()
                for target, probability in self.adjacency.get(node, ()):
                    if target in active:
                        continue
                    if rng.random() < probability:
                        active.add(target)
                        frontier.append(target)
            total += len(active)
        return total / num_simulations

    def spread_lt(self, seeds, num_simulations: int, seed: int) -> float:
        rng = random.Random(seed)
        initial = self._initial(seeds)
        total = 0
        for _ in range(num_simulations):
            active = set(initial)
            thresholds: dict[User, float] = {}
            pressure: dict[User, float] = {}
            frontier = deque(initial)
            while frontier:
                node = frontier.popleft()
                for target, weight in self.adjacency.get(node, ()):
                    if target in active:
                        continue
                    if target not in thresholds:
                        thresholds[target] = rng.random()
                    new_pressure = pressure.get(target, 0.0) + weight
                    pressure[target] = new_pressure
                    if new_pressure >= thresholds[target]:
                        active.add(target)
                        frontier.append(target)
            total += len(active)
        return total / num_simulations


def _run_batch_chunk(payload: tuple) -> list[float]:
    """Worker task: run a chunk of simulation batches, one mean each.

    ``payload`` is ``(engine, model, seeds, [(num_simulations, seed),
    ...])`` where ``engine`` is a :class:`_PinnedCascades` or a
    :class:`~repro.kernels.mc_numpy.CompiledDiffusion` — both picklable
    and order-pinned, so the same function serves the serial, thread
    and process executors.
    """
    engine, model, seeds, batches = payload
    run = engine.spread_ic if model == "ic" else engine.spread_lt
    return [run(seeds, num_simulations, seed) for num_simulations, seed in batches]


class SpreadEstimator:
    """Batched Monte-Carlo ``sigma_IC``/``sigma_LT`` with an executor seam.

    Parameters
    ----------
    graph, edge_values:
        The diffusion network: IC probabilities or LT weights.
    model:
        ``"ic"`` or ``"lt"``.
    num_simulations:
        Total simulations per estimate (split into
        :data:`SIMULATION_BATCH`-sized batches).
    seed:
        Base RNG seed; fans out per (seed set, batch) as described in
        the module docstring.
    backend:
        Compute backend per :func:`repro.kernels.resolve_backend`.
    executor:
        Where batches run; ``None`` means serial.
    """

    def __init__(
        self,
        graph: SocialGraph,
        edge_values: Mapping[Edge, float],
        model: str = "ic",
        num_simulations: int = 100,
        seed: int = 0,
        backend: str | None = None,
        executor: Executor | None = None,
        batch_size: int = SIMULATION_BATCH,
    ) -> None:
        require(model in MODELS, f"model must be one of {MODELS}, got {model!r}")
        require(
            num_simulations >= 1,
            f"num_simulations must be >= 1, got {num_simulations}",
        )
        require(batch_size >= 1, f"batch_size must be >= 1, got {batch_size}")
        self.graph = graph
        self.edge_values = dict(edge_values)
        self.model = model
        self.num_simulations = num_simulations
        self.seed = seed
        self.backend = resolve_backend(backend)
        self.executor = executor
        self.batch_size = batch_size
        # Built eagerly, in the constructing (parent) process: the
        # engine pins every iteration order, so workers that receive a
        # pickled estimator replay exactly the parent's snapshot.
        self._engine = None
        self.engine()

    # ------------------------------------------------------------------
    def batch_sizes(self) -> list[int]:
        """The fixed simulation-count decomposition of one estimate."""
        full, rest = divmod(self.num_simulations, self.batch_size)
        sizes = [self.batch_size] * full
        if rest:
            sizes.append(rest)
        return sizes

    def engine(self):
        """The order-pinned cascade engine (compiled once, in the parent)."""
        if self._engine is None:
            if self.backend == "numpy":
                from repro.kernels.mc_numpy import CompiledDiffusion

                self._engine = CompiledDiffusion(self.graph, self.edge_values)
            else:
                self._engine = _PinnedCascades(self.graph, self.edge_values)
        return self._engine

    def candidates(self) -> list[User]:
        """All graph nodes (the :class:`SpreadOracle` protocol)."""
        return list(self.graph.nodes())

    def spread(self, seeds: Iterable[User]) -> float:
        """Monte-Carlo estimate of the expected spread of ``seeds``.

        Deterministic per seed set (canonicalised, so order does not
        matter) and identical on every executor.
        """
        seed_list = list(seeds)
        canonical = repr(sorted(repr(node) for node in seed_list))
        set_seed = derive_seed(self.seed, "spread", canonical)
        batches = [
            (size, derive_seed(set_seed, index))
            for index, size in enumerate(self.batch_sizes())
        ]
        means = self._run(seed_list, batches)
        total = sum(mean * size for mean, (size, _) in zip(means, batches))
        return total / self.num_simulations

    def spread_many(self, seed_sets: Sequence[Iterable[User]]) -> list[float]:
        """Estimates for many seed sets in one dispatch pass.

        Element ``i`` is bit-identical to ``spread(seed_sets[i])`` — the
        per-set canonicalisation, seed fan-out, batch decomposition and
        reduction order are exactly :meth:`spread`'s; what changes is
        that *all* sets' batches go to the engine (and, under a parallel
        executor, into a single ``executor.map``) as one task list.
        This is the request-coalescing seam ``repro serve`` uses to
        answer concurrent ``/spread``/``/predict`` queries in one pass
        instead of one engine dispatch per HTTP request.
        """
        with obs_trace.span(
            "estimator.spread_many", model=self.model, sets=len(seed_sets)
        ):
            plans: list[tuple[list[User], list[tuple[int, int]]]] = []
            for seeds in seed_sets:
                seed_list = list(seeds)
                canonical = repr(sorted(repr(node) for node in seed_list))
                set_seed = derive_seed(self.seed, "spread", canonical)
                plans.append(
                    (
                        seed_list,
                        [
                            (size, derive_seed(set_seed, index))
                            for index, size in enumerate(self.batch_sizes())
                        ],
                    )
                )
            engine = self.engine()
            executor = self.executor
            if executor is None or not executor.is_parallel:
                all_means = [
                    _run_batch_chunk((engine, self.model, seed_list, batches))
                    for seed_list, batches in plans
                ]
            else:
                # Chunk each set's batches exactly as _run would, but
                # submit the union in one map call — the per-batch means
                # (and so the reduced floats) cannot differ, only the
                # scheduling.
                payloads = []
                chunk_counts = []
                for seed_list, batches in plans:
                    chunks = split_chunks(list(batches), executor.workers())
                    chunk_counts.append(len(chunks))
                    payloads.extend(
                        (engine, self.model, seed_list, chunk)
                        for chunk in chunks
                    )
                results = iter(executor.map(_run_batch_chunk, payloads))
                all_means = []
                for count in chunk_counts:
                    means: list[float] = []
                    for _ in range(count):
                        means.extend(next(results))
                    all_means.append(means)
            return [
                sum(mean * size for mean, (size, _) in zip(means, batches))
                / self.num_simulations
                for (_, batches), means in zip(plans, all_means)
            ]

    def _run(
        self, seeds: list[User], batches: Sequence[tuple[int, int]]
    ) -> list[float]:
        engine = self.engine()
        executor = self.executor
        if executor is None or not executor.is_parallel or len(batches) <= 1:
            return _run_batch_chunk((engine, self.model, seeds, list(batches)))
        chunks = split_chunks(list(batches), executor.workers())
        results = executor.map(
            _run_batch_chunk,
            [(engine, self.model, seeds, chunk) for chunk in chunks],
        )
        return [mean for chunk_means in results for mean in chunk_means]
