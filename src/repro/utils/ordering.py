"""One deterministic ordering for heterogeneous node ids.

Seed-selection code breaks score ties constantly — in heaps, in argmax
scans, in top-k sorts.  Node ids are opaque hashables (ints in the
synthetic datasets, strings once a dataset round-trips through TSV), so
they cannot be compared directly; historically each algorithm carried
its own private ``_sort_key`` copy, and the copies had started to drift
(tuple keys in RIS/heuristics, string keys in PMIA/LDAG, an insertion
counter in degree-discount).

:func:`node_sort_key` is the single canonical key: order by type name
first, then by ``repr``.  Every tie anywhere in the library breaks the
same way, which is what makes registry-dispatched selector runs
byte-identical to direct calls.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

__all__ = ["node_sort_key", "ranked_nodes"]


def node_sort_key(value: object) -> tuple[str, str]:
    """Deterministic, type-safe sort key for arbitrary hashable node ids.

    Orders by type name, then by ``repr`` — total over mixed int/str/
    tuple id spaces, and stable across processes (unlike ``hash``).
    """
    return (type(value).__name__, repr(value))


def ranked_nodes(
    scores: Mapping[Hashable, float] | Iterable[tuple[Hashable, float]],
    k: int | None = None,
) -> list[Hashable]:
    """Nodes by decreasing score, ties broken by :func:`node_sort_key`.

    Accepts a mapping or an iterable of ``(node, score)`` pairs; returns
    the first ``k`` nodes (all of them when ``k`` is ``None``).
    """
    items = scores.items() if isinstance(scores, Mapping) else scores
    ranked = [
        node
        for node, _ in sorted(
            items, key=lambda pair: (-pair[1], node_sort_key(pair[0]))
        )
    ]
    return ranked if k is None else ranked[:k]
