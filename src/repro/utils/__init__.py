"""Shared utilities: seeded randomness, priority queues, timing, validation.

These are small, dependency-free building blocks used across the library.
They are exported here so that downstream code can write
``from repro.utils import make_rng, LazyQueue`` without caring about the
internal module layout.
"""

from repro.utils.ordering import node_sort_key, ranked_nodes
from repro.utils.pqueue import LazyQueue, QueueEntry
from repro.utils.retry import RetryBudgetExceeded, RetryPolicy, with_retry
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    require,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "LazyQueue",
    "QueueEntry",
    "make_rng",
    "node_sort_key",
    "ranked_nodes",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "spawn_rngs",
    "with_retry",
    "Timer",
    "require",
    "require_non_negative",
    "require_positive",
    "require_probability",
]
