"""Deterministic random-number-generator helpers.

Every stochastic component in the library (graph generators, cascade
simulators, Monte Carlo spread estimators, probability perturbation)
accepts either an integer seed or a ready-made :class:`random.Random`.
Centralising the coercion here keeps experiments reproducible: the same
seed always yields the same dataset, the same simulations and therefore
the same benchmark tables.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["make_rng", "spawn_rngs", "integer_seed", "derive_seed"]


def derive_seed(base: int, *labels: object) -> int:
    """A deterministic child seed for ``(base, labels)``.

    The fan-out rule behind every deterministic decomposition in the
    library: :meth:`repro.api.context.SelectionContext.derive_seed`
    (per-(selector, trial) streams) and the runtime's per-task seeds
    (Monte-Carlo simulation batches, prediction methods) all hash
    through here.  Stable across processes — blake2b of the labels'
    ``repr``, not the salted built-in ``hash`` — so the same base seed
    and labels always yield the same stream on any executor.
    """
    tag = "|".join([str(base), *map(repr, labels)])
    digest = hashlib.blake2b(tag.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def make_rng(seed: int | random.Random | None = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be:

    * ``None`` — a fresh, OS-seeded generator (non-reproducible; fine for
      exploratory use, avoided by the benchmark harness),
    * an ``int`` — a generator seeded with that value,
    * a ``random.Random`` — returned unchanged, so callers can thread one
      generator through a pipeline.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def integer_seed(seed: int | random.Random | None) -> int | None:
    """Coerce a ``make_rng``-style seed to an integer (or ``None``).

    Used by the NumPy kernels, whose generators are seeded with plain
    integers.  A ``random.Random`` contributes 64 bits from its stream
    (consuming them — the caller handed over the generator precisely to
    derive downstream randomness from it); ``None`` stays ``None``
    (fresh OS entropy, exactly like ``make_rng(None)``).
    """
    if seed is None or isinstance(seed, int):
        return seed
    return seed.getrandbits(64)


def spawn_rngs(seed: int | random.Random | None, count: int) -> list[random.Random]:
    """Derive ``count`` independent child generators from ``seed``.

    Children are seeded from the parent stream, so two runs with the same
    parent seed produce identical children, while the children themselves
    are decorrelated enough for independent simulation streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = make_rng(seed)
    return [random.Random(parent.getrandbits(64)) for _ in range(count)]
