"""Small argument-validation helpers.

The library validates inputs at public API boundaries and raises
``ValueError`` with messages that name the offending parameter, per the
"errors should never pass silently" principle.  Internal hot loops do not
re-validate.
"""

from __future__ import annotations

__all__ = [
    "ConfigError",
    "require",
    "require_config",
    "require_positive",
    "require_non_negative",
    "require_probability",
]


class ConfigError(ValueError):
    """An experiment configuration names an impossible combination.

    Raised up front — at :class:`~repro.api.experiment.ExperimentConfig`
    construction or during the pipeline's learn-stage validation —
    when a selector's capability flags are incompatible with the
    requested workload (e.g. a budget workload given to a selector
    without ``supports_budget``, or a selector needing learned
    artifacts bound to a context that has no training log).  Subclasses
    ``ValueError`` so existing broad handlers keep working.
    """


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_config(condition: bool, message: str) -> None:
    """Raise :class:`ConfigError(message)` unless ``condition`` holds."""
    if not condition:
        raise ConfigError(message)


def require_positive(value: float, name: str) -> None:
    """Raise unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Raise unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Raise unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
