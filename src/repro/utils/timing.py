"""Wall-clock timing helper used by the runtime experiments (Figures 7-8).

The clock is :data:`repro.obs.trace.monotonic` — the single monotonic
source shared with tracing spans and the serving latency histograms,
so a stage timing in ``ExperimentResult.timings`` and the span that
wraps the same stage can never disagree about what a second is.
"""

from __future__ import annotations

from repro.obs.trace import monotonic

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed monotonic seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = monotonic()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = monotonic() - self._start

    def restart(self) -> None:
        """Reset the start point, discarding any recorded elapsed time."""
        self._start = monotonic()
        self.elapsed = 0.0
