"""Bounded retries with deterministic backoff and jitter.

The serving stack retries *transient* failures — an ``EIO`` that a
re-read survives, a store read racing a concurrent writer — a bounded
number of times before degrading.  Jitter is derived from
:func:`repro.utils.rng.derive_seed`, not wall-clock entropy, so two
replicas replaying the same request schedule back off identically and
a chaos run (:mod:`repro.faults`) is replayable end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.utils.rng import derive_seed

__all__ = ["RetryPolicy", "RetryBudgetExceeded", "with_retry"]

T = TypeVar("T")


class RetryBudgetExceeded(Exception):
    """Every attempt failed; carries the last underlying error."""

    def __init__(self, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"operation failed after {attempts} attempt"
            f"{'s' if attempts != 1 else ''}: {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait in between.

    ``delay(attempt)`` is exponential (``base * 2**attempt``) capped at
    ``max_delay_s``, with a deterministic jitter fraction drawn from
    ``derive_seed(seed, label, attempt)`` — bounded, reproducible, and
    decorrelated across labels so a thundering herd of retries still
    spreads out.
    """

    attempts: int = 3
    base_delay_s: float = 0.02
    max_delay_s: float = 0.5
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, label: object = "") -> float:
        """Seconds to sleep after failed attempt ``attempt`` (0-based)."""
        raw = min(self.base_delay_s * (2 ** attempt), self.max_delay_s)
        if not raw or not self.jitter:
            return raw
        # A deterministic draw in [1 - jitter, 1]: full-jitter shape,
        # but replayable (see module docstring).
        unit = (
            derive_seed(self.seed, label, attempt) % 1_000_000
        ) / 1_000_000.0
        return raw * (1.0 - self.jitter * unit)


def with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    label: object = "",
    sleep: Callable[[float], Any] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` until it succeeds or the policy's attempts run out.

    Only exceptions in ``retry_on`` are retried; anything else
    propagates immediately (a validation error does not become three
    validation errors and a delay).  When the budget is exhausted the
    *original* exception type propagates (re-raised), so callers'
    existing handlers keep working; the attempt count is available by
    catching the error and inspecting ``on_retry`` notifications.
    """
    last: BaseException | None = None
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on as error:
            last = error
            if on_retry is not None:
                on_retry(attempt, error)
            if attempt + 1 < policy.attempts:
                sleep(policy.delay(attempt, label))
    assert last is not None
    raise last
