"""A max-priority queue supporting the CELF "lazy forward" pattern.

CELF (Leskovec et al., KDD 2007) keeps candidate seeds in a queue ordered
by their *last computed* marginal gain, together with the iteration at
which that gain was computed.  When an entry surfaces whose gain is stale,
the gain is recomputed and the entry re-inserted; when a fresh entry
surfaces it is guaranteed optimal by submodularity.

:class:`LazyQueue` implements exactly that contract on top of ``heapq``
(a min-heap, so priorities are negated internally).  Ties are broken by
insertion order to keep runs deterministic.

Queues are *snapshotable*: :meth:`LazyQueue.snapshot` captures the heap
together with the tie-breaking counter, and :meth:`LazyQueue.restore`
rebuilds a queue that continues bit-identically — the seam the
persisted CELF prefix artifacts (:mod:`repro.store.prefix`) resume
from.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["LazyQueue", "QueueEntry"]


@dataclass(frozen=True)
class QueueEntry:
    """A queue element: ``item`` with priority ``gain`` computed at ``iteration``."""

    item: Any
    gain: float
    iteration: int


class LazyQueue:
    """Max-queue over ``(item, gain, iteration)`` entries.

    Example
    -------
    >>> q = LazyQueue()
    >>> q.push("a", 3.0, iteration=0)
    >>> q.push("b", 5.0, iteration=0)
    >>> q.pop().item
    'b'
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, QueueEntry]] = []
        self._count = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, item: Any, gain: float, iteration: int) -> None:
        """Insert ``item`` with priority ``gain`` stamped at ``iteration``."""
        entry = QueueEntry(item=item, gain=gain, iteration=iteration)
        heapq.heappush(self._heap, (-gain, self._count, entry))
        self._count += 1

    def pop(self) -> QueueEntry:
        """Remove and return the entry with the largest gain."""
        if not self._heap:
            raise IndexError("pop from an empty LazyQueue")
        _, _, entry = heapq.heappop(self._heap)
        return entry

    def peek(self) -> QueueEntry:
        """Return (without removing) the entry with the largest gain."""
        if not self._heap:
            raise IndexError("peek at an empty LazyQueue")
        return self._heap[0][2]

    def drain(self) -> Iterator[QueueEntry]:
        """Yield entries in decreasing-gain order, emptying the queue."""
        while self._heap:
            yield self.pop()

    # ------------------------------------------------------------------
    # Persistence (the CELF-resume seam)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A picklable snapshot of the queue's exact state.

        Captures the heap *and* the insertion counter: restoring and
        continuing is bit-identical to never having paused — including
        how future pushes tie-break against surviving entries.
        """
        return {
            "heap": [
                (neg_gain, count, (entry.item, entry.gain, entry.iteration))
                for neg_gain, count, entry in self._heap
            ],
            "count": self._count,
        }

    @classmethod
    def restore(cls, snapshot: dict[str, Any]) -> "LazyQueue":
        """Rebuild a queue from :meth:`snapshot` (the snapshot is not
        mutated; restoring twice yields two independent queues)."""
        queue = cls()
        queue._heap = [
            (neg_gain, count, QueueEntry(item=item, gain=gain, iteration=iteration))
            for neg_gain, count, (item, gain, iteration) in snapshot["heap"]
        ]
        queue._count = int(snapshot["count"])
        return queue
