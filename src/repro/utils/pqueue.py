"""A max-priority queue supporting the CELF "lazy forward" pattern.

CELF (Leskovec et al., KDD 2007) keeps candidate seeds in a queue ordered
by their *last computed* marginal gain, together with the iteration at
which that gain was computed.  When an entry surfaces whose gain is stale,
the gain is recomputed and the entry re-inserted; when a fresh entry
surfaces it is guaranteed optimal by submodularity.

:class:`LazyQueue` implements exactly that contract on top of ``heapq``
(a min-heap, so priorities are negated internally).  Ties are broken by
insertion order to keep runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["LazyQueue", "QueueEntry"]


@dataclass(frozen=True)
class QueueEntry:
    """A queue element: ``item`` with priority ``gain`` computed at ``iteration``."""

    item: Any
    gain: float
    iteration: int


class LazyQueue:
    """Max-queue over ``(item, gain, iteration)`` entries.

    Example
    -------
    >>> q = LazyQueue()
    >>> q.push("a", 3.0, iteration=0)
    >>> q.push("b", 5.0, iteration=0)
    >>> q.pop().item
    'b'
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, QueueEntry]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, item: Any, gain: float, iteration: int) -> None:
        """Insert ``item`` with priority ``gain`` stamped at ``iteration``."""
        entry = QueueEntry(item=item, gain=gain, iteration=iteration)
        heapq.heappush(self._heap, (-gain, next(self._counter), entry))

    def pop(self) -> QueueEntry:
        """Remove and return the entry with the largest gain."""
        if not self._heap:
            raise IndexError("pop from an empty LazyQueue")
        _, _, entry = heapq.heappop(self._heap)
        return entry

    def peek(self) -> QueueEntry:
        """Return (without removing) the entry with the largest gain."""
        if not self._heap:
            raise IndexError("peek at an empty LazyQueue")
        return self._heap[0][2]

    def drain(self) -> Iterator[QueueEntry]:
        """Yield entries in decreasing-gain order, emptying the queue."""
        while self._heap:
            yield self.pop()
