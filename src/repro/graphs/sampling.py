"""Graph sampling: cutting representative subgraphs from large crawls.

The paper cuts its "small" datasets out of the full crawls with Graclus
community clustering (our substitute:
:func:`repro.graphs.clustering.extract_community`).  The sampling
literature offers a complementary approach that preserves different
properties: **forest-fire sampling** (Leskovec & Faloutsos, KDD 2006)
grows a subgraph by recursive partial burning from a random seed,
preserving degree and clustering shapes without requiring a community
structure.  Both are useful for scaling experiments down; this module
adds the forest-fire option plus the snowball (full k-hop) baseline.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Hashable

from repro.graphs.digraph import SocialGraph
from repro.utils.rng import make_rng
from repro.utils.validation import require, require_probability

__all__ = ["forest_fire_sample", "snowball_sample"]

Node = Hashable


def forest_fire_sample(
    graph: SocialGraph,
    target_size: int,
    forward_probability: float = 0.7,
    seed: int | random.Random | None = None,
) -> SocialGraph:
    """Sample ~``target_size`` nodes by forest-fire burning.

    From a random ignition node, each burning node "burns" a
    geometrically distributed number of its unvisited neighbours (mean
    ``p / (1 - p)`` with ``p = forward_probability``), recursively.
    When a fire dies out before reaching the target, a new ignition
    starts from a fresh random node, so the sample can span components.
    Returns the subgraph induced by the burned nodes.
    """
    require(target_size >= 0, f"target_size must be >= 0, got {target_size}")
    require_probability(forward_probability, "forward_probability")
    rng = make_rng(seed)
    nodes = sorted(graph.nodes(), key=repr)
    if not nodes or target_size == 0:
        return SocialGraph()
    target = min(target_size, len(nodes))
    burned: set[Node] = set()
    unvisited = set(nodes)
    while len(burned) < target and unvisited:
        ignition = rng.choice(sorted(unvisited, key=repr))
        frontier = deque([ignition])
        burned.add(ignition)
        unvisited.discard(ignition)
        while frontier and len(burned) < target:
            node = frontier.popleft()
            neighbors = sorted(
                (
                    neighbor
                    for neighbor in (
                        graph.out_neighbors(node) | graph.in_neighbors(node)
                    )
                    if neighbor in unvisited
                ),
                key=repr,
            )
            if not neighbors:
                continue
            # Geometric number of links to burn (mean p / (1 - p)).
            to_burn = 0
            while rng.random() < forward_probability:
                to_burn += 1
            for neighbor in rng.sample(
                neighbors, k=min(to_burn, len(neighbors))
            ):
                burned.add(neighbor)
                unvisited.discard(neighbor)
                frontier.append(neighbor)
                if len(burned) >= target:
                    break
    return graph.subgraph(burned)


def snowball_sample(
    graph: SocialGraph,
    start: Node,
    hops: int,
    max_size: int | None = None,
) -> SocialGraph:
    """The full ``hops``-neighbourhood of ``start`` (undirected BFS).

    The deterministic baseline sampler: everything within ``hops``
    undirected steps, optionally truncated at ``max_size`` nodes (BFS
    order, so the truncation keeps the closest nodes).
    """
    require(hops >= 0, f"hops must be >= 0, got {hops}")
    require(start in graph, f"start node {start!r} is not in the graph")
    if max_size is not None:
        require(max_size >= 1, f"max_size must be >= 1, got {max_size}")
    kept = {start}
    frontier = deque([(start, 0)])
    while frontier:
        node, depth = frontier.popleft()
        if depth == hops:
            continue
        for neighbor in sorted(
            graph.out_neighbors(node) | graph.in_neighbors(node), key=repr
        ):
            if neighbor in kept:
                continue
            if max_size is not None and len(kept) >= max_size:
                frontier.clear()
                break
            kept.add(neighbor)
            frontier.append((neighbor, depth + 1))
    return graph.subgraph(kept)
