"""Structural statistics of social graphs.

The paper characterises its datasets by node/edge counts and average
degree (Table 1); deeper structure — degree distributions, reciprocity,
clustering, core decomposition — determines how influence can flow and
is what the synthetic generators must match for the reproduction to be
faithful.  This module provides those measurements for
:class:`~repro.graphs.digraph.SocialGraph`, dependency-free, so dataset
reports and generator calibration tests can assert on them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable

from repro.graphs.digraph import SocialGraph
from repro.utils.ordering import node_sort_key

__all__ = [
    "GraphSummary",
    "degree_histogram",
    "density",
    "reciprocity",
    "global_clustering_coefficient",
    "average_local_clustering",
    "core_numbers",
    "summarize_graph",
]

Node = Hashable


def degree_histogram(
    graph: SocialGraph, direction: str = "out"
) -> dict[int, int]:
    """Histogram ``{degree: node count}`` for the chosen direction.

    ``direction`` is one of ``"out"``, ``"in"`` or ``"total"``.
    """
    if direction == "out":
        degree_of = graph.out_degree
    elif direction == "in":
        degree_of = graph.in_degree
    elif direction == "total":
        degree_of = graph.degree
    else:
        raise ValueError(
            f"direction must be 'out', 'in' or 'total', got {direction!r}"
        )
    histogram: dict[int, int] = {}
    for node in graph.nodes():
        degree = degree_of(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def density(graph: SocialGraph) -> float:
    """Directed density ``|E| / (|V| * (|V| - 1))``; 0.0 below two nodes."""
    nodes = graph.num_nodes
    if nodes < 2:
        return 0.0
    return graph.num_edges / (nodes * (nodes - 1))


def reciprocity(graph: SocialGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists.

    Friendship-like networks (Flixster) are highly reciprocal;
    follow-like networks are not.  0.0 for the edgeless graph.
    """
    if graph.num_edges == 0:
        return 0.0
    mutual = sum(
        1 for source, target in graph.edges() if graph.has_edge(target, source)
    )
    return mutual / graph.num_edges


def _undirected_neighbors(graph: SocialGraph, node: Node) -> set[Node]:
    """Neighbours of ``node`` in the undirected projection."""
    return graph.out_neighbors(node) | graph.in_neighbors(node)


def global_clustering_coefficient(graph: SocialGraph) -> float:
    """Transitivity of the undirected projection: 3 * triangles / triads.

    Community-structured social graphs have high transitivity, which is
    what makes the paper's Graclus community sampling meaningful; random
    (Erdős–Rényi) graphs have transitivity ≈ density.
    """
    closed = 0
    triads = 0
    for node in graph.nodes():
        neighbors = sorted(
            _undirected_neighbors(graph, node), key=node_sort_key
        )
        count = len(neighbors)
        triads += count * (count - 1) // 2
        for i, first in enumerate(neighbors):
            first_neighbors = _undirected_neighbors(graph, first)
            for second in neighbors[i + 1 :]:
                if second in first_neighbors:
                    closed += 1
    if triads == 0:
        return 0.0
    return closed / triads


def average_local_clustering(graph: SocialGraph) -> float:
    """Mean of per-node clustering coefficients (undirected projection).

    Nodes with fewer than two neighbours contribute 0, as in the
    standard Watts–Strogatz definition.
    """
    if graph.num_nodes == 0:
        return 0.0
    total = 0.0
    for node in graph.nodes():
        neighbors = list(_undirected_neighbors(graph, node))
        count = len(neighbors)
        if count < 2:
            continue
        links = 0
        neighbor_sets = {v: _undirected_neighbors(graph, v) for v in neighbors}
        for i, first in enumerate(neighbors):
            for second in neighbors[i + 1 :]:
                if second in neighbor_sets[first]:
                    links += 1
        total += 2.0 * links / (count * (count - 1))
    return total / graph.num_nodes


def core_numbers(graph: SocialGraph) -> dict[Node, int]:
    """K-core decomposition of the undirected projection.

    The core number of a node is the largest ``k`` such that the node
    belongs to a maximal subgraph of minimum (undirected) degree ``k``.
    High-core nodes sit in densely knit regions — exactly where the
    High-Degree heuristic's seeds cluster and overlap wastefully, one of
    the classic motivations for submodular seed selection.

    Uses the peeling algorithm (Batagelj–Zaveršnik): repeatedly remove
    the minimum-degree node; its degree at removal time is its core
    number (taken as a running maximum).
    """
    degrees = {
        node: len(_undirected_neighbors(graph, node)) for node in graph.nodes()
    }
    # Bucket queue over degrees keeps the peel O(V + E).
    max_degree = max(degrees.values(), default=0)
    buckets: list[list[Node]] = [[] for _ in range(max_degree + 1)]
    for node, degree in degrees.items():
        buckets[degree].append(node)
    core: dict[Node, int] = {}
    removed: set[Node] = set()
    current = 0
    for degree_level in range(max_degree + 1):
        queue = deque(buckets[degree_level])
        while queue:
            node = queue.popleft()
            if node in removed or degrees[node] > degree_level:
                continue
            current = max(current, degrees[node])
            core[node] = current
            removed.add(node)
            for neighbor in _undirected_neighbors(graph, node):
                if neighbor in removed:
                    continue
                if degrees[neighbor] > degree_level:
                    degrees[neighbor] -= 1
                    if degrees[neighbor] == degree_level:
                        queue.append(neighbor)
                    else:
                        buckets[degrees[neighbor]].append(neighbor)
    return core


@dataclass(frozen=True)
class GraphSummary:
    """A bundle of the structural statistics reported by dataset tooling."""

    num_nodes: int
    num_edges: int
    average_degree: float
    density: float
    reciprocity: float
    max_in_degree: int
    max_out_degree: int
    global_clustering: float
    max_core: int
    num_components: int
    largest_component_fraction: float

    def as_rows(self) -> list[tuple[str, str]]:
        """``(label, value)`` rows for table rendering."""
        return [
            ("nodes", str(self.num_nodes)),
            ("directed edges", str(self.num_edges)),
            ("average degree", f"{self.average_degree:.2f}"),
            ("density", f"{self.density:.5f}"),
            ("reciprocity", f"{self.reciprocity:.3f}"),
            ("max in-degree", str(self.max_in_degree)),
            ("max out-degree", str(self.max_out_degree)),
            ("global clustering", f"{self.global_clustering:.3f}"),
            ("max core number", str(self.max_core)),
            ("weak components", str(self.num_components)),
            ("largest component", f"{self.largest_component_fraction:.1%}"),
        ]


def summarize_graph(graph: SocialGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``.

    Quadratic-in-neighbourhood terms (clustering) make this suitable for
    the "small" datasets; the generators' calibration tests use it.
    """
    components = graph.undirected_components()
    largest = len(components[0]) if components else 0
    cores = core_numbers(graph)
    return GraphSummary(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree(),
        density=density(graph),
        reciprocity=reciprocity(graph),
        max_in_degree=max(
            (graph.in_degree(node) for node in graph.nodes()), default=0
        ),
        max_out_degree=max(
            (graph.out_degree(node) for node in graph.nodes()), default=0
        ),
        global_clustering=global_clustering_coefficient(graph),
        max_core=max(cores.values(), default=0),
        num_components=len(components),
        largest_component_fraction=(
            largest / graph.num_nodes if graph.num_nodes else 0.0
        ),
    )

