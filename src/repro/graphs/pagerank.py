"""PageRank by power iteration.

PageRank is one of the two structural baselines of the paper's Figure 6
("Spread Achieved"): pick the top-k nodes by PageRank score as seeds.  We
implement the standard damped random-surfer model with uniform
teleportation and dangling-mass redistribution, iterated to an L1 fixed
point.
"""

from __future__ import annotations

from repro.graphs.digraph import SocialGraph
from repro.utils.validation import require, require_probability

__all__ = ["pagerank"]


def pagerank(
    graph: SocialGraph,
    damping: float = 0.85,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> dict[object, float]:
    """Return the PageRank score of every node (scores sum to 1).

    Parameters
    ----------
    graph:
        The social graph; edge ``u -> v`` transfers rank from ``u`` to ``v``.
    damping:
        Probability of following a link (vs teleporting); 0.85 is standard.
    tolerance:
        L1 convergence threshold on successive score vectors.
    max_iterations:
        Hard cap on power-iteration rounds.
    """
    require_probability(damping, "damping")
    require(tolerance > 0, f"tolerance must be positive, got {tolerance}")
    require(max_iterations >= 1, f"max_iterations must be >= 1, got {max_iterations}")
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    count = len(nodes)
    uniform = 1.0 / count
    scores = {node: uniform for node in nodes}
    dangling = [node for node in nodes if graph.out_degree(node) == 0]
    for _ in range(max_iterations):
        dangling_mass = sum(scores[node] for node in dangling)
        base = (1.0 - damping) * uniform + damping * dangling_mass * uniform
        next_scores = {node: base for node in nodes}
        for node in nodes:
            out_degree = graph.out_degree(node)
            if out_degree == 0:
                continue
            share = damping * scores[node] / out_degree
            for target in graph.out_neighbors(node):
                next_scores[target] += share
        delta = sum(abs(next_scores[node] - scores[node]) for node in nodes)
        scores = next_scores
        if delta < tolerance:
            break
    return scores
