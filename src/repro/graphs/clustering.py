"""Community detection — the Graclus substitute.

Section 3 of the paper extracts "small" evaluation datasets by running the
Graclus graph-clustering tool and keeping a single community.  Graclus is
a closed research artifact; we stand in asynchronous **label propagation**
(Raghavan et al. 2007), which needs no dependencies, is near-linear time,
and recovers planted partitions reliably at the densities our generators
use (verified in ``tests/test_clustering.py``).

:func:`extract_community` reproduces the paper's sampling step end to
end: cluster the graph, pick the community whose size is closest to the
requested target, and return the induced subgraph.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.graphs.digraph import SocialGraph
from repro.utils.rng import make_rng
from repro.utils.validation import require

__all__ = ["label_propagation", "extract_community"]


def label_propagation(
    graph: SocialGraph,
    seed: int | random.Random | None = None,
    max_rounds: int = 100,
) -> dict[object, int]:
    """Cluster ``graph`` by asynchronous label propagation.

    Each node starts in its own community; in random order, every node
    adopts the most frequent label among its (undirected) neighbours,
    breaking ties randomly.  Converges when a full round changes nothing.

    Returns a mapping ``node -> community label`` with labels renumbered
    to ``0 .. c-1`` in decreasing community-size order.
    """
    rng = make_rng(seed)
    labels = {node: index for index, node in enumerate(graph.nodes())}
    order = list(graph.nodes())
    for _ in range(max_rounds):
        rng.shuffle(order)
        changed = False
        for node in order:
            neighbors = graph.out_neighbors(node) | graph.in_neighbors(node)
            if not neighbors:
                continue
            counts = Counter(labels[neighbor] for neighbor in neighbors)
            best_count = max(counts.values())
            best_labels = sorted(
                label for label, count in counts.items() if count == best_count
            )
            new_label = best_labels[rng.randrange(len(best_labels))]
            if new_label != labels[node]:
                labels[node] = new_label
                changed = True
        if not changed:
            break
    return _renumber_by_size(labels)


def extract_community(
    graph: SocialGraph,
    target_size: int,
    seed: int | random.Random | None = None,
) -> SocialGraph:
    """Return the induced subgraph of the community closest to ``target_size``.

    This mirrors the paper's construction of Flixster_Small and
    Flickr_Small: take a unique community obtained by graph clustering.
    """
    require(target_size >= 1, f"target_size must be >= 1, got {target_size}")
    require(graph.num_nodes >= 1, "cannot extract a community from an empty graph")
    labels = label_propagation(graph, seed=seed)
    sizes = Counter(labels.values())
    best_label = min(sizes, key=lambda label: (abs(sizes[label] - target_size), label))
    members = [node for node, label in labels.items() if label == best_label]
    return graph.subgraph(members)


def _renumber_by_size(labels: dict[object, int]) -> dict[object, int]:
    """Renumber community labels so label 0 is the largest community."""
    sizes = Counter(labels.values())
    ranked = sorted(sizes, key=lambda label: (-sizes[label], label))
    renumber = {old: new for new, old in enumerate(ranked)}
    return {node: renumber[label] for node, label in labels.items()}
