"""Random social-graph generators.

The paper's Flixster and Flickr graphs are crawls of real platforms; we
cannot redistribute them, so the dataset registry
(:mod:`repro.data.datasets`) synthesises structurally similar graphs from
the generators below.  What matters for the experiments is:

* heavy-tailed degree distributions (so High-Degree is a meaningful
  baseline and hubs exist),
* community structure (so the Graclus-style "small community" sampling
  step of Section 3 has communities to find),
* controllable density (Flixster-like: avg degree ~15; Flickr-like: ~80).

All generators are deterministic given a seed and return
:class:`~repro.graphs.digraph.SocialGraph` instances with integer nodes
``0 .. n-1``.
"""

from __future__ import annotations

import random

from repro.graphs.digraph import SocialGraph
from repro.utils.rng import make_rng
from repro.utils.validation import require, require_probability

__all__ = [
    "erdos_renyi_graph",
    "preferential_attachment_graph",
    "watts_strogatz_graph",
    "planted_partition_graph",
]


def erdos_renyi_graph(
    num_nodes: int,
    edge_probability: float,
    seed: int | random.Random | None = None,
) -> SocialGraph:
    """G(n, p): each ordered pair becomes an edge independently with prob p.

    Used mainly in tests; real social graphs are not Poisson, but G(n, p)
    gives clean null models for the statistical checks.
    """
    require(num_nodes >= 0, f"num_nodes must be non-negative, got {num_nodes}")
    require_probability(edge_probability, "edge_probability")
    rng = make_rng(seed)
    graph = SocialGraph()
    for node in range(num_nodes):
        graph.add_node(node)
    # Geometric skipping: O(expected edges) rather than O(n^2) for small p.
    if edge_probability <= 0.0:
        return graph
    if edge_probability >= 1.0:
        for source in range(num_nodes):
            for target in range(num_nodes):
                if source != target:
                    graph.add_edge(source, target)
        return graph
    total_pairs = num_nodes * (num_nodes - 1)
    index = -1
    log_q = _log1m(edge_probability)
    while True:
        # Skip ahead a geometrically distributed number of non-edges.
        gap = int(_log(rng.random()) / log_q)
        index += gap + 1
        if index >= total_pairs:
            break
        source, offset = divmod(index, num_nodes - 1)
        target = offset if offset < source else offset + 1
        graph.add_edge(source, target)
    return graph


def preferential_attachment_graph(
    num_nodes: int,
    out_degree: int,
    seed: int | random.Random | None = None,
    reciprocity: float = 0.3,
) -> SocialGraph:
    """Directed Barabási–Albert-style graph with heavy-tailed in-degrees.

    Each new node attaches ``out_degree`` edges to existing nodes chosen
    proportionally to their current degree (plus one, so isolated nodes
    remain reachable).  With probability ``reciprocity`` each new edge is
    reciprocated, modelling mutual follow relationships common on social
    platforms.
    """
    require(num_nodes >= 1, f"num_nodes must be >= 1, got {num_nodes}")
    require(out_degree >= 1, f"out_degree must be >= 1, got {out_degree}")
    require_probability(reciprocity, "reciprocity")
    rng = make_rng(seed)
    graph = SocialGraph()
    graph.add_node(0)
    # Repeated-nodes list: node i appears degree(i)+1 times, giving the
    # classic O(1) preferential sampling trick.
    attachment_pool: list[int] = [0]
    for node in range(1, num_nodes):
        graph.add_node(node)
        chosen: set[int] = set()
        attempts = 0
        want = min(out_degree, node)
        while len(chosen) < want and attempts < 20 * out_degree:
            candidate = attachment_pool[rng.randrange(len(attachment_pool))]
            attempts += 1
            if candidate != node:
                chosen.add(candidate)
        # Fall back to uniform sampling if the pool was too concentrated.
        while len(chosen) < want:
            candidate = rng.randrange(node)
            chosen.add(candidate)
        for target in chosen:
            graph.add_edge(node, target)
            attachment_pool.append(target)
            if rng.random() < reciprocity:
                graph.add_edge(target, node)
                attachment_pool.append(node)
        attachment_pool.append(node)
    return graph


def watts_strogatz_graph(
    num_nodes: int,
    ring_neighbors: int,
    rewire_probability: float,
    seed: int | random.Random | None = None,
) -> SocialGraph:
    """Directed small-world graph (ring lattice with random rewiring).

    Each node points to its ``ring_neighbors`` clockwise successors; every
    edge is rewired to a uniform random target with probability
    ``rewire_probability``.
    """
    require(num_nodes >= 3, f"num_nodes must be >= 3, got {num_nodes}")
    require(
        1 <= ring_neighbors < num_nodes,
        f"ring_neighbors must be in [1, num_nodes), got {ring_neighbors}",
    )
    require_probability(rewire_probability, "rewire_probability")
    rng = make_rng(seed)
    graph = SocialGraph()
    for node in range(num_nodes):
        graph.add_node(node)
    for node in range(num_nodes):
        # Track chosen targets so every node ends with exactly
        # ring_neighbors distinct out-edges even after rewiring.
        used = {node}
        for offset in range(1, ring_neighbors + 1):
            target = (node + offset) % num_nodes
            if rng.random() < rewire_probability or target in used:
                target = rng.randrange(num_nodes)
                while target in used:
                    target = rng.randrange(num_nodes)
            graph.add_edge(node, target)
            used.add(target)
    return graph


def planted_partition_graph(
    community_sizes: list[int],
    in_probability: float,
    out_probability: float,
    seed: int | random.Random | None = None,
) -> tuple[SocialGraph, dict[int, int]]:
    """Stochastic block model with planted communities.

    Returns ``(graph, membership)`` where ``membership[node]`` is the
    community index.  Edges inside a community appear with
    ``in_probability``; edges between communities with ``out_probability``.
    This is the substrate for testing the Graclus-substitute clustering
    (:func:`repro.graphs.clustering.label_propagation`).
    """
    require(bool(community_sizes), "community_sizes must be non-empty")
    require(
        all(size >= 1 for size in community_sizes),
        "all community sizes must be >= 1",
    )
    require_probability(in_probability, "in_probability")
    require_probability(out_probability, "out_probability")
    rng = make_rng(seed)
    membership: dict[int, int] = {}
    node = 0
    for community, size in enumerate(community_sizes):
        for _ in range(size):
            membership[node] = community
            node += 1
    num_nodes = node
    graph = SocialGraph()
    for node_id in range(num_nodes):
        graph.add_node(node_id)
    for source in range(num_nodes):
        for target in range(num_nodes):
            if source == target:
                continue
            probability = (
                in_probability
                if membership[source] == membership[target]
                else out_probability
            )
            if probability > 0.0 and rng.random() < probability:
                graph.add_edge(source, target)
    return graph, membership


def _log(x: float) -> float:
    import math

    # rng.random() can return 0.0; clamp to avoid -inf blowing up skipping.
    return math.log(x) if x > 0.0 else math.log(5e-324)


def _log1m(p: float) -> float:
    import math

    return math.log1p(-p)
