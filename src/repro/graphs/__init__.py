"""Directed social-graph substrate.

The paper's input is an *unweighted* directed social graph ``G = (V, E)``.
This subpackage provides:

* :class:`~repro.graphs.digraph.SocialGraph` — the adjacency-list digraph
  used by every other subsystem;
* random-graph generators used to synthesise Flixster/Flickr-like
  networks (:mod:`repro.graphs.generators`);
* label-propagation community detection standing in for the Graclus
  clustering the paper uses to cut out "small" datasets
  (:mod:`repro.graphs.clustering`);
* PageRank, one of the two heuristic seed selectors of Figure 6
  (:mod:`repro.graphs.pagerank`).
"""

from repro.graphs.clustering import extract_community, label_propagation
from repro.graphs.digraph import SocialGraph
from repro.graphs.generators import (
    erdos_renyi_graph,
    planted_partition_graph,
    preferential_attachment_graph,
    watts_strogatz_graph,
)
from repro.graphs.metrics import (
    GraphSummary,
    average_local_clustering,
    core_numbers,
    degree_histogram,
    density,
    global_clustering_coefficient,
    reciprocity,
    summarize_graph,
)
from repro.graphs.pagerank import pagerank
from repro.graphs.sampling import forest_fire_sample, snowball_sample

__all__ = [
    "SocialGraph",
    "erdos_renyi_graph",
    "preferential_attachment_graph",
    "watts_strogatz_graph",
    "planted_partition_graph",
    "label_propagation",
    "extract_community",
    "pagerank",
    "GraphSummary",
    "summarize_graph",
    "degree_histogram",
    "density",
    "reciprocity",
    "global_clustering_coefficient",
    "average_local_clustering",
    "core_numbers",
    "forest_fire_sample",
    "snowball_sample",
]
