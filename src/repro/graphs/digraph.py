"""Adjacency-list directed graph.

:class:`SocialGraph` is the single graph type used throughout the
library.  It stores both out- and in-adjacency so that diffusion models
(which walk forwards) and the credit-distribution scan (which needs the
*parents* of an activating user) are both O(degree).

Nodes are arbitrary hashable identifiers; the synthetic datasets use
contiguous integers.  Edges are unweighted here — influence probabilities
and credits live in separate structures keyed by ``(source, target)``
pairs, mirroring the paper's separation between the social graph and the
models learned on top of it.

Adjacency is stored *insertion-ordered* (dict-backed, not set-backed):
neighbor iteration order is the edge-insertion order, everywhere and
always — including after a round-trip through ``pickle``, which rebuilds
a ``set`` with a potentially different iteration order but preserves a
``dict`` exactly.  Every consumer that interleaves random draws with
neighbor iteration (the Monte-Carlo cascade simulators, RIS sampling)
or accumulates floats over neighbors (PageRank, IRIE) therefore
produces bit-identical results whether it runs in this process or in a
worker the graph was shipped to — the property the
:mod:`repro.runtime` process executor's parity guarantee rests on.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator, KeysView

__all__ = ["SocialGraph"]

Node = Hashable


class SocialGraph:
    """A simple directed graph with O(1) edge queries.

    Example
    -------
    >>> g = SocialGraph.from_edges([(1, 2), (2, 3)])
    >>> sorted(g.out_neighbors(2))
    [3]
    >>> g.in_degree(2)
    1
    """

    def __init__(self) -> None:
        # node -> insertion-ordered adjacency (dict keys as an ordered
        # set); see the module docstring for why this is not a set.
        self._out: dict[Node, dict[Node, None]] = {}
        self._in: dict[Node, dict[Node, None]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[Node, Node]], nodes: Iterable[Node] = ()
    ) -> "SocialGraph":
        """Build a graph from an edge list, plus optional isolated ``nodes``."""
        graph = cls()
        for node in nodes:
            graph.add_node(node)
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present (idempotent)."""
        if node not in self._out:
            self._out[node] = {}
            self._in[node] = {}

    def add_edge(self, source: Node, target: Node) -> None:
        """Add the directed edge ``source -> target`` (idempotent).

        Self-loops are rejected: a user does not influence themselves, and
        allowing them would create cycles in propagation graphs.
        """
        if source == target:
            raise ValueError(f"self-loop on node {source!r} is not allowed")
        self.add_node(source)
        self.add_node(target)
        if target not in self._out[source]:
            self._out[source][target] = None
            self._in[target][source] = None
            self._num_edges += 1

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove the directed edge ``source -> target``; raise if absent."""
        try:
            del self._out[source][target]
            del self._in[target][source]
        except KeyError as exc:
            raise KeyError(f"edge {source!r} -> {target!r} not in graph") from exc
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self._num_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._out)

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Iterate over directed edges as ``(source, target)`` pairs."""
        for source, targets in self._out.items():
            for target in targets:
                yield (source, target)

    def __contains__(self, node: Node) -> bool:
        return node in self._out

    def __len__(self) -> int:
        return len(self._out)

    def has_edge(self, source: Node, target: Node) -> bool:
        """Return True iff the directed edge ``source -> target`` exists."""
        targets = self._out.get(source)
        return targets is not None and target in targets

    def out_neighbors(self, node: Node) -> KeysView[Node]:
        """Nodes ``u`` with an edge ``node -> u``, in edge-insertion order.

        A live, set-like view (membership, iteration, ``len``, ``|``);
        do not mutate the graph while holding it.
        """
        return self._out[node].keys()

    def in_neighbors(self, node: Node) -> KeysView[Node]:
        """Nodes ``u`` with an edge ``u -> node``, in edge-insertion order.

        A live, set-like view (membership, iteration, ``len``, ``|``);
        do not mutate the graph while holding it.
        """
        return self._in[node].keys()

    def out_degree(self, node: Node) -> int:
        """Number of outgoing edges of ``node``."""
        return len(self._out[node])

    def in_degree(self, node: Node) -> int:
        """Number of incoming edges of ``node``."""
        return len(self._in[node])

    def degree(self, node: Node) -> int:
        """Total degree (in + out) of ``node``."""
        return len(self._out[node]) + len(self._in[node])

    def average_degree(self) -> float:
        """Average out-degree (edges per node); 0.0 for the empty graph."""
        if not self._out:
            return 0.0
        return self._num_edges / len(self._out)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "SocialGraph":
        """Return a new graph with every edge direction flipped."""
        reversed_graph = SocialGraph()
        for node in self._out:
            reversed_graph.add_node(node)
        for source, target in self.edges():
            reversed_graph.add_edge(target, source)
        return reversed_graph

    def subgraph(self, nodes: Iterable[Node]) -> "SocialGraph":
        """Return the subgraph induced by ``nodes``.

        Nodes absent from the graph are ignored, so callers can pass a
        community label set directly.
        """
        keep = {node for node in nodes if node in self._out}
        induced = SocialGraph()
        for node in keep:
            induced.add_node(node)
        for node in keep:
            for target in self._out[node]:
                if target in keep:
                    induced.add_edge(node, target)
        return induced

    def copy(self) -> "SocialGraph":
        """Return an independent copy of this graph."""
        duplicate = SocialGraph()
        for node in self._out:
            duplicate.add_node(node)
        for source, target in self.edges():
            duplicate.add_edge(source, target)
        return duplicate

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def reachable_from(self, sources: Iterable[Node]) -> set[Node]:
        """All nodes reachable from ``sources`` by directed paths (inclusive).

        This is the possible-world reachability primitive behind Eq. (2)
        of the paper: the spread in a deterministic world is
        ``len(world.reachable_from(seeds))``.
        """
        frontier = deque(node for node in sources if node in self._out)
        seen = set(frontier)
        while frontier:
            node = frontier.popleft()
            for target in self._out[node]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def undirected_components(self) -> list[set[Node]]:
        """Weakly connected components, largest first."""
        seen: set[Node] = set()
        components: list[set[Node]] = []
        for start in self._out:
            if start in seen:
                continue
            component = {start}
            frontier = deque([start])
            while frontier:
                node = frontier.popleft()
                for neighbor in self._out[node] | self._in[node]:
                    if neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            seen |= component
            components.append(component)
        components.sort(key=len, reverse=True)
        return components

    def __repr__(self) -> str:
        return f"SocialGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"
