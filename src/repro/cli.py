"""Command-line interface for the reproduction.

Gives shell access to the main workflows so the library can be driven
without writing Python:

* ``repro generate`` — synthesise a Flixster/Flickr-like dataset to TSV;
* ``repro stats`` — Table-1 statistics of a dataset on disk;
* ``repro split`` — the 80/20 train/test trace split;
* ``repro maximize`` — influence maximization under any supported method
  (dispatched through the :mod:`repro.api` selector registry);
* ``repro list-selectors`` — the selector registry: every algorithm,
  its family and capability flags;
* ``repro run`` — run a JSON-configured experiment
  (:func:`repro.api.run_experiment`) and print/export the result;
* ``repro predict`` — the Figure-3 spread-prediction experiment;
* ``repro analyze`` — influencer analytics from the credit index
  (leaderboard, per-user top influencers, seed-set explanation);
* ``repro cover`` — seed minimization: the smallest greedy seed set
  reaching a target spread;
* ``repro budget`` — budgeted selection under per-user costs (the CEF
  rule);
* ``repro graphstats`` — structural statistics of the social graph
  (degrees, clustering, cores, components);
* ``repro learn`` — learn edge probabilities / LT weights from a
  training log and persist them as a weighted edge list, and/or save
  the full warm-start artifact bundle into an artifact store
  (``--store``);
* ``repro store`` — inspect (``ls``, with per-context lineage depth)
  and garbage-collect (``gc``) an artifact store directory; ``gc``
  never expires a bundle that a live delta-derived bundle still
  references;
* ``repro ingest`` — fold an action-log delta file into a stored
  bundle (:mod:`repro.stream`): incremental artifact maintenance, a
  new lineage-linked bundle under the union dataset's fingerprint
  (recorded selection prefixes are refreshed onto the derived bundle);
* ``repro prefix`` — precompute selection-prefix artifacts
  (:mod:`repro.store.prefix`) for a stored context, so a warm
  ``/select`` at any ``k <= k_max`` is a lookup instead of a greedy
  sweep;
* ``repro serve`` — the warm-start HTTP query service: answer
  ``select``/``spread``/``predict`` requests from stored artifacts
  without touching the raw action log (and ``/ingest`` deltas with a
  zero-downtime context swap); concurrent Monte-Carlo queries coalesce
  into shared engine passes behind a bounded queue (503 on overload).

Every subcommand reads/writes the TSV formats of :mod:`repro.data.io`;
the store subcommands use the :mod:`repro.store` layout.  Run
``python -m repro.cli <command> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.api import (
    ExperimentConfig,
    SelectionContext,
    get_selector,
    list_selectors,
    run_experiment,
)
from repro.data.datasets import Dataset, flickr_like, flixster_like
from repro.data.io import (
    load_action_log,
    load_graph,
    save_action_log,
    save_graph,
)
from repro.data.split import train_test_split
from repro.evaluation.reporting import format_table
from repro.evaluation.selection import method_selector

__all__ = ["main", "build_parser"]

_DATASET_MAKERS = {"flixster": flixster_like, "flickr": flickr_like}
_METHODS = [
    "CD", "IC", "LT", "EM", "PT", "UN", "TV", "WC", "HighDegree", "PageRank",
]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Data-Based Approach to Social Influence "
            "Maximization' (VLDB 2011)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesise a dataset and write it as TSV"
    )
    generate.add_argument("--dataset", choices=sorted(_DATASET_MAKERS),
                          default="flixster")
    generate.add_argument("--scale", choices=["mini", "small", "large"],
                          default="small")
    generate.add_argument("--seed", type=int, default=None,
                          help="override the preset RNG seed")
    generate.add_argument("--graph", required=True, help="output graph TSV")
    generate.add_argument("--log", required=True, help="output action-log TSV")

    stats = commands.add_parser("stats", help="Table-1 statistics of a dataset")
    stats.add_argument("--graph", required=True)
    stats.add_argument("--log", required=True)

    split = commands.add_parser(
        "split", help="80/20 train/test split by size-ranked traces"
    )
    split.add_argument("--log", required=True)
    split.add_argument("--train", required=True, help="output training-log TSV")
    split.add_argument("--test", required=True, help="output test-log TSV")
    split.add_argument("--every", type=int, default=5)

    maximize = commands.add_parser(
        "maximize", help="select seeds by influence maximization"
    )
    maximize.add_argument("--graph", required=True)
    maximize.add_argument("--log", required=True)
    maximize.add_argument("--method", choices=_METHODS, default="CD")
    maximize.add_argument("-k", type=int, default=10)
    maximize.add_argument("--truncation", type=float, default=0.001)
    maximize.add_argument("--simulations", type=int, default=100,
                          help="MC simulations for celf backends")
    maximize.add_argument(
        "--ic-algorithm", choices=["pmia", "celf"], default="pmia"
    )
    maximize.add_argument(
        "--lt-algorithm", choices=["ldag", "celf"], default="ldag"
    )

    list_cmd = commands.add_parser(
        "list-selectors",
        help="list every registered seed-selection algorithm",
    )
    list_cmd.add_argument(
        "--family", choices=["cd", "mc", "sketch", "heuristic"], default=None
    )

    run = commands.add_parser(
        "run", help="run a JSON-configured experiment (repro.api)"
    )
    run.add_argument("--config", required=True, help="experiment config JSON")
    run.add_argument("--out", default=None,
                     help="also write the full result as JSON")
    run.add_argument(
        "--executor", choices=["auto", "serial", "thread", "process"],
        default=None,
        help="override the config's executor (results are identical; "
        "only wall time changes)",
    )
    run.add_argument("--max-workers", type=int, default=None,
                     help="override the config's worker count")

    predict = commands.add_parser(
        "predict", help="spread-prediction experiment (Figure-3 protocol)"
    )
    predict.add_argument("--graph", required=True)
    predict.add_argument("--log", required=True)
    predict.add_argument("--max-traces", type=int, default=50)
    predict.add_argument("--simulations", type=int, default=200,
                         help="MC simulations per spread prediction")
    predict.add_argument(
        "--executor", choices=["auto", "serial", "thread", "process"],
        default="auto",
    )

    analyze = commands.add_parser(
        "analyze", help="influencer analytics from the credit index"
    )
    analyze.add_argument("--graph", required=True)
    analyze.add_argument("--log", required=True)
    analyze.add_argument("--truncation", type=float, default=0.001)
    analyze.add_argument("--top", type=int, default=10,
                         help="leaderboard size")
    analyze.add_argument("--user", default=None,
                         help="also report who influences this user")
    analyze.add_argument("-k", type=int, default=0,
                         help="if > 0, select k seeds and explain them")

    cover = commands.add_parser(
        "cover", help="smallest greedy seed set reaching a target spread"
    )
    cover.add_argument("--graph", required=True)
    cover.add_argument("--log", required=True)
    cover.add_argument("--truncation", type=float, default=0.001)
    group = cover.add_mutually_exclusive_group(required=True)
    group.add_argument("--target", type=float,
                       help="absolute sigma_cd target")
    group.add_argument(
        "--target-fraction", type=float,
        help="target as a fraction of the achievable ceiling (0..1]",
    )
    cover.add_argument("--max-seeds", type=int, default=None)

    budget = commands.add_parser(
        "budget", help="budgeted seed selection (CEF rule) under user costs"
    )
    budget.add_argument("--graph", required=True)
    budget.add_argument("--log", required=True)
    budget.add_argument("--truncation", type=float, default=0.001)
    budget.add_argument("--budget", type=float, required=True)
    budget.add_argument(
        "--cost-scale", type=float, default=0.0,
        help="cost(u) = 1 + activity(u) / SCALE; 0 means unit costs",
    )

    graphstats = commands.add_parser(
        "graphstats", help="structural statistics of the social graph"
    )
    graphstats.add_argument("--graph", required=True)

    learn = commands.add_parser(
        "learn", help="learn edge probabilities / weights from a log"
    )
    learn.add_argument("--graph", required=True)
    learn.add_argument("--log", required=True)
    learn.add_argument(
        "--model",
        choices=["em", "bernoulli", "jaccard", "partial-credits", "lt"],
        default="em",
        help="em/bernoulli/jaccard/partial-credits give IC probabilities; "
        "lt gives Linear Threshold weights (the --out TSV path)",
    )
    learn.add_argument("--out", default=None, help="output edge-value TSV")
    learn.add_argument(
        "--store", default=None, metavar="DIR",
        help="also learn and persist the full warm-start artifact bundle "
        "(credit index, sigma_cd evaluator, EM probabilities, LT weights, "
        "influenceability) into this artifact store — what `repro serve` "
        "answers queries from",
    )
    learn.add_argument("--probability-method",
                       choices=["UN", "TV", "WC", "EM", "PT"], default="EM",
                       help="IC assignment stored for --store bundles")
    learn.add_argument("--truncation", type=float, default=0.001)
    learn.add_argument("--seed", type=int, default=7)
    learn.add_argument("--credit-scheme",
                       choices=["timedecay", "uniform"], default="timedecay")
    learn.add_argument("--simulations", type=int, default=100,
                       help="MC simulations recorded for serve-side oracles")

    store = commands.add_parser(
        "store", help="inspect or garbage-collect an artifact store"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    store_ls = store_commands.add_parser(
        "ls", help="list the store's contexts and artifacts"
    )
    store_ls.add_argument("--store", required=True, metavar="DIR")
    store_gc = store_commands.add_parser(
        "gc", help="remove broken entries (and optionally expire by age)"
    )
    store_gc.add_argument("--store", required=True, metavar="DIR")
    store_gc.add_argument(
        "--older-than", type=float, default=None, metavar="DAYS",
        help="also expire healthy entries older than this many days",
    )
    store_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be removed, remove nothing")
    store_verify = store_commands.add_parser(
        "verify",
        help="audit every entry and record reference; non-zero exit on "
        "torn/corrupt/orphaned state",
    )
    store_verify.add_argument("--store", required=True, metavar="DIR")
    store_verify.add_argument(
        "--deep", action="store_true",
        help="also unpickle every payload (catches checksum-clean "
        "entries that no longer decode)",
    )

    ingest = commands.add_parser(
        "ingest", help="fold an action-log delta into a stored bundle"
    )
    ingest.add_argument("--store", required=True, metavar="DIR")
    ingest.add_argument("--delta", required=True, metavar="FILE",
                        help="action-log delta TSV (see repro.stream.delta)")
    ingest.add_argument(
        "--context", default=None, metavar="KEY",
        help="base context key or unique prefix "
        "(default: the store's only context)",
    )
    ingest.add_argument("--dataset-name", default=None,
                        help="dataset label recorded on the derived bundle")
    ingest.add_argument(
        "--verify", action="store_true",
        help="re-learn over the union log and assert every incrementally "
        "updated artifact is byte-identical to the rescan",
    )

    prefix = commands.add_parser(
        "prefix",
        help="precompute selection-prefix artifacts for a stored context",
    )
    prefix.add_argument("--store", required=True, metavar="DIR")
    prefix.add_argument(
        "--selector", action="append", required=True, metavar="NAME",
        help="prefixable selector to precompute (repeatable): "
        "cd, celf, celfpp, greedy",
    )
    prefix.add_argument("--k-max", type=int, required=True,
                        help="selections to record (serves any k <= k_max)")
    prefix.add_argument(
        "--context", default=None, metavar="KEY",
        help="context key or unique prefix (default: the store's only one)",
    )
    prefix.add_argument(
        "--params", default=None, metavar="JSON",
        help="selector parameters as a JSON object (applied to every "
        "--selector)",
    )
    prefix.add_argument("--trial", type=int, default=0,
                        help="trial index for derived-seed injection")

    serve = commands.add_parser(
        "serve", help="answer select/spread/predict queries from a store"
    )
    serve.add_argument("--store", required=True, metavar="DIR")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8734)
    serve.add_argument("--cache", type=int, default=4,
                       help="LRU capacity for loaded contexts")
    serve.add_argument(
        "--queue-depth", type=int, default=64,
        help="bounded depth of the spread/predict coalescing queue "
        "(full queue -> HTTP 503)",
    )
    serve.add_argument(
        "--ingest-timeout", type=float, default=600.0,
        help="seconds a wait=true /ingest blocks before returning the "
        "still-running job (0 or less = unbounded)",
    )
    serve.add_argument(
        "--access-log", action="store_true",
        help="log one line per request (client, route, status, latency, "
        "request id) on the repro.serve logger",
    )

    trace = commands.add_parser(
        "trace",
        help="run a JSON-configured experiment under tracing and export "
        "the span tree as JSON (repro.obs)",
    )
    trace.add_argument("--config", required=True,
                       help="experiment config JSON (as `repro run`)")
    trace.add_argument("--out", default=None,
                       help="write the trace export here (default: stdout)")
    trace.add_argument(
        "--store", default=None, metavar="DIR",
        help="override the config's artifact store root",
    )
    trace.add_argument(
        "--trace-id", default=None,
        help="explicit trace id (span ids derive from it, so a fixed id "
        "makes the whole export reproducible)",
    )
    trace.add_argument(
        "--executor", choices=["auto", "serial", "thread", "process"],
        default=None, help="override the config's executor",
    )

    soak = commands.add_parser(
        "soak",
        help="chaos-soak a serving store: live traffic + injected faults, "
        "then a deep integrity audit",
    )
    soak.add_argument(
        "--store", default=None, metavar="DIR",
        help="serving store to soak (default: build a temporary one)",
    )
    soak.add_argument("--duration", type=float, default=30.0,
                      help="seconds of sustained traffic")
    soak.add_argument("--workers", type=int, default=4,
                      help="concurrent client threads")
    soak.add_argument("--seed", type=int, default=11,
                      help="seed for the fault plan, traffic mix and jitter")
    soak.add_argument(
        "--plan", default=None, metavar="SPEC",
        help="fault plan (repro.faults.plan syntax; default: the "
        "standard chaos mix)",
    )
    soak.add_argument(
        "--report", default=None, metavar="FILE",
        help="write the markdown stress report here",
    )
    soak.add_argument(
        "--json", dest="json_out", default=None, metavar="FILE",
        help="write the raw report dict as JSON",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "stats": _cmd_stats,
        "split": _cmd_split,
        "maximize": _cmd_maximize,
        "list-selectors": _cmd_list_selectors,
        "run": _cmd_run,
        "predict": _cmd_predict,
        "analyze": _cmd_analyze,
        "cover": _cmd_cover,
        "budget": _cmd_budget,
        "graphstats": _cmd_graphstats,
        "learn": _cmd_learn,
        "store": _cmd_store,
        "ingest": _cmd_ingest,
        "prefix": _cmd_prefix,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
        "soak": _cmd_soak,
    }[args.command]
    return handler(args)


def _cmd_generate(args: argparse.Namespace) -> int:
    maker = _DATASET_MAKERS[args.dataset]
    dataset = maker(args.scale) if args.seed is None else maker(
        args.scale, seed=args.seed
    )
    save_graph(dataset.graph, args.graph)
    save_action_log(dataset.log, args.log)
    stats = dataset.stats()
    print(
        f"wrote {dataset.name}: {stats.num_nodes} nodes, "
        f"{stats.num_edges} edges -> {args.graph}; "
        f"{stats.num_propagations} propagations, "
        f"{stats.num_tuples} tuples -> {args.log}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    log = load_action_log(args.log)
    rows = [
        ["#nodes", graph.num_nodes],
        ["#edges", graph.num_edges],
        ["avg degree", f"{graph.average_degree():.1f}"],
        ["#propagations", log.num_actions],
        ["#tuples", log.num_tuples],
        ["#active users", log.num_users],
    ]
    print(format_table(["statistic", "value"], rows))
    return 0


def _cmd_split(args: argparse.Namespace) -> int:
    log = load_action_log(args.log)
    train, test = train_test_split(log, every=args.every)
    save_action_log(train, args.train)
    save_action_log(test, args.test)
    print(
        f"train: {train.num_actions} traces / {train.num_tuples} tuples; "
        f"test: {test.num_actions} traces / {test.num_tuples} tuples"
    )
    return 0


def _cmd_maximize(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    log = load_action_log(args.log)
    context = SelectionContext(
        graph,
        log,
        num_simulations=args.simulations,
        truncation=args.truncation,
    )
    selector = method_selector(
        args.method,
        ic_algorithm=args.ic_algorithm,
        lt_algorithm=args.lt_algorithm,
    )
    selection = selector.select(context, args.k)
    print(format_table(
        ["rank", "seed", "activity"],
        [[rank, seed, log.activity(seed)]
         for rank, seed in enumerate(selection.seeds, start=1)],
        title=f"{args.method} seeds (k={args.k})",
    ))
    return 0


def _cmd_list_selectors(args: argparse.Namespace) -> int:
    rows = []
    for spec in list_selectors(family=args.family):
        capabilities = spec.capabilities()
        # The needs_* flags name the stored artifacts a selector pulls
        # (`repro store ls` lists what a store holds), the rest are
        # behavioral: supports_budget / supports_time_log / stochastic.
        needs = [
            name.removeprefix("needs_")
            for name, on in capabilities.items()
            if on and name.startswith("needs_")
        ]
        flags = [
            name.removeprefix("supports_")
            for name, on in capabilities.items()
            if on and not name.startswith("needs_")
        ]
        rows.append(
            [
                spec.name,
                spec.family,
                ", ".join(needs) or "-",
                ", ".join(flags) or "-",
                spec.description,
            ]
        )
    print(format_table(
        ["selector", "family", "needs", "flags", "description"],
        rows,
        title=f"registered selectors ({len(rows)})",
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        config = ExperimentConfig.from_json_file(args.config)
        if args.executor is not None:
            config.executor = args.executor
        if args.max_workers is not None:
            config.max_workers = args.max_workers
    except (OSError, TypeError, ValueError) as error:
        print(f"bad experiment config: {error}", file=sys.stderr)
        return 2
    result = run_experiment(config)
    print(result.render())
    stage_summary = ", ".join(
        f"{name} {seconds:.2f}s" for name, seconds in result.timings.items()
    )
    print(f"\nstage timings: {stage_summary}")
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(result.to_json(indent=2))
        print(f"wrote full result -> {args.out}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    log = load_action_log(args.log)
    # Route through the unified runtime: the same stage pipeline (and
    # executor seam) that `repro run --config` drives, with the on-disk
    # dataset passed in directly.
    dataset = Dataset(name=args.graph, graph=graph, log=log)
    config = ExperimentConfig(
        task="prediction",
        methods=["IC", "LT", "CD"],
        num_simulations=args.simulations,
        max_test_traces=args.max_traces,
        executor=args.executor,
    )
    result = run_experiment(config, dataset=dataset)
    print(result.render())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.queries import (
        explain_spread,
        most_influential,
        top_influencers,
    )

    graph = load_graph(args.graph)
    log = load_action_log(args.log)
    # Analytics use the plain 1/d_in credits (no learned decay), so the
    # leaderboard stays interpretable as raw credit mass.
    context = SelectionContext(
        graph, log, truncation=args.truncation, credit_scheme="uniform"
    )
    index = context.credit_index()
    print(format_table(
        ["rank", "user", "total credit"],
        [[rank, user, f"{score:.2f}"]
         for rank, (user, score) in enumerate(
             most_influential(index, limit=args.top), start=1)],
        title=f"influencer leaderboard (top {args.top})",
    ))
    if args.user is not None:
        # Node ids round-trip through TSV as strings.
        ranked = top_influencers(index, args.user, limit=args.top)
        print()
        print(format_table(
            ["rank", "influencer", "kappa"],
            [[rank, user, f"{score:.3f}"]
             for rank, (user, score) in enumerate(ranked, start=1)],
            title=f"top influencers of user {args.user}",
        ))
    if args.k > 0:
        result = get_selector("cd").select(context, args.k)
        breakdown = explain_spread(index, result.seeds)
        print()
        print(format_table(
            ["seed", "solo influence"],
            [[seed, f"{breakdown.per_seed[seed]:.2f}"]
             for seed in result.seeds],
            title=(
                f"selected seeds (k={args.k}): sigma_cd = "
                f"{breakdown.total:.2f}, redundancy = "
                f"{breakdown.redundancy:.2f}"
            ),
        ))
    return 0


def _cmd_cover(args: argparse.Namespace) -> int:
    from repro.core.coverage import cd_cover
    from repro.core.maximize import cd_maximize
    from repro.core.scan import scan_action_log

    graph = load_graph(args.graph)
    log = load_action_log(args.log)
    index = scan_action_log(graph, log, truncation=args.truncation)
    if args.target is not None:
        target = args.target
    else:
        if not 0.0 < args.target_fraction <= 1.0:
            print("--target-fraction must be in (0, 1]", file=sys.stderr)
            return 2
        ceiling = cd_maximize(index, k=len(index.activity)).spread
        target = ceiling * args.target_fraction
    result = cd_cover(index, target=target, max_seeds=args.max_seeds)
    print(format_table(
        ["rank", "seed", "marginal gain"],
        [[rank, seed, f"{gain:.2f}"]
         for rank, (seed, gain) in enumerate(
             zip(result.seeds, result.gains), start=1)],
        title=(
            f"cover for target {target:.1f}: {len(result.seeds)} seeds, "
            f"sigma_cd = {result.spread:.1f}, "
            f"reached = {'yes' if result.reached else 'NO'}"
        ),
    ))
    return 0 if result.reached else 1


def _cmd_budget(args: argparse.Namespace) -> int:
    from repro.core.budget import cd_budget_maximize
    from repro.core.scan import scan_action_log

    graph = load_graph(args.graph)
    log = load_action_log(args.log)
    index = scan_action_log(graph, log, truncation=args.truncation)
    costs = None
    if args.cost_scale > 0.0:
        costs = {
            user: 1.0 + index.activity[user] / args.cost_scale
            for user in index.users()
        }
    result = cd_budget_maximize(index, budget=args.budget, costs=costs)
    print(format_table(
        ["rank", "seed", "cost", "marginal gain"],
        [[rank, seed, f"{cost:.2f}", f"{gain:.2f}"]
         for rank, (seed, cost, gain) in enumerate(
             zip(result.seeds, result.costs, result.gains), start=1)],
        title=(
            f"budget {args.budget:.1f}: spent {result.spent:.1f} on "
            f"{len(result.seeds)} seeds, sigma_cd = {result.spread:.1f} "
            f"(winning rule: {result.rule})"
        ),
    ))
    return 0


def _cmd_graphstats(args: argparse.Namespace) -> int:
    from repro.graphs.metrics import summarize_graph

    graph = load_graph(args.graph)
    summary = summarize_graph(graph)
    print(format_table(
        ["statistic", "value"], summary.as_rows(), title="graph structure"
    ))
    return 0


def _cmd_learn(args: argparse.Namespace) -> int:
    from repro.data.io import save_edge_values
    from repro.probabilities.em import learn_ic_probabilities_em
    from repro.probabilities.goyal import learn_static_probabilities
    from repro.probabilities.lt_weights import learn_lt_weights

    if args.out is None and args.store is None:
        print("learn: give --out (edge-value TSV) and/or --store (artifact "
              "store directory)", file=sys.stderr)
        return 2
    graph = load_graph(args.graph)
    log = load_action_log(args.log)
    if args.out is not None:
        if args.model == "em":
            values = learn_ic_probabilities_em(graph, log).probabilities
        elif args.model == "lt":
            values = learn_lt_weights(graph, log)
        else:
            values = learn_static_probabilities(graph, log, args.model)
        save_edge_values(values, args.out)
        print(
            f"learned {len(values)} edge values with model '{args.model}' "
            f"-> {args.out}"
        )
    if args.store is not None:
        from repro.store.store import ArtifactStore
        from repro.store.warm import warm_start

        context = SelectionContext(
            graph,
            log,
            probability_method=args.probability_method,
            num_simulations=args.simulations,
            truncation=args.truncation,
            seed=args.seed,
            credit_scheme=args.credit_scheme,
        )
        needed = [
            "credit_index",
            "cd_evaluator",
            f"ic_probabilities/{args.probability_method}",
            "lt_weights",
        ]
        if args.credit_scheme == "timedecay":
            needed.append("influence_params")
        events = warm_start(
            ArtifactStore(args.store),
            context,
            needed,
            dataset_name=args.log,
        )
        print(
            f"stored context {events['context_key'][:12]}... -> {args.store} "
            f"(hits: {len(events['hits'])}, learned: {len(events['misses'])}, "
            f"saved: {len(events['saved'])})"
        )
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store.store import ArtifactStore, StoreError

    try:
        store = ArtifactStore(args.store, create=False)
    except StoreError as error:
        print(str(error), file=sys.stderr)
        return 2
    from repro.store.warm import list_context_records

    if args.store_command == "ls":
        entries = store.entries()
        contexts = sorted(
            {entry.meta.get("context", "?") for entry in entries}
        )
        # Lineage: how deep each context sits in its derived_from chain
        # (base bundles are depth 0; a bundle derived by `repro ingest`
        # from a depth-n bundle is depth n+1).
        depth = {
            record["context_key"]: int(record.get("lineage_depth", 0))
            for record in list_context_records(store)
        }
        rows = [
            [
                entry.key[:12],
                entry.meta.get("context", "?")[:12],
                entry.meta.get("artifact", "?"),
                entry.meta.get("dataset", "-") or "-",
                (
                    str(depth[entry.meta["context"]])
                    if entry.meta.get("context") in depth
                    else "-"
                ),
                entry.meta.get("flags", "-") or "-",
                entry.payload_bytes,
            ]
            for entry in sorted(
                entries,
                key=lambda e: (e.meta.get("context", ""), e.meta.get("artifact", "")),
            )
        ]
        print(format_table(
            ["key", "context", "artifact", "dataset", "lineage", "flags",
             "bytes"],
            rows,
            title=(
                f"artifact store {store.root}: {len(entries)} entries, "
                f"{len(contexts)} context(s), {store.size_bytes()} payload bytes"
            ),
        ))
        return 0
    if args.store_command == "verify":
        from repro.store.verify import verify_store

        report = verify_store(store, deep=args.deep)
        summary = report.to_dict()
        print(
            f"verify {store.root}: {summary['entries']} entries, "
            f"{summary['records']} record(s), {summary['payload_bytes']} "
            f"payload bytes"
            + (" (deep)" if args.deep else "")
        )
        for problem in report.problems:
            print(f"  {problem.render()}")
        print(
            f"errors: {summary['errors']}  orphans: {summary['orphans']}  "
            f"notes: {summary['notes']}"
        )
        if report.clean:
            print("store is clean")
            return 0
        return 1
    # gc — contexts that live derived bundles still reference are never
    # age-expired: a derived bundle aliases (rather than copies) the
    # artifacts a delta cannot change, so collecting its ancestor would
    # tear it.
    from repro.stream.derive import referenced_context_keys

    protected = referenced_context_keys(store)
    older_than_s = (
        None if args.older_than is None else args.older_than * 86400.0
    )
    removed = store.gc(
        older_than_s=older_than_s,
        dry_run=args.dry_run,
        protect_contexts=protected,
    )
    verb = "would remove" if args.dry_run else "removed"
    print(f"gc {verb} {len(removed)} entr{'y' if len(removed) == 1 else 'ies'}")
    for key in removed:
        print(f"  {key}")
    if older_than_s is not None and protected:
        print(
            f"kept {len(protected)} context(s) referenced by derived "
            "bundles (lineage protection)"
        )
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.store.store import ArtifactStore, StoreError
    from repro.stream.delta import load_action_log_delta

    try:
        store = ArtifactStore(args.store, create=False)
    except StoreError as error:
        print(str(error), file=sys.stderr)
        return 2
    try:
        delta = load_action_log_delta(args.delta)
    except (OSError, ValueError) as error:
        print(f"ingest: cannot read delta {args.delta}: {error}",
              file=sys.stderr)
        return 2
    try:
        result = store.derive(
            delta,
            context=args.context,
            dataset_name=args.dataset_name,
            verify=args.verify,
        )
    except (StoreError, ValueError, AssertionError) as error:
        print(f"ingest: {error}", file=sys.stderr)
        return 2
    report = result.report
    print(
        f"ingested {report.delta_tuples} tuple(s) / "
        f"{report.closed_actions} closed action(s) "
        f"into context {result.base_key[:12]}..."
    )
    if result.derived_key == result.base_key:
        print(
            f"no action closed: bundle unchanged, "
            f"{report.pending_tuples} tuple(s) pending"
        )
        return 0
    print(
        f"derived context {result.derived_key[:12]}... "
        f"(lineage depth {result.record.get('lineage_depth', 0)})"
    )
    for label, names in (
        ("updated", report.updated),
        ("carried", report.carried),
        ("relearned", report.relearned),
    ):
        if names:
            print(f"  {label}: {', '.join(names)}")
    if report.pending_tuples:
        print(f"  pending: {report.pending_tuples} open tuple(s)")
    if report.verified:
        print("  verified: incremental updates byte-identical to a rescan")
    return 0


def _cmd_prefix(args: argparse.Namespace) -> int:
    import json

    from repro.store.prefix import PREFIXABLE_SELECTORS, precompute_prefix
    from repro.store.store import ArtifactStore, StoreError
    from repro.store.warm import load_context_record, load_serving_context

    params = {}
    if args.params is not None:
        try:
            params = json.loads(args.params)
        except ValueError as error:
            print(f"prefix: --params is not valid JSON: {error}",
                  file=sys.stderr)
            return 2
        if not isinstance(params, dict):
            print("prefix: --params must be a JSON object", file=sys.stderr)
            return 2
    if args.k_max < 1:
        print("prefix: --k-max must be >= 1", file=sys.stderr)
        return 2
    unknown = [s for s in args.selector if s not in PREFIXABLE_SELECTORS]
    if unknown:
        print(
            f"prefix: no prefix support for {', '.join(unknown)}; "
            f"prefixable: {', '.join(sorted(PREFIXABLE_SELECTORS))}",
            file=sys.stderr,
        )
        return 2
    try:
        store = ArtifactStore(args.store, create=False)
        record = load_context_record(store, args.context)
        context = load_serving_context(store, record)
    except StoreError as error:
        print(f"prefix: {error}", file=sys.stderr)
        return 2
    for name in args.selector:
        try:
            prefix = precompute_prefix(
                store, record, context, name, args.k_max,
                params=params, trial=args.trial,
            )
        except (StoreError, ValueError) as error:
            print(f"prefix: {name}: {error}", file=sys.stderr)
            return 2
        # Re-read so the next selector's save sees this one's record row.
        record = load_context_record(store, record["context_key"])
        resume = "resumable" if prefix.resumable else "checkpoint-only"
        print(
            f"prefix {name}: k_max={prefix.k_max} ({resume}) "
            f"-> {prefix.artifact_name()} "
            f"on context {record['context_key'][:12]}..."
        )
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    import json as json_module
    import shutil
    import tempfile
    from pathlib import Path

    from repro.faults.soak import (
        DEFAULT_PLAN,
        SoakConfig,
        prepare_store,
        render_report,
        run_soak,
    )
    from repro.store.store import StoreError

    config = SoakConfig(
        duration_s=args.duration,
        workers=args.workers,
        seed=args.seed,
        plan=args.plan if args.plan is not None else DEFAULT_PLAN,
    )
    root = args.store
    cleanup = root is None
    if cleanup:
        root = tempfile.mkdtemp(prefix="repro-soak-")
        print(f"soak: building a temporary store at {root} ...")
        prepare_store(root, scale="mini", k_max=config.k_max)
    try:
        print(
            f"soak: {args.duration:g}s of traffic from {args.workers} "
            f"workers under plan `{config.plan_text()}`"
        )
        report = run_soak(root, config)
    except StoreError as error:
        print(str(error), file=sys.stderr)
        return 2
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)
    print(
        f"soak: {report['requests']} requests in {report['elapsed_s']}s "
        f"({report['throughput_rps']} rps), statuses {report['statuses']}, "
        f"faults fired {report['faults']['total_fired']}"
    )
    print(
        f"soak: non-503 5xx {report['non_503_5xx']}, deterministic "
        f"{report['deterministic']}, store audit errors "
        f"{report['store_audit']['errors']} "
        f"(orphans {report['store_audit']['orphans']})"
    )
    for failure in report["failures"]:
        print(f"soak: FAILURE {failure}", file=sys.stderr)
    if args.report:
        Path(args.report).write_text(render_report(report))
        print(f"soak: wrote {args.report}")
    if args.json_out:
        Path(args.json_out).write_text(
            json_module.dumps(report, indent=2) + "\n"
        )
        print(f"soak: wrote {args.json_out}")
    return 0 if report["ok"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.store.service import serve
    from repro.store.store import StoreError

    ingest_timeout = (
        None if args.ingest_timeout <= 0 else args.ingest_timeout
    )
    try:
        serve(args.store, host=args.host, port=args.port,
              cache_size=args.cache, queue_depth=args.queue_depth,
              ingest_timeout=ingest_timeout, access_log=args.access_log)
    except StoreError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


def _render_span_tree(trace_export: dict) -> str:
    """An indented one-line-per-span view of a trace export."""
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for span in trace_export["spans"]:
        parent = span.get("parent_id")
        if parent:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    lines: list[str] = []

    def walk(span: dict, depth: int) -> None:
        flag = "  ERROR" if span.get("status") == "error" else ""
        lines.append(
            f"{'  ' * depth}{span['name']}  "
            f"{span['duration_s'] * 1000.0:.1f}ms{flag}"
        )
        for child in sorted(
            children.get(span["span_id"], []),
            key=lambda item: item["start_s"],
        ):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda item: item["start_s"]):
        walk(root, 0)
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from repro.obs.trace import Trace

    try:
        config = ExperimentConfig.from_json_file(args.config)
        if args.executor is not None:
            config.executor = args.executor
        if args.store is not None:
            config.store = args.store
    except (OSError, TypeError, ValueError) as error:
        print(f"bad experiment config: {error}", file=sys.stderr)
        return 2
    trace = Trace(trace_id=args.trace_id)
    with trace.activate():
        result = run_experiment(config)
    export = result.trace if result.trace is not None else trace.to_dict()
    payload = json_module.dumps(export, indent=2, sort_keys=True) + "\n"
    if args.out is not None:
        Path(args.out).write_text(payload, encoding="utf-8")
        print(_render_span_tree(export))
        print(
            f"trace {export['trace_id']}: {len(export['spans'])} spans "
            f"-> {args.out}"
        )
    else:
        sys.stdout.write(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
