"""Possible-world semantics for IC and LT (paper Eq. 1-4).

A propagation model plus an edge-weighted graph induce a distribution
over deterministic graphs ("possible worlds"); the expected spread of a
seed set is the expected number of nodes reachable from it across worlds:

    sigma_m(S) = sum_{X} Pr[X] * |reachable_X(S)|          (Eq. 1-2)
               = sum_u Pr[path(S, u) = 1]                  (Eq. 4)

For IC, a world keeps each edge ``(v, u)`` independently with probability
``p(v, u)`` (the "live-edge" construction).  For LT, Kempe et al.'s
equivalence keeps, for each node, at most one incoming edge, chosen with
probability equal to its weight.  Sampling worlds and counting
reachability gives an estimator distributionally identical to direct
simulation — a property the test suite exercises — and is the conceptual
bridge to the credit-distribution model, which treats recorded
propagation traces as "real available worlds".
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Mapping

from repro.graphs.digraph import SocialGraph
from repro.utils.rng import make_rng
from repro.utils.validation import require
from repro.utils.ordering import node_sort_key

__all__ = [
    "sample_world_ic",
    "sample_world_lt",
    "spread_in_world",
    "estimate_spread_via_worlds",
]

User = Hashable
Edge = tuple[User, User]


def sample_world_ic(
    graph: SocialGraph,
    probabilities: Mapping[Edge, float],
    rng: random.Random,
) -> SocialGraph:
    """Sample an IC possible world: keep each edge with its probability."""
    world = SocialGraph()
    for node in graph.nodes():
        world.add_node(node)
    for source, target in graph.edges():
        probability = probabilities.get((source, target), 0.0)
        if probability > 0.0 and rng.random() < probability:
            world.add_edge(source, target)
    return world


def sample_world_lt(
    graph: SocialGraph,
    weights: Mapping[Edge, float],
    rng: random.Random,
) -> SocialGraph:
    """Sample an LT possible world via Kempe et al.'s live-edge equivalence.

    Each node independently selects at most one incoming edge: edge
    ``(v, u)`` with probability ``b(v, u)``, or none with probability
    ``1 - sum_v b(v, u)``.
    """
    world = SocialGraph()
    for node in graph.nodes():
        world.add_node(node)
    for node in graph.nodes():
        draw = rng.random()
        cumulative = 0.0
        for source in sorted(graph.in_neighbors(node), key=node_sort_key):
            cumulative += weights.get((source, node), 0.0)
            if draw < cumulative:
                world.add_edge(source, node)
                break
    return world


def spread_in_world(world: SocialGraph, seeds: Iterable[User]) -> int:
    """``sigma_X(S)``: nodes reachable from ``seeds`` in a deterministic world."""
    return len(world.reachable_from(seeds))


def estimate_spread_via_worlds(
    graph: SocialGraph,
    edge_values: Mapping[Edge, float],
    seeds: Iterable[User],
    model: str = "ic",
    num_worlds: int = 1_000,
    seed: int | random.Random | None = None,
) -> float:
    """Estimate expected spread by sampling possible worlds (Eq. 1).

    ``model`` selects the world distribution: ``"ic"`` or ``"lt"``.
    """
    require(model in ("ic", "lt"), f"model must be 'ic' or 'lt', got {model!r}")
    require(num_worlds >= 1, f"num_worlds must be >= 1, got {num_worlds}")
    rng = make_rng(seed)
    sampler = sample_world_ic if model == "ic" else sample_world_lt
    seed_list = list(seeds)
    total = 0
    for _ in range(num_worlds):
        world = sampler(graph, edge_values, rng)
        total += spread_in_world(world, seed_list)
    return total / num_worlds

