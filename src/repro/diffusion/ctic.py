"""Continuous-time Independent Cascade (CTIC).

The discrete-step IC model throws away *when* activations happen — yet
the paper's whole Eq. 9 credit scheme is built on propagation *delays*
(``exp(-(t_u - t_v) / tau_{v,u})``), and real action logs are
continuous-time.  CTIC (Saito et al.'s continuous-time extension; also
the hidden process behind this library's synthetic dataset generators)
closes that gap:

* when ``v`` activates at time ``t_v``, it contacts each inactive
  out-neighbour ``u`` once, succeeding with probability ``p(v, u)``;
* a successful contact activates ``u`` after a random delay drawn from
  the edge's delay distribution — ``u`` activates at the *earliest*
  successful contact time across all its in-neighbours;
* the process may be truncated at a time horizon ``T``, yielding the
  time-bounded spread ``sigma(S, T)`` — the quantity behind "how much
  influence within a week?" questions that discrete IC cannot pose.

As ``T -> infinity`` the activated set has exactly the discrete IC
distribution (delays only reorder activations; they never change
reachability), which the tests exploit as an oracle.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from typing import Callable, Hashable, Iterable, Mapping

from repro.graphs.digraph import SocialGraph
from repro.utils.rng import make_rng
from repro.utils.validation import require

__all__ = [
    "exponential_delays",
    "lognormal_delays",
    "simulate_ctic",
    "estimate_spread_ctic",
]

User = Hashable
Edge = tuple[User, User]
# A delay sampler: (rng, edge) -> positive delay.
DelaySampler = Callable[[random.Random, Edge], float]


def exponential_delays(
    tau: Mapping[Edge, float] | float = 1.0, default: float = 1.0
) -> DelaySampler:
    """Exponential delay sampler with per-edge (or global) mean ``tau``.

    The memoryless benchmark; pairs naturally with Eq. 9, whose learned
    ``tau_{v,u}`` is exactly this distribution's mean.
    """
    require(default > 0.0, f"default must be positive, got {default}")
    if isinstance(tau, (int, float)):
        require(tau > 0.0, f"tau must be positive, got {tau}")
        fixed = float(tau)

        def sample_fixed(rng: random.Random, edge: Edge) -> float:
            return rng.expovariate(1.0 / fixed)

        return sample_fixed
    means = dict(tau)

    def sample(rng: random.Random, edge: Edge) -> float:
        return rng.expovariate(1.0 / means.get(edge, default))

    return sample


def lognormal_delays(
    median: float = 1.0, sigma: float = 1.0
) -> DelaySampler:
    """Lognormal delay sampler (heavy-tailed human response times).

    ``median`` is the distribution's median delay; ``sigma`` the shape
    (log-space standard deviation).  The dataset generators use
    ``sigma = 2`` to reproduce bursty reaction times (DESIGN.md §2).
    """
    require(median > 0.0, f"median must be positive, got {median}")
    require(sigma > 0.0, f"sigma must be positive, got {sigma}")
    mu = math.log(median)

    def sample(rng: random.Random, edge: Edge) -> float:
        return rng.lognormvariate(mu, sigma)

    return sample


def simulate_ctic(
    graph: SocialGraph,
    probabilities: Mapping[Edge, float],
    seeds: Iterable[User],
    rng: random.Random,
    delay_sampler: DelaySampler | None = None,
    horizon: float = math.inf,
) -> dict[User, float]:
    """One CTIC cascade; returns ``{user: activation_time}``.

    Seeds activate at time 0.  Contact successes are decided once per
    edge (each active node gets one shot, as in discrete IC); successful
    contacts deliver after a sampled delay; activations after ``horizon``
    are discarded.  Event-driven via a min-heap on delivery time, so a
    run costs O(touched edges * log events).
    """
    require(horizon >= 0.0, f"horizon must be >= 0, got {horizon}")
    sampler = exponential_delays() if delay_sampler is None else delay_sampler
    activation: dict[User, float] = {
        seed: 0.0 for seed in seeds if seed in graph
    }
    counter = itertools.count()
    heap: list[tuple[float, int, User]] = []

    def contact_neighbors(node: User, at_time: float) -> None:
        for target in graph.out_neighbors(node):
            if target in activation:
                continue
            probability = probabilities.get((node, target), 0.0)
            if probability <= 0.0 or rng.random() >= probability:
                continue
            delivery = at_time + sampler(rng, (node, target))
            if delivery <= horizon:
                heapq.heappush(heap, (delivery, next(counter), target))

    for seed in list(activation):
        contact_neighbors(seed, 0.0)
    while heap:
        time, _, node = heapq.heappop(heap)
        if node in activation:
            continue  # an earlier contact already activated it
        activation[node] = time
        contact_neighbors(node, time)
    return activation


def estimate_spread_ctic(
    graph: SocialGraph,
    probabilities: Mapping[Edge, float],
    seeds: Iterable[User],
    horizon: float = math.inf,
    delay_sampler: DelaySampler | None = None,
    num_simulations: int = 1000,
    seed: int | random.Random | None = None,
) -> float:
    """Monte Carlo estimate of the time-bounded spread ``sigma(S, T)``.

    With ``horizon = inf`` this estimates the same quantity as
    :func:`repro.diffusion.ic.estimate_spread_ic`; finite horizons give
    the deadline-constrained spread.
    """
    require(
        num_simulations >= 1,
        f"num_simulations must be >= 1, got {num_simulations}",
    )
    rng = make_rng(seed)
    seed_list = list(seeds)
    total = 0
    for _ in range(num_simulations):
        total += len(
            simulate_ctic(
                graph,
                probabilities,
                seed_list,
                rng,
                delay_sampler=delay_sampler,
                horizon=horizon,
            )
        )
    return total / num_simulations
