"""The Linear Threshold (LT) propagation model.

Each node ``u`` is influenced by each in-neighbour ``v`` with weight
``b(v, u)``, the incoming weights summing to at most 1.  Every node draws
a threshold ``theta_u`` uniformly from [0, 1]; an inactive node activates
as soon as the total weight of its active in-neighbours reaches its
threshold.  The expected spread ``sigma_LT(S)`` averages over the random
thresholds.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Hashable, Iterable, Mapping

from repro.graphs.digraph import SocialGraph
from repro.kernels import resolve_backend
from repro.utils.rng import integer_seed, make_rng
from repro.utils.validation import require

__all__ = ["simulate_lt", "estimate_spread_lt", "validate_lt_weights"]

User = Hashable
Edge = tuple[User, User]

_SUM_TOLERANCE = 1e-9


def validate_lt_weights(
    graph: SocialGraph, weights: Mapping[Edge, float]
) -> None:
    """Raise ``ValueError`` if any node's incoming weights exceed 1.

    The LT model is only well defined when
    ``sum_v b(v, u) <= 1`` for every node ``u``.
    """
    incoming: dict[User, float] = {}
    for (source, target), weight in weights.items():
        if weight < 0.0:
            raise ValueError(
                f"negative LT weight {weight!r} on edge ({source!r}, {target!r})"
            )
        incoming[target] = incoming.get(target, 0.0) + weight
    for node, total in incoming.items():
        if total > 1.0 + _SUM_TOLERANCE:
            raise ValueError(
                f"incoming LT weights of node {node!r} sum to {total}, "
                "which exceeds 1"
            )


def simulate_lt(
    graph: SocialGraph,
    weights: Mapping[Edge, float],
    seeds: Iterable[User],
    rng: random.Random,
) -> set[User]:
    """Run one LT diffusion from ``seeds`` with fresh random thresholds.

    Thresholds are drawn lazily — only for nodes that receive influence —
    which keeps a single simulation O(touched edges) instead of O(V).
    """
    active = {seed for seed in seeds if seed in graph}
    thresholds: dict[User, float] = {}
    pressure: dict[User, float] = {}
    frontier = deque(active)
    while frontier:
        node = frontier.popleft()
        for target in graph.out_neighbors(node):
            if target in active:
                continue
            weight = weights.get((node, target), 0.0)
            if weight <= 0.0:
                continue
            if target not in thresholds:
                thresholds[target] = rng.random()
            new_pressure = pressure.get(target, 0.0) + weight
            pressure[target] = new_pressure
            if new_pressure >= thresholds[target]:
                active.add(target)
                frontier.append(target)
    return active


def estimate_spread_lt(
    graph: SocialGraph,
    weights: Mapping[Edge, float],
    seeds: Iterable[User],
    num_simulations: int = 10_000,
    seed: int | random.Random | None = None,
    backend: str | None = None,
) -> float:
    """Monte Carlo estimate of ``sigma_LT(seeds)``.

    ``backend`` selects the estimator exactly as in
    :func:`repro.diffusion.ic.estimate_spread_ic`: ``"python"`` is the
    reference loop below, ``"numpy"`` dispatches to the batched kernel
    in :mod:`repro.kernels.mc_numpy`.
    """
    require(num_simulations >= 1, f"num_simulations must be >= 1, got {num_simulations}")
    if resolve_backend(backend) == "numpy":
        from repro.kernels.mc_numpy import estimate_spread_lt_numpy

        return estimate_spread_lt_numpy(
            graph, weights, seeds, num_simulations, integer_seed(seed)
        )
    rng = make_rng(seed)
    seed_list = list(seeds)
    total = 0
    for _ in range(num_simulations):
        total += len(simulate_lt(graph, weights, seed_list, rng))
    return total / num_simulations
