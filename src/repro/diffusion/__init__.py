"""Classical propagation models: Independent Cascade and Linear Threshold.

These are the probabilistic models of Kempe, Kleinberg and Tardos (KDD
2003) that the paper's standard approach (Figure 1, light-blue path)
relies on.  Estimating their spread is #P-hard, so in practice one runs
Monte Carlo simulation — exactly what makes the standard approach slow
and what the credit-distribution model avoids.

Both simulators operate on a :class:`~repro.graphs.digraph.SocialGraph`
plus a ``dict[(source, target) -> value]`` of edge probabilities (IC) or
edge weights (LT).  :mod:`repro.diffusion.worlds` implements the
possible-world semantics of Eq. (1)-(4), used both pedagogically and as
a distributional test oracle for the simulators.
"""

from repro.diffusion.ctic import (
    estimate_spread_ctic,
    exponential_delays,
    lognormal_delays,
    simulate_ctic,
)
from repro.diffusion.ic import estimate_spread_ic, simulate_ic
from repro.diffusion.lt import estimate_spread_lt, simulate_lt, validate_lt_weights
from repro.diffusion.worlds import (
    estimate_spread_via_worlds,
    sample_world_ic,
    sample_world_lt,
    spread_in_world,
)

__all__ = [
    "simulate_ic",
    "estimate_spread_ic",
    "simulate_lt",
    "estimate_spread_lt",
    "validate_lt_weights",
    "sample_world_ic",
    "sample_world_lt",
    "spread_in_world",
    "estimate_spread_via_worlds",
    "simulate_ctic",
    "estimate_spread_ctic",
    "exponential_delays",
    "lognormal_delays",
]
