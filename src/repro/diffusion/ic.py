"""The Independent Cascade (IC) propagation model.

In the IC model time unfolds in discrete steps.  When a node ``v``
becomes active at step ``t``, it gets exactly one chance to activate each
currently inactive out-neighbour ``u``, succeeding with the edge
probability ``p(v, u)``; successes activate at step ``t + 1``.  The
process stops when no new node activates.  The expected spread
``sigma_IC(S)`` is the expected number of active nodes at the end.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Hashable, Iterable, Mapping

from repro.graphs.digraph import SocialGraph
from repro.kernels import resolve_backend
from repro.utils.rng import integer_seed, make_rng
from repro.utils.validation import require

__all__ = ["simulate_ic", "estimate_spread_ic"]

User = Hashable
Edge = tuple[User, User]


def simulate_ic(
    graph: SocialGraph,
    probabilities: Mapping[Edge, float],
    seeds: Iterable[User],
    rng: random.Random,
) -> set[User]:
    """Run one IC cascade from ``seeds``; return the final active set.

    Edges missing from ``probabilities`` are treated as probability 0
    (never propagate), so sparse probability maps — e.g. EM output that
    only covers edges seen in training — work directly.
    """
    active = {seed for seed in seeds if seed in graph}
    frontier = deque(active)
    while frontier:
        node = frontier.popleft()
        for target in graph.out_neighbors(node):
            if target in active:
                continue
            probability = probabilities.get((node, target), 0.0)
            if probability > 0.0 and rng.random() < probability:
                active.add(target)
                frontier.append(target)
    return active


def estimate_spread_ic(
    graph: SocialGraph,
    probabilities: Mapping[Edge, float],
    seeds: Iterable[User],
    num_simulations: int = 10_000,
    seed: int | random.Random | None = None,
    backend: str | None = None,
) -> float:
    """Monte Carlo estimate of ``sigma_IC(seeds)``.

    The paper's standard approach uses 10,000 simulations (the default
    here); the experiment harness lowers this to keep pure-Python
    runtimes tractable, which only adds symmetric noise to every method.

    ``backend`` selects the estimator: ``"python"`` (this module's
    per-edge simulation loop — the reference semantics), ``"numpy"``
    (the batched kernel in :mod:`repro.kernels.mc_numpy`, statistically
    equivalent but ~two orders of magnitude faster), or ``None``/
    ``"auto"`` to defer to the ``REPRO_BACKEND`` environment variable.
    """
    require(num_simulations >= 1, f"num_simulations must be >= 1, got {num_simulations}")
    if resolve_backend(backend) == "numpy":
        from repro.kernels.mc_numpy import estimate_spread_ic_numpy

        return estimate_spread_ic_numpy(
            graph, probabilities, seeds, num_simulations, integer_seed(seed)
        )
    rng = make_rng(seed)
    seed_list = list(seeds)
    total = 0
    for _ in range(num_simulations):
        total += len(simulate_ic(graph, probabilities, seed_list, rng))
    return total / num_simulations
