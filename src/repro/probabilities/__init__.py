"""Edge influence probabilities: ad-hoc assignments and data-driven learning.

Section 3 of the paper compares five ways of obtaining the edge
probabilities that the IC model needs:

* **UN** — every edge gets a constant (0.01);
* **TV** — trivalency: uniform choice from {0.1, 0.01, 0.001};
* **WC** — weighted cascade: ``1 / in_degree(u)``;
* **EM** — learned from real propagation traces by the EM method of
  Saito et al. (KES 2008), adapted to continuous-time logs;
* **PT** — EM probabilities perturbed by ±20% noise (robustness probe).

plus the LT weight learning of Section 6 (``p(v,u) = A_{v2u} / N``).
"""

from repro.probabilities.em import learn_ic_probabilities_em
from repro.probabilities.goyal import (
    bernoulli_probabilities,
    jaccard_probabilities,
    learn_static_probabilities,
    partial_credit_probabilities,
)
from repro.probabilities.lt_weights import learn_lt_weights
from repro.probabilities.perturb import perturb_probabilities
from repro.probabilities.static import (
    trivalency_probabilities,
    uniform_probabilities,
    weighted_cascade_probabilities,
)

__all__ = [
    "uniform_probabilities",
    "trivalency_probabilities",
    "weighted_cascade_probabilities",
    "learn_ic_probabilities_em",
    "learn_lt_weights",
    "perturb_probabilities",
    "bernoulli_probabilities",
    "jaccard_probabilities",
    "partial_credit_probabilities",
    "learn_static_probabilities",
]
