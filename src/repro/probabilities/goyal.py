"""Static influence-probability models of Goyal et al. (WSDM 2010).

The paper's reference [7] — by the same authors — learns edge influence
probabilities from the action log with simple frequentist estimators,
the "static models" family.  They are the data-based alternative to the
EM method of Saito et al. and complete the library's coverage of
probability-learning techniques:

* **Bernoulli** — maximum-likelihood success rate of the contact trials:

      p(v, u) = A_{v2u} / A_v

  where ``A_{v2u}`` counts actions that propagated from ``v`` to ``u``
  and ``A_v`` counts actions ``v`` performed (each is a trial in which
  ``v`` could have influenced ``u``).

* **Jaccard** — normalises by either user acting, discounting pairs that
  are merely both very active:

      p(v, u) = A_{v2u} / A_{v|u}

  with ``A_{v|u}`` the number of actions performed by ``v`` or ``u``.

* **Partial credits (PC)** — when ``u`` had multiple potential
  influencers for an action, each gets only a ``1 / d_in(u, a)`` share
  of the observation instead of full credit (the same intuition the CD
  model builds on):

      p(v, u) = (sum_a credit_{v,u}(a)) / A_v

All three produce sparse ``{(v, u): probability}`` maps over edges with
at least one observed propagation, directly usable by the IC oracle.
"""

from __future__ import annotations

from typing import Hashable

from repro.data.actionlog import ActionLog
from repro.data.propagation import PropagationGraph
from repro.graphs.digraph import SocialGraph

__all__ = [
    "bernoulli_probabilities",
    "jaccard_probabilities",
    "partial_credit_probabilities",
    "learn_static_probabilities",
]

User = Hashable
Edge = tuple[User, User]


def _propagation_counts(
    graph: SocialGraph, log: ActionLog, partial: bool
) -> dict[Edge, float]:
    """``A_{v2u}`` per edge — fractional ``1/d_in`` shares when ``partial``."""
    counts: dict[Edge, float] = {}
    for action in log.actions():
        propagation = PropagationGraph.build(graph, log, action)
        for user in propagation.nodes():
            parents = propagation.parents(user)
            if not parents:
                continue
            share = 1.0 / len(parents) if partial else 1.0
            for parent in parents:
                edge = (parent, user)
                counts[edge] = counts.get(edge, 0.0) + share
    return counts


def _joint_activity(log: ActionLog, v: User, u: User) -> int:
    """``A_{v|u}``: number of actions performed by ``v`` or ``u``.

    By inclusion–exclusion: ``A_v + A_u - A_{v&u}``, with the
    intersection counted over ``v``'s (typically shorter) action list.
    """
    both = sum(1 for action in log.actions_of(v) if log.performed(u, action))
    return log.activity(v) + log.activity(u) - both


def bernoulli_probabilities(
    graph: SocialGraph, log: ActionLog
) -> dict[Edge, float]:
    """Bernoulli static model: ``p(v, u) = A_{v2u} / A_v``."""
    counts = _propagation_counts(graph, log, partial=False)
    probabilities: dict[Edge, float] = {}
    for (source, target), count in counts.items():
        trials = log.activity(source)
        if trials > 0:
            probabilities[(source, target)] = min(1.0, count / trials)
    return probabilities


def jaccard_probabilities(
    graph: SocialGraph, log: ActionLog
) -> dict[Edge, float]:
    """Jaccard static model: ``p(v, u) = A_{v2u} / A_{v|u}``."""
    counts = _propagation_counts(graph, log, partial=False)
    probabilities: dict[Edge, float] = {}
    for (source, target), count in counts.items():
        union = _joint_activity(log, source, target)
        if union > 0:
            probabilities[(source, target)] = min(1.0, count / union)
    return probabilities


def partial_credit_probabilities(
    graph: SocialGraph, log: ActionLog
) -> dict[Edge, float]:
    """Partial-credits Bernoulli: shared observations, ``A_v`` trials."""
    counts = _propagation_counts(graph, log, partial=True)
    probabilities: dict[Edge, float] = {}
    for (source, target), count in counts.items():
        trials = log.activity(source)
        if trials > 0:
            probabilities[(source, target)] = min(1.0, count / trials)
    return probabilities


_METHODS = {
    "bernoulli": bernoulli_probabilities,
    "jaccard": jaccard_probabilities,
    "partial-credits": partial_credit_probabilities,
}


def learn_static_probabilities(
    graph: SocialGraph, log: ActionLog, method: str = "bernoulli"
) -> dict[Edge, float]:
    """Dispatch to one of the static models by name.

    ``method`` is ``"bernoulli"``, ``"jaccard"`` or ``"partial-credits"``.
    """
    try:
        learner = _METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown static model {method!r}; "
            f"expected one of {sorted(_METHODS)}"
        ) from None
    return learner(graph, log)
