"""LT edge-weight learning from propagation traces (paper Section 6).

For the LT comparison the paper "takes ideas from [10] and [7]" and sets

    p(v, u) = A_{v2u} / N

where ``A_{v2u}`` is the number of actions that propagated from ``v`` to
``u`` in the training set (``v`` a potential influencer of ``u``, i.e.
``v in N_in(u, a)``) and ``N`` normalises so that the incoming weights of
each node sum to 1 — the LT model's admissibility condition.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.data.actionlog import ActionLog
from repro.data.propagation import PropagationGraph
from repro.graphs.digraph import SocialGraph

__all__ = [
    "learn_lt_weights",
    "count_propagations",
    "lt_weights_from_counts",
]

User = Hashable
Edge = tuple[User, User]


def count_propagations(
    graph: SocialGraph,
    log: ActionLog,
    propagations: Callable[[Hashable], PropagationGraph] | None = None,
    counts: dict[Edge, int] | None = None,
) -> dict[Edge, int]:
    """``A_{v2u}``: per-edge count of actions that propagated v -> u.

    ``propagations`` reuses memoized DAGs (e.g.
    :meth:`~repro.api.context.SelectionContext.propagation`); ``counts``
    folds into an existing tally in place — the sufficient-statistics
    seam :mod:`repro.stream` updates LT weights through.  Edge insertion
    order is first-propagation order, so folding a delta log into a base
    log's counts reproduces the union log's count dict byte for byte.
    """
    if counts is None:
        counts = {}
    if propagations is None:
        propagations = lambda action: PropagationGraph.build(graph, log, action)  # noqa: E731
    for action in log.actions():
        propagation = propagations(action)
        for user in propagation.nodes():
            for parent in propagation.parents(user):
                edge = (parent, user)
                counts[edge] = counts.get(edge, 0) + 1
    return counts


def lt_weights_from_counts(
    counts: dict[Edge, int], log: ActionLog
) -> dict[Edge, float]:
    """LT weights from pre-tallied propagation counts and ``log``'s activity.

    ``log`` supplies the ``A_u`` normaliser, so it must be the same log
    (or union of logs) the counts were tallied over.
    """
    incoming_totals: dict[User, int] = {}
    for (_, target), count in counts.items():
        incoming_totals[target] = incoming_totals.get(target, 0) + count
    weights: dict[Edge, float] = {}
    for (source, target), count in counts.items():
        normaliser = max(log.activity(target), incoming_totals[target])
        weights[(source, target)] = count / normaliser
    return weights


def learn_lt_weights(
    graph: SocialGraph,
    log: ActionLog,
    propagations: Callable[[Hashable], PropagationGraph] | None = None,
) -> dict[Edge, float]:
    """Learn LT weights ``p(v, u) = A_{v2u} / N`` from the training log.

    Following the papers the authors combine ("we take ideas from [10]
    and [7]"): the base weight is Goyal et al.'s influence measure
    ``A_{v2u} / A_u`` — the fraction of ``u``'s actions that propagated
    from ``v`` — and ``N`` is the per-node normaliser
    ``max(A_u, sum_v A_{v2u})``, which equals ``A_u`` except where the
    raw weights would break the LT admissibility condition (incoming
    weights summing past 1), in which case it rescales them onto the
    simplex.
    """
    counts = count_propagations(graph, log, propagations=propagations)
    return lt_weights_from_counts(counts, log)
