"""Ad-hoc edge probability assignments: UN, TV and WC.

These are the probability "models" most pre-2010 influence-maximization
literature assumed (see paper Section 1 and [10, 3, 2]).  They use no
propagation data at all — which is exactly the practice the paper's
Section 3 shows to be unreliable.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.graphs.digraph import SocialGraph
from repro.utils.rng import make_rng
from repro.utils.validation import require, require_probability

__all__ = [
    "uniform_probabilities",
    "trivalency_probabilities",
    "weighted_cascade_probabilities",
]

Edge = tuple[Hashable, Hashable]


def uniform_probabilities(
    graph: SocialGraph, probability: float = 0.01
) -> dict[Edge, float]:
    """UN: assign the same ``probability`` to every edge (default 0.01)."""
    require_probability(probability, "probability")
    return {edge: probability for edge in graph.edges()}


def trivalency_probabilities(
    graph: SocialGraph,
    seed: int | random.Random | None = None,
    values: tuple[float, ...] = (0.1, 0.01, 0.001),
) -> dict[Edge, float]:
    """TV: pick each edge's probability uniformly from ``values``.

    The default triple {0.1, 0.01, 0.001} is the trivalency model of
    Chen et al. (KDD 2010).
    """
    require(bool(values), "values must be non-empty")
    for value in values:
        require_probability(value, "trivalency value")
    rng = make_rng(seed)
    return {edge: rng.choice(values) for edge in graph.edges()}


def weighted_cascade_probabilities(graph: SocialGraph) -> dict[Edge, float]:
    """WC: probability of edge ``(v, u)`` is ``1 / in_degree(u)``.

    The weighted-cascade model of Kempe et al. (KDD 2003): every node is
    influenced in total "one unit", split evenly over its in-neighbours.
    """
    probabilities: dict[Edge, float] = {}
    for source, target in graph.edges():
        probabilities[(source, target)] = 1.0 / graph.in_degree(target)
    return probabilities
