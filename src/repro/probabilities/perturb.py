"""PT: noise injection on learned probabilities (paper Section 3).

To probe the greedy algorithm's robustness against errors in the
probability-learning phase, the paper perturbs each EM-learned
probability by a percentage drawn uniformly from [-20%, +20%], rounding
to 0 or 1 when the result leaves [0, 1].
"""

from __future__ import annotations

import random
from typing import Hashable, Mapping

from repro.utils.rng import make_rng
from repro.utils.validation import require

__all__ = ["perturb_probabilities"]

Edge = tuple[Hashable, Hashable]


def perturb_probabilities(
    probabilities: Mapping[Edge, float],
    noise: float = 0.2,
    seed: int | random.Random | None = None,
) -> dict[Edge, float]:
    """Return a copy of ``probabilities`` with ±``noise`` relative jitter.

    Each value ``p`` becomes ``p * (1 + r)`` with ``r ~ U[-noise, noise]``,
    clipped to [0, 1].
    """
    require(noise >= 0, f"noise must be non-negative, got {noise}")
    rng = make_rng(seed)
    perturbed: dict[Edge, float] = {}
    for edge, probability in probabilities.items():
        factor = 1.0 + rng.uniform(-noise, noise)
        perturbed[edge] = min(1.0, max(0.0, probability * factor))
    return perturbed
