"""Spread-prediction experiments (Figures 2, 3 and 4).

Protocol (paper Section 3, Experiment 2, reused in Section 6):

1. split the action log 80/20 into training and test traces;
2. fit every model on the training side only;
3. for each test trace, take its *initiators* as the seed set and the
   trace's size as the ground-truth "actual spread";
4. ask each model to predict the spread of that seed set and score the
   predictions (binned RMSE, error capture curve).

The predictors:

* **UN / TV / WC / EM / PT** — IC model with the respective edge
  probabilities, spread estimated by Monte Carlo (Figure 2);
* **IC** — IC with EM-learned probabilities (Figure 3);
* **LT** — LT with weights learned per Section 6;
* **CD** — ``sigma_cd`` over the training log with Eq. 9 credits.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Mapping

from repro.core.credit import TimeDecayCredit
from repro.core.params import learn_influenceability
from repro.core.spread import CDSpreadEvaluator
from repro.data.actionlog import ActionLog
from repro.data.propagation import PropagationGraph
from repro.data.split import train_test_split
from repro.diffusion.ic import estimate_spread_ic
from repro.diffusion.lt import estimate_spread_lt
from repro.graphs.digraph import SocialGraph
from repro.probabilities.em import learn_ic_probabilities_em
from repro.probabilities.lt_weights import learn_lt_weights
from repro.probabilities.perturb import perturb_probabilities
from repro.probabilities.static import (
    trivalency_probabilities,
    uniform_probabilities,
    weighted_cascade_probabilities,
)

__all__ = [
    "PredictionExperiment",
    "spread_prediction_experiment",
    "select_test_traces",
    "build_ic_predictors",
    "build_lt_predictor",
    "build_cd_predictor",
]

User = Hashable
Predictor = Callable[[list[User]], float]


@dataclass
class PredictionExperiment:
    """Results of a spread-prediction run.

    ``records[method]`` is a list of ``(actual, predicted)`` pairs, one
    per test propagation.
    """

    methods: list[str] = field(default_factory=list)
    records: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    num_test_traces: int = 0

    def pairs(self, method: str) -> list[tuple[float, float]]:
        """The ``(actual, predicted)`` pairs of one method."""
        return self.records[method]


def build_ic_predictors(
    graph: SocialGraph,
    train_log: ActionLog,
    methods: Iterable[str] = ("UN", "TV", "WC", "EM", "PT"),
    num_simulations: int = 200,
    seed: int = 7,
) -> dict[str, Predictor]:
    """IC-model predictors for the requested probability-assignment methods.

    ``EM``/``PT`` learn from ``train_log``; the others ignore it — which
    is the point of the Section 3 comparison.
    """
    wanted = list(methods)
    probability_maps: dict[str, Mapping[tuple[User, User], float]] = {}
    for method in wanted:
        if method == "UN":
            probability_maps[method] = uniform_probabilities(graph)
        elif method == "TV":
            probability_maps[method] = trivalency_probabilities(graph, seed=seed)
        elif method == "WC":
            probability_maps[method] = weighted_cascade_probabilities(graph)
        elif method in ("EM", "PT"):
            if "EM" not in probability_maps:
                em_result = learn_ic_probabilities_em(graph, train_log)
                probability_maps["EM"] = em_result.probabilities
            if method == "PT":
                probability_maps["PT"] = perturb_probabilities(
                    probability_maps["EM"], noise=0.2, seed=seed
                )
        else:
            raise ValueError(f"unknown IC probability method {method!r}")

    def make(probabilities: Mapping[tuple[User, User], float]) -> Predictor:
        def predict(seeds: list[User]) -> float:
            return estimate_spread_ic(
                graph,
                probabilities,
                seeds,
                num_simulations=num_simulations,
                seed=seed,
            )

        return predict

    return {method: make(probability_maps[method]) for method in wanted}


def build_lt_predictor(
    graph: SocialGraph,
    train_log: ActionLog,
    num_simulations: int = 200,
    seed: int = 7,
) -> Predictor:
    """LT-model predictor with weights learned from the training log."""
    weights = learn_lt_weights(graph, train_log)

    def predict(seeds: list[User]) -> float:
        return estimate_spread_lt(
            graph, weights, seeds, num_simulations=num_simulations, seed=seed
        )

    return predict


def build_cd_predictor(graph: SocialGraph, train_log: ActionLog) -> Predictor:
    """CD-model predictor: ``sigma_cd`` with Eq. 9 credits on training data."""
    params = learn_influenceability(graph, train_log)
    evaluator = CDSpreadEvaluator(
        graph, train_log, credit=TimeDecayCredit(params)
    )
    return evaluator.spread


def select_test_traces(
    test_log: ActionLog, max_test_traces: int | None = None
) -> list[Hashable]:
    """The evaluated test actions, largest-first, optionally capped.

    The cap samples the size ranking *stratified* (every n-th trace of
    the ranking), so the evaluated subset keeps the test set's
    propagation-size distribution — the paper evaluates all test
    traces.  Shared by this module's legacy driver and the
    :mod:`repro.runtime` prediction pipeline, so both evaluate exactly
    the same traces.
    """
    test_actions = sorted(
        test_log.actions(),
        key=lambda action: -test_log.trace_size(action),
    )
    if max_test_traces is not None and max_test_traces < len(test_actions):
        stride = len(test_actions) / max_test_traces
        test_actions = [
            test_actions[int(index * stride)] for index in range(max_test_traces)
        ]
    return test_actions


def _spread_prediction_protocol(
    graph: SocialGraph,
    log: ActionLog,
    predictors: Mapping[str, Predictor] | None = None,
    max_test_traces: int | None = None,
) -> PredictionExperiment:
    """The protocol body (no deprecation warning — internal callers)."""
    train_log, test_log = train_test_split(log)
    if predictors is None:
        ic = build_ic_predictors(graph, train_log, methods=("EM",))
        predictors = {
            "IC": ic["EM"],
            "LT": build_lt_predictor(graph, train_log),
            "CD": build_cd_predictor(graph, train_log),
        }
    experiment = PredictionExperiment(methods=list(predictors))
    for method in predictors:
        experiment.records[method] = []
    test_actions = select_test_traces(test_log, max_test_traces)
    for action in test_actions:
        propagation = PropagationGraph.build(graph, test_log, action)
        seeds = propagation.initiators()
        actual = float(propagation.num_nodes)
        for method, predictor in predictors.items():
            predicted = predictor(list(seeds))
            experiment.records[method].append((actual, predicted))
    experiment.num_test_traces = len(test_actions)
    return experiment


def spread_prediction_experiment(
    graph: SocialGraph,
    log: ActionLog,
    predictors: Mapping[str, Predictor] | None = None,
    max_test_traces: int | None = None,
) -> PredictionExperiment:
    """Run the prediction protocol end to end.

    .. deprecated:: 1.5
        This bespoke driver predates the unified experiment runtime.
        Prefer ``ExperimentConfig(task="prediction", ...)`` with
        :func:`repro.api.run_experiment` (or ``repro run --config``),
        which runs the same protocol through the stage pipeline with
        executor parallelism and config-file reproducibility.  Direct
        calls keep working but emit a :class:`DeprecationWarning`.

    Parameters
    ----------
    graph, log:
        The dataset.
    predictors:
        Mapping method name -> predictor.  Each predictor is built from
        the *training* half; when omitted, the Figure-3 trio (IC, LT,
        CD) is used.
    max_test_traces:
        Optional cap on evaluated test traces, to bound Monte Carlo time
        in quick runs; see :func:`select_test_traces` for the sampling
        rule.
    """
    warnings.warn(
        "spread_prediction_experiment is deprecated; run the prediction "
        "protocol through repro.api.run_experiment with "
        "ExperimentConfig(task='prediction', ...) — the config-driven "
        "path covers Figures 2-4 and adds executor parallelism",
        DeprecationWarning,
        stacklevel=2,
    )
    return _spread_prediction_protocol(
        graph, log, predictors=predictors, max_test_traces=max_test_traces
    )
