"""ASCII line charts and scatter plots for figure benchmarks.

The tabular renderers in :mod:`repro.evaluation.reporting` show exact
numbers; figures like the paper's RMSE curves (Figures 2-3), capture
curves (Figure 4) and runtime plots (Figure 7) are easier to eyeball as
actual *plots*.  These renderers draw them on a character grid —
dependency-free, deterministic, and safe to assert on in tests.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_line_chart", "ascii_scatter"]

_MARKERS = "*o+x#@%&"


def _nice_number(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.4g}"
    return f"{value:.3g}"


def _scale(
    value: float, low: float, high: float, cells: int
) -> int:
    """Map ``value`` in [low, high] onto a cell index in [0, cells - 1]."""
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(cells - 1, max(0, int(round(position * (cells - 1)))))


def ascii_line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
) -> str:
    """Draw one or more (x, y) series on a character grid.

    Each series gets its own marker (legend printed below).  ``log_y``
    plots log10(y) — the scale of the paper's runtime figure (Figure 7).
    Empty input yields just the title, so callers need no special case.
    """
    named = {name: list(points) for name, points in series.items() if points}
    if not named:
        return title
    if log_y:
        named = {
            name: [(x, math.log10(y)) for x, y in points if y > 0]
            for name, points in named.items()
        }
        named = {name: points for name, points in named.items() if points}
        if not named:
            return title
    all_points = [point for points in named.values() for point in points]
    x_low = min(x for x, _ in all_points)
    x_high = max(x for x, _ in all_points)
    y_low = min(y for _, y in all_points)
    y_high = max(y for _, y in all_points)
    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(named.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in points:
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = marker

    y_top = f"{_nice_number(10 ** y_high if log_y else y_high)}"
    y_bottom = f"{_nice_number(10 ** y_low if log_y else y_low)}"
    margin = max(len(y_top), len(y_bottom), len(y_label)) + 1
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label.rjust(margin)}{' (log scale)' if log_y else ''}")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = y_top.rjust(margin)
        elif row_index == height - 1:
            prefix = y_bottom.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(f"{' ' * margin}+{'-' * width}")
    x_axis = (
        f"{_nice_number(x_low)}"
        f"{x_label.center(width - len(_nice_number(x_low)) - len(_nice_number(x_high)))}"
        f"{_nice_number(x_high)}"
    )
    lines.append(f"{' ' * (margin + 1)}{x_axis}")
    legend = "   ".join(
        f"{_MARKERS[index % len(_MARKERS)]} {name}"
        for index, name in enumerate(named)
    )
    lines.append(f"{' ' * (margin + 1)}legend: {legend}")
    return "\n".join(lines)


def ascii_scatter(
    points: Sequence[tuple[float, float]],
    width: int = 50,
    height: int = 16,
    title: str = "",
    x_label: str = "actual",
    y_label: str = "predicted",
    diagonal: bool = True,
) -> str:
    """Scatter plot with an optional y = x reference diagonal.

    The layout of the paper's Figure 2(b): predicted vs actual spread,
    where a perfect predictor hugs the diagonal.  Scatter markers (``*``)
    overwrite diagonal markers (``.``) where they collide.
    """
    if not points:
        return title
    values = [value for point in points for value in point]
    low = min(values)
    high = max(values)
    grid = [[" "] * width for _ in range(height)]
    if diagonal:
        steps = max(width, height) * 2
        for step in range(steps + 1):
            value = low + (high - low) * step / steps
            column = _scale(value, low, high, width)
            row = height - 1 - _scale(value, low, high, height)
            grid[row][column] = "."
    for x, y in points:
        column = _scale(x, low, high, width)
        row = height - 1 - _scale(y, low, high, height)
        grid[row][column] = "*"
    margin = max(len(_nice_number(high)), len(_nice_number(low)), len(y_label)) + 1
    lines = []
    if title:
        lines.append(title)
    lines.append(y_label.rjust(margin))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = _nice_number(high).rjust(margin)
        elif row_index == height - 1:
            prefix = _nice_number(low).rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(f"{' ' * margin}+{'-' * width}")
    lines.append(
        f"{' ' * (margin + 1)}{_nice_number(low)}"
        f"{x_label.center(width - len(_nice_number(low)) - len(_nice_number(high)))}"
        f"{_nice_number(high)}"
    )
    return "\n".join(lines)
