"""Evaluation metrics for spread prediction and seed selection.

These are the exact quantities the paper plots:

* **binned RMSE** (Figures 2a, 2c, 3): test propagations are grouped in
  bins by actual spread; inside each bin the root-mean-squared error
  between predicted and actual spread is reported;
* **capture curve** (Figure 4): for each absolute-error threshold
  ``x``, the fraction of test propagations predicted within ``x``;
* **seed-set intersections** (Table 2, Figure 5): pairwise overlap
  sizes between the seed sets chosen by different methods.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Mapping, Sequence

from repro.utils.validation import require

__all__ = ["rmse", "binned_rmse", "capture_curve", "seed_set_intersections"]


def rmse(pairs: Iterable[tuple[float, float]]) -> float:
    """Root mean squared error over ``(actual, predicted)`` pairs.

    Raises ``ValueError`` on an empty input — an empty bin is a caller
    bug, not a zero-error result.
    """
    total = 0.0
    count = 0
    for actual, predicted in pairs:
        total += (predicted - actual) ** 2
        count += 1
    require(count > 0, "rmse of an empty collection is undefined")
    return math.sqrt(total / count)


def binned_rmse(
    pairs: Iterable[tuple[float, float]], bin_width: float
) -> list[tuple[float, float, int]]:
    """RMSE per actual-spread bin.

    Returns ``(bin_lower_edge, rmse, count)`` rows sorted by bin, with
    bins of width ``bin_width`` (the paper uses multiples of 100 for
    Flixster, 20 for Flickr).
    """
    require(bin_width > 0, f"bin_width must be positive, got {bin_width}")
    bins: dict[int, list[tuple[float, float]]] = {}
    for actual, predicted in pairs:
        bins.setdefault(int(actual // bin_width), []).append((actual, predicted))
    return [
        (index * bin_width, rmse(members), len(members))
        for index, members in sorted(bins.items())
    ]


def capture_curve(
    pairs: Iterable[tuple[float, float]],
    thresholds: Sequence[float],
) -> list[tuple[float, float]]:
    """Fraction of propagations with absolute error <= each threshold.

    Returns ``(threshold, fraction)`` points — the Figure 4 curve.
    """
    errors = [abs(predicted - actual) for actual, predicted in pairs]
    require(bool(errors), "capture_curve of an empty collection is undefined")
    count = len(errors)
    return [
        (threshold, sum(1 for error in errors if error <= threshold) / count)
        for threshold in thresholds
    ]


def seed_set_intersections(
    seed_sets: Mapping[str, Iterable[Hashable]],
) -> dict[tuple[str, str], int]:
    """Pairwise intersection sizes between named seed sets.

    Returns a symmetric mapping keyed by method-name pairs (both orders
    present, plus the diagonal), matching the layout of Table 2.
    """
    as_sets = {name: set(seeds) for name, seeds in seed_sets.items()}
    matrix: dict[tuple[str, str], int] = {}
    for first, first_seeds in as_sets.items():
        for second, second_seeds in as_sets.items():
            matrix[(first, second)] = len(first_seeds & second_seeds)
    return matrix
