"""Oracle evaluation against the hidden ground truth.

The paper faces a fundamental evaluation gap: "due to the sparsity
issue, we cannot determine the actual spread of an arbitrary seed set
from the available data", so Figure 6 falls back to the CD model's own
estimate as the best available proxy.  Our synthetic datasets do not
have that gap — the hidden :class:`~repro.data.generator.CascadeModel`
that generated each log is available (to the *evaluator*; the learners
never see it).  This module turns it into the oracle the paper could
not have:

* :func:`true_spread` — Monte Carlo expected spread of a seed set under
  the hidden dynamics;
* :func:`ground_truth_evaluation` — the Figure-6 experiment re-run with
  the oracle yardstick, which both ranks the methods *and* tests how
  faithful the paper's CD-as-proxy argument is on this substrate.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Mapping

from repro.data.datasets import Dataset
from repro.data.generator import (
    CascadeModel,
    simulate_cascade,
    simulate_threshold_cascade,
)
from repro.utils.rng import make_rng
from repro.utils.validation import require

__all__ = ["true_spread", "ground_truth_evaluation"]

User = Hashable


def true_spread(
    model: CascadeModel,
    seeds: Iterable[User],
    process: str = "ic",
    num_simulations: int = 200,
    horizon: float = 30.0,
    seed: int | random.Random | None = None,
) -> float:
    """Expected spread of ``seeds`` under the hidden dynamics.

    ``process`` mirrors the generator's options: ``"ic"`` (independent
    contagion), ``"threshold"`` (social proof) or ``"mixed"`` (each
    simulation draws one of the two uniformly, matching how a mixed log
    was generated).
    """
    require(
        num_simulations >= 1,
        f"num_simulations must be >= 1, got {num_simulations}",
    )
    require(
        process in ("ic", "threshold", "mixed"),
        f"process must be 'ic', 'threshold' or 'mixed', got {process!r}",
    )
    rng = make_rng(seed)
    seed_list = [node for node in seeds if node in model.graph]
    if not seed_list:
        return 0.0
    total = 0
    for _ in range(num_simulations):
        if process == "ic":
            simulate = simulate_cascade
        elif process == "threshold":
            simulate = simulate_threshold_cascade
        else:
            simulate = (
                simulate_cascade
                if rng.random() < 0.5
                else simulate_threshold_cascade
            )
        total += len(simulate(model, seed_list, rng, 0.0, horizon))
    return total / num_simulations


def ground_truth_evaluation(
    dataset: Dataset,
    seed_sets: Mapping[str, list[User]],
    num_simulations: int = 200,
    horizon: float = 30.0,
    seed: int = 0,
) -> dict[str, float]:
    """Score every method's seed set with the hidden-truth oracle.

    Returns ``{method: true expected spread}``.  Raises if the dataset
    carries no hidden model (e.g. a log loaded from disk).
    """
    require(
        dataset.model is not None,
        f"dataset {dataset.name!r} has no hidden ground-truth model",
    )
    return {
        method: true_spread(
            dataset.model,
            seeds,
            process=dataset.process,
            num_simulations=num_simulations,
            horizon=horizon,
            seed=seed,
        )
        for method, seeds in seed_sets.items()
    }
