"""ASCII rendering of experiment results.

Every benchmark prints the table or figure series it reproduces, with
the paper's reported numbers alongside where applicable, so a bench run
reads like the paper's evaluation section.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_matrix"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width ASCII table."""
    materialised = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[column]) for column, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in materialised:
        lines.append(
            "  ".join(value.ljust(widths[column]) for column, value in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    y_format: str = "{:.2f}",
) -> str:
    """Render several (x, y) series as one table with an x column.

    All series must share the same x grid (the experiment drivers
    guarantee this).
    """
    names = list(series)
    if not names:
        return title
    xs = [x for x, _ in series[names[0]]]
    rows = []
    for index, x in enumerate(xs):
        row: list[object] = [x]
        for name in names:
            row.append(y_format.format(series[name][index][1]))
        rows.append(row)
    return format_table([x_label, *names], rows, title=title)


def format_matrix(
    names: Sequence[str],
    matrix: Mapping[tuple[str, str], int],
    title: str = "",
) -> str:
    """Render a pairwise intersection matrix (Table 2 / Figure 5 layout)."""
    rows = []
    for first in names:
        row: list[object] = [first]
        for second in names:
            row.append(matrix[(first, second)])
        rows.append(row)
    return format_table(["", *names], rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
