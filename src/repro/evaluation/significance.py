"""Statistical comparison of spread-prediction models.

The paper's conclusion calls for "techniques and benchmarks for
comparing different influence models".  Point estimates of RMSE
(Figure 3) can flip ordering on small test sets by luck of the draw;
this module adds the missing statistical layer:

* :func:`bootstrap_ci` — a percentile bootstrap confidence interval for
  any statistic of the prediction errors (RMSE by default);
* :func:`paired_bootstrap_test` — a paired bootstrap comparing two
  models *on the same test propagations* (the right design: predictions
  are paired by trace, so unpaired tests waste power);
* :func:`sign_test` — the distribution-free fallback, counting on how
  many traces each model is strictly closer to the truth.

All randomness is seeded; results are deterministic and safe for
benchmarks to assert on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.evaluation.metrics import rmse
from repro.utils.rng import make_rng
from repro.utils.validation import require

__all__ = [
    "bootstrap_ci",
    "PairedComparison",
    "paired_bootstrap_test",
    "sign_test",
]

Pairs = Sequence[tuple[float, float]]  # (actual, predicted)


def bootstrap_ci(
    pairs: Pairs,
    statistic: Callable[[Pairs], float] = rmse,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int | random.Random | None = None,
) -> tuple[float, float, float]:
    """Percentile-bootstrap CI for ``statistic`` over (actual, predicted).

    Returns ``(point_estimate, lower, upper)``.
    """
    require(bool(pairs), "bootstrap_ci needs at least one pair")
    require(
        0.0 < confidence < 1.0,
        f"confidence must be in (0, 1), got {confidence}",
    )
    require(
        num_resamples >= 100,
        f"num_resamples must be >= 100, got {num_resamples}",
    )
    rng = make_rng(seed)
    data = list(pairs)
    point = statistic(data)
    resampled = sorted(
        statistic(rng.choices(data, k=len(data))) for _ in range(num_resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lower = resampled[int(math.floor(alpha * num_resamples))]
    upper = resampled[min(num_resamples - 1, int(math.ceil((1.0 - alpha) * num_resamples)) - 1)]
    return point, lower, upper


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired model comparison.

    Attributes
    ----------
    statistic_a, statistic_b:
        The statistic (e.g. RMSE) of each model on the full test set.
    difference:
        ``statistic_a - statistic_b`` (negative = model A better when
        the statistic is an error).
    ci_lower, ci_upper:
        Bootstrap confidence interval for the difference.
    significant:
        True iff the interval excludes zero.
    """

    statistic_a: float
    statistic_b: float
    difference: float
    ci_lower: float
    ci_upper: float

    @property
    def significant(self) -> bool:
        """Whether the difference's CI excludes zero."""
        return self.ci_lower > 0.0 or self.ci_upper < 0.0


def paired_bootstrap_test(
    actuals: Sequence[float],
    predictions_a: Sequence[float],
    predictions_b: Sequence[float],
    statistic: Callable[[Pairs], float] = rmse,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int | random.Random | None = None,
) -> PairedComparison:
    """Paired bootstrap of ``statistic(A) - statistic(B)``.

    Each resample draws test *traces* with replacement and evaluates
    both models on the identical resample, so between-trace variance
    cancels — the standard design for comparing predictors on a shared
    test set.
    """
    require(
        len(actuals) == len(predictions_a) == len(predictions_b),
        "actuals and both prediction sequences must have equal length",
    )
    require(bool(actuals), "paired_bootstrap_test needs at least one trace")
    require(
        0.0 < confidence < 1.0,
        f"confidence must be in (0, 1), got {confidence}",
    )
    rng = make_rng(seed)
    triples = list(zip(actuals, predictions_a, predictions_b))
    pairs_a = [(actual, a) for actual, a, _ in triples]
    pairs_b = [(actual, b) for actual, _, b in triples]
    stat_a = statistic(pairs_a)
    stat_b = statistic(pairs_b)
    differences = []
    for _ in range(num_resamples):
        resample = rng.choices(triples, k=len(triples))
        differences.append(
            statistic([(actual, a) for actual, a, _ in resample])
            - statistic([(actual, b) for actual, _, b in resample])
        )
    differences.sort()
    alpha = (1.0 - confidence) / 2.0
    lower = differences[int(math.floor(alpha * num_resamples))]
    upper = differences[min(num_resamples - 1, int(math.ceil((1.0 - alpha) * num_resamples)) - 1)]
    return PairedComparison(
        statistic_a=stat_a,
        statistic_b=stat_b,
        difference=stat_a - stat_b,
        ci_lower=lower,
        ci_upper=upper,
    )


def sign_test(
    actuals: Sequence[float],
    predictions_a: Sequence[float],
    predictions_b: Sequence[float],
) -> tuple[int, int, float]:
    """Distribution-free sign test on per-trace absolute errors.

    Returns ``(wins_a, wins_b, p_value)`` where a "win" is a strictly
    smaller absolute error on a trace (ties discarded) and the p-value
    is the two-sided exact binomial probability under the null that
    either model wins each non-tied trace with probability 1/2.
    """
    require(
        len(actuals) == len(predictions_a) == len(predictions_b),
        "actuals and both prediction sequences must have equal length",
    )
    wins_a = 0
    wins_b = 0
    for actual, a, b in zip(actuals, predictions_a, predictions_b):
        error_a = abs(a - actual)
        error_b = abs(b - actual)
        if error_a < error_b:
            wins_a += 1
        elif error_b < error_a:
            wins_b += 1
    trials = wins_a + wins_b
    if trials == 0:
        return 0, 0, 1.0
    observed = max(wins_a, wins_b)
    # Two-sided exact binomial tail: 2 * P[X >= observed], capped at 1.
    tail = sum(
        math.comb(trials, successes)
        for successes in range(observed, trials + 1)
    ) / 2.0**trials
    return wins_a, wins_b, min(1.0, 2.0 * tail)
