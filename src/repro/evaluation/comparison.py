"""The model-comparison benchmark the paper's conclusion calls for.

"These observations further highlight the need for devising techniques
and benchmarks for comparing different influence models and the
associated influence maximization methods."  This driver is that
benchmark: given a dataset and a set of named spread predictors, it
runs the held-out prediction protocol once and produces, per model,

* RMSE with a bootstrap confidence interval;
* the capture rate at a chosen error tolerance;
* a pairwise significance matrix (paired bootstrap on the shared test
  traces), marking which model orderings are statistically real and
  which are small-sample noise.

The result renders as a ready-to-print report, so a single call answers
"which influence model should I trust on this data, and how sure am I?"
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

from repro.data.actionlog import ActionLog
from repro.evaluation.metrics import capture_curve, rmse
from repro.evaluation.prediction import spread_prediction_experiment
from repro.evaluation.reporting import format_table
from repro.evaluation.significance import (
    PairedComparison,
    bootstrap_ci,
    paired_bootstrap_test,
)
from repro.graphs.digraph import SocialGraph
from repro.utils.validation import require

__all__ = ["ModelReport", "ComparisonResult", "compare_models"]

User = Hashable
Predictor = Callable[[list[User]], float]


@dataclass(frozen=True)
class ModelReport:
    """Per-model accuracy summary.

    Attributes
    ----------
    name:
        The model's display name.
    rmse, rmse_lower, rmse_upper:
        Point estimate and bootstrap CI of the prediction RMSE.
    capture_rate:
        Fraction of test traces predicted within the tolerance.
    """

    name: str
    rmse: float
    rmse_lower: float
    rmse_upper: float
    capture_rate: float


@dataclass
class ComparisonResult:
    """Everything :func:`compare_models` measures.

    ``pairwise[(a, b)]`` holds the paired bootstrap comparison of model
    ``a`` against model ``b`` (negative difference = ``a`` more
    accurate); only ordered pairs with ``a != b`` are present.
    """

    reports: list[ModelReport] = field(default_factory=list)
    pairwise: dict[tuple[str, str], PairedComparison] = field(
        default_factory=dict
    )
    num_test_traces: int = 0
    tolerance: float = 0.0

    def ranking(self) -> list[str]:
        """Model names by ascending RMSE (best first)."""
        return [
            report.name
            for report in sorted(self.reports, key=lambda r: r.rmse)
        ]

    def significantly_better(self, first: str, second: str) -> bool:
        """True iff ``first`` beats ``second`` with a CI excluding zero."""
        comparison = self.pairwise[(first, second)]
        return comparison.significant and comparison.difference < 0.0

    def render(self) -> str:
        """The printable report: accuracy table + significance matrix."""
        accuracy_rows = [
            [
                report.name,
                f"{report.rmse:.1f}",
                f"[{report.rmse_lower:.1f}, {report.rmse_upper:.1f}]",
                f"{report.capture_rate:.0%}",
            ]
            for report in sorted(self.reports, key=lambda r: r.rmse)
        ]
        accuracy = format_table(
            ["model", "RMSE", "95% CI", f"captured (err<={self.tolerance:g})"],
            accuracy_rows,
            title=(
                f"model comparison over {self.num_test_traces} held-out "
                "traces (best first)"
            ),
        )
        names = [report.name for report in self.reports]
        verdict_rows = []
        for first in names:
            row: list[object] = [first]
            for second in names:
                if first == second:
                    row.append("-")
                    continue
                comparison = self.pairwise[(first, second)]
                if comparison.significant:
                    row.append("<" if comparison.difference < 0 else ">")
                else:
                    row.append("~")
            verdict_rows.append(row)
        matrix = format_table(
            ["", *names],
            verdict_rows,
            title=(
                "pairwise verdicts (row vs column): '<' row better, "
                "'>' column better, '~' not significant"
            ),
        )
        return f"{accuracy}\n\n{matrix}"


def compare_models(
    graph: SocialGraph,
    log: ActionLog,
    predictors: Mapping[str, Predictor],
    tolerance: float = 10.0,
    max_test_traces: int | None = None,
    confidence: float = 0.95,
    num_resamples: int = 1000,
    seed: int = 0,
) -> ComparisonResult:
    """Run the full statistical model comparison.

    Parameters mirror
    :func:`repro.evaluation.prediction.spread_prediction_experiment`;
    ``tolerance`` sets the capture-rate threshold and ``confidence`` /
    ``num_resamples`` the bootstrap layer.
    """
    require(len(predictors) >= 2, "compare_models needs at least two models")
    require(tolerance > 0.0, f"tolerance must be positive, got {tolerance}")
    experiment = spread_prediction_experiment(
        graph, log, predictors, max_test_traces=max_test_traces
    )
    result = ComparisonResult(
        num_test_traces=experiment.num_test_traces, tolerance=tolerance
    )
    for name in predictors:
        pairs = experiment.pairs(name)
        point, lower, upper = bootstrap_ci(
            pairs,
            confidence=confidence,
            num_resamples=max(100, num_resamples),
            seed=seed,
        )
        result.reports.append(
            ModelReport(
                name=name,
                rmse=point,
                rmse_lower=lower,
                rmse_upper=upper,
                capture_rate=capture_curve(pairs, [tolerance])[0][1],
            )
        )
    names = list(predictors)
    actuals = [actual for actual, _ in experiment.pairs(names[0])]
    predictions = {
        name: [predicted for _, predicted in experiment.pairs(name)]
        for name in names
    }
    for first in names:
        for second in names:
            if first == second:
                continue
            result.pairwise[(first, second)] = paired_bootstrap_test(
                actuals,
                predictions[first],
                predictions[second],
                confidence=confidence,
                num_resamples=max(100, num_resamples),
                seed=seed,
            )
    return result
