"""The model-comparison benchmarks the paper's conclusion calls for.

"These observations further highlight the need for devising techniques
and benchmarks for comparing different influence models and the
associated influence maximization methods."  Two drivers answer that
call:

* :func:`compare_selectors` — the *maximization* head-to-head.  It
  consumes :func:`repro.api.run_experiment`, so any registered selector
  can enter the comparison by name; the report ranks every entry by the
  CD-proxy spread of its seeds (the Figure-6 yardstick) alongside
  runtime and oracle-call counts.  This is the registry-native path and
  the one new code should use.
* :func:`compare_models` — the *prediction* benchmark: given named
  spread predictors, it runs the held-out protocol once and produces,
  per model, RMSE with a bootstrap confidence interval, the capture
  rate at a chosen tolerance, and a pairwise significance matrix.
  Because it takes raw predictor callables it bypasses the selector
  registry entirely; it is kept working for existing callers but
  emits a :class:`DeprecationWarning` pointing at the ``repro.api``
  surface.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

from repro.api.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.data.actionlog import ActionLog
from repro.evaluation.metrics import capture_curve, rmse
from repro.evaluation.prediction import _spread_prediction_protocol
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.significance import (
    PairedComparison,
    bootstrap_ci,
    paired_bootstrap_test,
)
from repro.graphs.digraph import SocialGraph
from repro.utils.validation import require

__all__ = [
    "ModelReport",
    "ComparisonResult",
    "compare_models",
    "SelectorComparison",
    "compare_selectors",
]

User = Hashable
Predictor = Callable[[list[User]], float]


@dataclass(frozen=True)
class ModelReport:
    """Per-model accuracy summary.

    Attributes
    ----------
    name:
        The model's display name.
    rmse, rmse_lower, rmse_upper:
        Point estimate and bootstrap CI of the prediction RMSE.
    capture_rate:
        Fraction of test traces predicted within the tolerance.
    """

    name: str
    rmse: float
    rmse_lower: float
    rmse_upper: float
    capture_rate: float


@dataclass
class ComparisonResult:
    """Everything :func:`compare_models` measures.

    ``pairwise[(a, b)]`` holds the paired bootstrap comparison of model
    ``a`` against model ``b`` (negative difference = ``a`` more
    accurate); only ordered pairs with ``a != b`` are present.
    """

    reports: list[ModelReport] = field(default_factory=list)
    pairwise: dict[tuple[str, str], PairedComparison] = field(
        default_factory=dict
    )
    num_test_traces: int = 0
    tolerance: float = 0.0

    def ranking(self) -> list[str]:
        """Model names by ascending RMSE (best first)."""
        return [
            report.name
            for report in sorted(self.reports, key=lambda r: r.rmse)
        ]

    def significantly_better(self, first: str, second: str) -> bool:
        """True iff ``first`` beats ``second`` with a CI excluding zero."""
        comparison = self.pairwise[(first, second)]
        return comparison.significant and comparison.difference < 0.0

    def render(self) -> str:
        """The printable report: accuracy table + significance matrix."""
        accuracy_rows = [
            [
                report.name,
                f"{report.rmse:.1f}",
                f"[{report.rmse_lower:.1f}, {report.rmse_upper:.1f}]",
                f"{report.capture_rate:.0%}",
            ]
            for report in sorted(self.reports, key=lambda r: r.rmse)
        ]
        accuracy = format_table(
            ["model", "RMSE", "95% CI", f"captured (err<={self.tolerance:g})"],
            accuracy_rows,
            title=(
                f"model comparison over {self.num_test_traces} held-out "
                "traces (best first)"
            ),
        )
        names = [report.name for report in self.reports]
        verdict_rows = []
        for first in names:
            row: list[object] = [first]
            for second in names:
                if first == second:
                    row.append("-")
                    continue
                comparison = self.pairwise[(first, second)]
                if comparison.significant:
                    row.append("<" if comparison.difference < 0 else ">")
                else:
                    row.append("~")
            verdict_rows.append(row)
        matrix = format_table(
            ["", *names],
            verdict_rows,
            title=(
                "pairwise verdicts (row vs column): '<' row better, "
                "'>' column better, '~' not significant"
            ),
        )
        return f"{accuracy}\n\n{matrix}"


def compare_models(
    graph: SocialGraph,
    log: ActionLog,
    predictors: Mapping[str, Predictor],
    tolerance: float = 10.0,
    max_test_traces: int | None = None,
    confidence: float = 0.95,
    num_resamples: int = 1000,
    seed: int = 0,
) -> ComparisonResult:
    """Run the full statistical model comparison.

    Parameters mirror
    :func:`repro.evaluation.prediction.spread_prediction_experiment`;
    ``tolerance`` sets the capture-rate threshold and ``confidence`` /
    ``num_resamples`` the bootstrap layer.
    """
    warnings.warn(
        "compare_models takes raw predictor callables and bypasses the "
        "repro.api selector registry; for maximization comparisons use "
        "repro.evaluation.comparison.compare_selectors (backed by "
        "repro.api.run_experiment) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    require(len(predictors) >= 2, "compare_models needs at least two models")
    require(tolerance > 0.0, f"tolerance must be positive, got {tolerance}")
    experiment = _spread_prediction_protocol(
        graph, log, predictors, max_test_traces=max_test_traces
    )
    result = ComparisonResult(
        num_test_traces=experiment.num_test_traces, tolerance=tolerance
    )
    for name in predictors:
        pairs = experiment.pairs(name)
        point, lower, upper = bootstrap_ci(
            pairs,
            confidence=confidence,
            num_resamples=max(100, num_resamples),
            seed=seed,
        )
        result.reports.append(
            ModelReport(
                name=name,
                rmse=point,
                rmse_lower=lower,
                rmse_upper=upper,
                capture_rate=capture_curve(pairs, [tolerance])[0][1],
            )
        )
    names = list(predictors)
    actuals = [actual for actual, _ in experiment.pairs(names[0])]
    predictions = {
        name: [predicted for _, predicted in experiment.pairs(name)]
        for name in names
    }
    for first in names:
        for second in names:
            if first == second:
                continue
            result.pairwise[(first, second)] = paired_bootstrap_test(
                actuals,
                predictions[first],
                predictions[second],
                confidence=confidence,
                num_resamples=max(100, num_resamples),
                seed=seed,
            )
    return result


@dataclass
class SelectorComparison:
    """The maximization head-to-head, as measured by one experiment."""

    experiment: ExperimentResult

    def ranking(self) -> list[str]:
        """Selector labels by descending CD-proxy spread (best first)."""
        finals = self.experiment.final_spreads()
        return sorted(finals, key=lambda label: -finals[label])

    def render(self) -> str:
        """Printable report: ranked summary table + spread-vs-k series."""
        finals = self.experiment.final_spreads()
        rows = []
        for label in self.ranking():
            selection = self.experiment.selections(label)[0]
            rows.append(
                [
                    label,
                    selection.selector,
                    f"{finals[label]:.2f}",
                    f"{selection.wall_time_s:.2f}s",
                    selection.oracle_calls or "-",
                ]
            )
        k_max = self.experiment.config.ks[-1]
        table = format_table(
            ["rank by sigma_cd", "selector", "spread", "time", "oracle calls"],
            rows,
            title=(
                f"selector comparison on {self.experiment.dataset_name} "
                f"(k={k_max}, CD-proxy yardstick)"
            ),
        )
        series = format_series(
            "k",
            self.experiment.spread_series(),
            title="spread achieved vs k (Figure-6 layout)",
        )
        return f"{table}\n\n{series}"


def compare_selectors(config: ExperimentConfig) -> SelectorComparison:
    """Head-to-head comparison of registered selectors (Figure-6 style).

    Runs :func:`repro.api.run_experiment` once — the entire dataset→
    split→learn→select→evaluate pipeline lives there — and wraps the
    result in a report that ranks every configured selector by the
    CD-proxy spread of its seed set.
    """
    require(
        config.evaluate_spread,
        "compare_selectors needs evaluate_spread=True in the config",
    )
    return SelectorComparison(experiment=run_experiment(config))
