"""Seed-selection experiments (Table 2, Figures 5 and 6).

:class:`SeedSelector` runs influence maximization under every method the
paper compares, sharing learned artifacts (EM probabilities, LT weights,
the credit index) across methods:

* ``UN`` / ``TV`` / ``WC`` / ``EM`` / ``PT`` — greedy under IC with the
  respective edge probabilities (Table 2);
* ``IC`` — alias for ``EM``, the Figure-5/6 label;
* ``LT`` — greedy under LT with learned weights;
* ``CD`` — the credit-distribution maximizer;
* ``HighDegree`` / ``PageRank`` — the structural baselines of Figure 6.

Since the ``repro.api`` redesign this class is a thin compatibility
facade: artifacts live in a shared
:class:`~repro.api.context.SelectionContext` and every method dispatches
through the selector registry (:func:`repro.api.get_selector`), so the
seeds here are byte-identical to registry calls.  ``method_selector``
exposes the mapping from the paper's method names to registry entries;
new code should use :func:`repro.api.run_experiment` directly.

For the IC and LT models the selector defaults to the PMIA and LDAG
heuristics, exactly as the paper does where MC greedy "is too slow to
complete in a reasonable time" (footnote 3); pass
``ic_algorithm="celf"`` / ``lt_algorithm="celf"`` for the Monte Carlo
greedy used on the small dataset.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from repro.api.context import IC_PROBABILITY_METHODS, SelectionContext
from repro.api.registry import Selector, get_selector
from repro.core.credit import TimeDecayCredit
from repro.core.spread import CDSpreadEvaluator
from repro.data.actionlog import ActionLog
from repro.graphs.digraph import SocialGraph
from repro.utils.validation import require

__all__ = [
    "SeedSelector",
    "method_selector",
    "select_seeds_by_method",
    "seed_overlap_experiment",
    "spread_achieved_experiment",
    "IC_PROBABILITY_METHODS",
]

User = Hashable


def method_selector(
    method: str,
    ic_algorithm: str = "pmia",
    lt_algorithm: str = "ldag",
) -> Selector:
    """Map a paper method name onto a bound registry selector.

    ``CD``/``HighDegree``/``PageRank`` map directly; the IC probability
    methods (``UN``/``TV``/``WC``/``EM``/``PT``, plus the ``IC`` alias
    for ``EM``) map to PMIA or Monte-Carlo CELF per ``ic_algorithm``;
    ``LT`` maps to LDAG or Monte-Carlo CELF per ``lt_algorithm``.
    """
    require(
        ic_algorithm in ("pmia", "celf"),
        f"ic_algorithm must be 'pmia' or 'celf', got {ic_algorithm!r}",
    )
    require(
        lt_algorithm in ("ldag", "celf"),
        f"lt_algorithm must be 'ldag' or 'celf', got {lt_algorithm!r}",
    )
    if method == "IC":
        method = "EM"
    if method in IC_PROBABILITY_METHODS:
        if ic_algorithm == "pmia":
            return get_selector("pmia", method=method)
        return get_selector("celf", model="ic", method=method)
    if method == "LT":
        if lt_algorithm == "ldag":
            return get_selector("ldag")
        return get_selector("celf", model="lt")
    if method == "CD":
        return get_selector("cd")
    if method == "HighDegree":
        return get_selector("high_degree")
    if method == "PageRank":
        return get_selector("pagerank")
    raise ValueError(f"unknown seed-selection method {method!r}")


class SeedSelector:
    """Caches learned artifacts and selects seeds per method."""

    def __init__(
        self,
        graph: SocialGraph,
        train_log: ActionLog,
        ic_algorithm: str = "pmia",
        lt_algorithm: str = "ldag",
        num_simulations: int = 100,
        truncation: float = 0.001,
        seed: int = 7,
    ) -> None:
        require(
            ic_algorithm in ("pmia", "celf"),
            f"ic_algorithm must be 'pmia' or 'celf', got {ic_algorithm!r}",
        )
        require(
            lt_algorithm in ("ldag", "celf"),
            f"lt_algorithm must be 'ldag' or 'celf', got {lt_algorithm!r}",
        )
        self._ic_algorithm = ic_algorithm
        self._lt_algorithm = lt_algorithm
        self.context = SelectionContext(
            graph,
            train_log,
            num_simulations=num_simulations,
            truncation=truncation,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Learned artifacts (lazy, shared across methods)
    # ------------------------------------------------------------------
    def ic_probabilities(self, method: str) -> dict[tuple[User, User], float]:
        """Edge probabilities for an IC probability method (cached)."""
        return self.context.ic_probabilities(method)

    def lt_weights(self) -> dict[tuple[User, User], float]:
        """Learned LT weights (cached)."""
        return self.context.lt_weights()

    def params(self):
        """Learned Eq. 9 parameters (cached)."""
        return self.context.influence_params()

    def credit_index(self):
        """The scanned credit index with Eq. 9 credits (cached)."""
        return self.context.credit_index()

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(self, method: str, k: int):
        """Full :class:`~repro.api.results.SeedSelection` for ``method``."""
        selector = method_selector(
            method,
            ic_algorithm=self._ic_algorithm,
            lt_algorithm=self._lt_algorithm,
        )
        return selector.select(self.context, k)

    def seeds(self, method: str, k: int) -> list[User]:
        """Select ``k`` seeds with ``method`` (see module docstring)."""
        return self.select(method, k).seeds


def select_seeds_by_method(
    graph: SocialGraph,
    train_log: ActionLog,
    method: str,
    k: int,
    **selector_options,
) -> list[User]:
    """One-shot seed selection (builds a throwaway :class:`SeedSelector`)."""
    return SeedSelector(graph, train_log, **selector_options).seeds(method, k)


def seed_overlap_experiment(
    graph: SocialGraph,
    train_log: ActionLog,
    methods: Sequence[str],
    k: int = 50,
    **selector_options,
) -> tuple[dict[str, list[User]], dict[tuple[str, str], int]]:
    """Select ``k`` seeds per method and compute pairwise intersections.

    Reproduces Table 2 (methods = UN/WC/TV/EM/PT) and Figure 5
    (methods = IC/LT/CD).
    """
    from repro.evaluation.metrics import seed_set_intersections

    selector = SeedSelector(graph, train_log, **selector_options)
    seed_sets = {method: selector.seeds(method, k) for method in methods}
    return seed_sets, seed_set_intersections(seed_sets)


def spread_achieved_experiment(
    graph: SocialGraph,
    train_log: ActionLog,
    methods: Sequence[str],
    ks: Iterable[int],
    seed_sets: Mapping[str, list[User]] | None = None,
    **selector_options,
) -> dict[str, list[tuple[float, float]]]:
    """Figure 6: spread achieved by each method's seeds, measured under CD.

    The paper's argument: the CD model is the most accurate predictor
    available (Figures 3-4), so its estimate serves as the best proxy
    for the *actual* spread of arbitrary seed sets.  All methods' seed
    prefixes are therefore evaluated with ``sigma_cd`` (Eq. 9 credits on
    the training log).

    Returns per-method series of ``(k, spread)`` points.
    """
    k_values = sorted(set(ks))
    require(bool(k_values), "ks must be non-empty")
    max_k = k_values[-1]
    selector = SeedSelector(graph, train_log, **selector_options)
    if seed_sets is None:
        seed_sets = {method: selector.seeds(method, max_k) for method in methods}
    evaluator = CDSpreadEvaluator(
        graph, train_log, credit=TimeDecayCredit(selector.params())
    )
    series: dict[str, list[tuple[float, float]]] = {}
    for method in methods:
        seeds = seed_sets[method]
        series[method] = [
            (float(k), evaluator.spread(seeds[:k])) for k in k_values
        ]
    return series
