"""Seed-selection experiments (Table 2, Figures 5 and 6).

:class:`SeedSelector` runs influence maximization under every method the
paper compares, sharing learned artifacts (EM probabilities, LT weights,
the credit index) across methods:

* ``UN`` / ``TV`` / ``WC`` / ``EM`` / ``PT`` — greedy under IC with the
  respective edge probabilities (Table 2);
* ``IC`` — alias for ``EM``, the Figure-5/6 label;
* ``LT`` — greedy under LT with learned weights;
* ``CD`` — the credit-distribution maximizer;
* ``HighDegree`` / ``PageRank`` — the structural baselines of Figure 6.

For the IC and LT models the selector defaults to the PMIA and LDAG
heuristics, exactly as the paper does where MC greedy "is too slow to
complete in a reasonable time" (footnote 3); pass
``ic_algorithm="celf"`` / ``lt_algorithm="celf"`` for the Monte Carlo
greedy used on the small dataset.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from repro.core.credit import TimeDecayCredit
from repro.core.maximize import cd_maximize
from repro.core.params import learn_influenceability
from repro.core.scan import scan_action_log
from repro.core.spread import CDSpreadEvaluator
from repro.data.actionlog import ActionLog
from repro.graphs.digraph import SocialGraph
from repro.maximization.celf import celf_maximize
from repro.maximization.heuristics import high_degree_seeds, pagerank_seeds
from repro.maximization.ldag import LDAGModel
from repro.maximization.oracle import ICSpreadOracle, LTSpreadOracle
from repro.maximization.pmia import PMIAModel
from repro.probabilities.em import learn_ic_probabilities_em
from repro.probabilities.lt_weights import learn_lt_weights
from repro.probabilities.perturb import perturb_probabilities
from repro.probabilities.static import (
    trivalency_probabilities,
    uniform_probabilities,
    weighted_cascade_probabilities,
)
from repro.utils.validation import require

__all__ = [
    "SeedSelector",
    "select_seeds_by_method",
    "seed_overlap_experiment",
    "spread_achieved_experiment",
]

User = Hashable

IC_PROBABILITY_METHODS = ("UN", "TV", "WC", "EM", "PT")


class SeedSelector:
    """Caches learned artifacts and selects seeds per method."""

    def __init__(
        self,
        graph: SocialGraph,
        train_log: ActionLog,
        ic_algorithm: str = "pmia",
        lt_algorithm: str = "ldag",
        num_simulations: int = 100,
        truncation: float = 0.001,
        seed: int = 7,
    ) -> None:
        require(
            ic_algorithm in ("pmia", "celf"),
            f"ic_algorithm must be 'pmia' or 'celf', got {ic_algorithm!r}",
        )
        require(
            lt_algorithm in ("ldag", "celf"),
            f"lt_algorithm must be 'ldag' or 'celf', got {lt_algorithm!r}",
        )
        self._graph = graph
        self._train_log = train_log
        self._ic_algorithm = ic_algorithm
        self._lt_algorithm = lt_algorithm
        self._num_simulations = num_simulations
        self._truncation = truncation
        self._seed = seed
        self._probability_cache: dict[str, dict[tuple[User, User], float]] = {}
        self._lt_weights: dict[tuple[User, User], float] | None = None
        self._credit_index = None
        self._params = None

    # ------------------------------------------------------------------
    # Learned artifacts (lazy, shared across methods)
    # ------------------------------------------------------------------
    def ic_probabilities(self, method: str) -> dict[tuple[User, User], float]:
        """Edge probabilities for an IC probability method (cached)."""
        require(
            method in IC_PROBABILITY_METHODS,
            f"method must be one of {IC_PROBABILITY_METHODS}, got {method!r}",
        )
        if method not in self._probability_cache:
            if method == "UN":
                value = uniform_probabilities(self._graph)
            elif method == "TV":
                value = trivalency_probabilities(self._graph, seed=self._seed)
            elif method == "WC":
                value = weighted_cascade_probabilities(self._graph)
            elif method == "EM":
                value = learn_ic_probabilities_em(
                    self._graph, self._train_log
                ).probabilities
            else:  # PT
                value = perturb_probabilities(
                    self.ic_probabilities("EM"), noise=0.2, seed=self._seed
                )
            self._probability_cache[method] = value
        return self._probability_cache[method]

    def lt_weights(self) -> dict[tuple[User, User], float]:
        """Learned LT weights (cached)."""
        if self._lt_weights is None:
            self._lt_weights = learn_lt_weights(self._graph, self._train_log)
        return self._lt_weights

    def params(self):
        """Learned Eq. 9 parameters (cached)."""
        if self._params is None:
            self._params = learn_influenceability(self._graph, self._train_log)
        return self._params

    def credit_index(self):
        """The scanned credit index with Eq. 9 credits (cached)."""
        if self._credit_index is None:
            credit = TimeDecayCredit(self.params())
            self._credit_index = scan_action_log(
                self._graph,
                self._train_log,
                credit=credit,
                truncation=self._truncation,
            )
        return self._credit_index

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def seeds(self, method: str, k: int) -> list[User]:
        """Select ``k`` seeds with ``method`` (see module docstring)."""
        if method == "IC":
            method = "EM"
        if method in IC_PROBABILITY_METHODS:
            probabilities = self.ic_probabilities(method)
            if self._ic_algorithm == "pmia":
                return PMIAModel(self._graph, probabilities).select_seeds(k).seeds
            oracle = ICSpreadOracle(
                self._graph,
                probabilities,
                num_simulations=self._num_simulations,
                seed=self._seed,
            )
            return celf_maximize(oracle, k).seeds
        if method == "LT":
            weights = self.lt_weights()
            if self._lt_algorithm == "ldag":
                return LDAGModel(self._graph, weights).select_seeds(k).seeds
            oracle = LTSpreadOracle(
                self._graph,
                weights,
                num_simulations=self._num_simulations,
                seed=self._seed,
            )
            return celf_maximize(oracle, k).seeds
        if method == "CD":
            return cd_maximize(self.credit_index(), k).seeds
        if method == "HighDegree":
            return high_degree_seeds(self._graph, k)
        if method == "PageRank":
            return pagerank_seeds(self._graph, k)
        raise ValueError(f"unknown seed-selection method {method!r}")


def select_seeds_by_method(
    graph: SocialGraph,
    train_log: ActionLog,
    method: str,
    k: int,
    **selector_options,
) -> list[User]:
    """One-shot seed selection (builds a throwaway :class:`SeedSelector`)."""
    return SeedSelector(graph, train_log, **selector_options).seeds(method, k)


def seed_overlap_experiment(
    graph: SocialGraph,
    train_log: ActionLog,
    methods: Sequence[str],
    k: int = 50,
    **selector_options,
) -> tuple[dict[str, list[User]], dict[tuple[str, str], int]]:
    """Select ``k`` seeds per method and compute pairwise intersections.

    Reproduces Table 2 (methods = UN/WC/TV/EM/PT) and Figure 5
    (methods = IC/LT/CD).
    """
    from repro.evaluation.metrics import seed_set_intersections

    selector = SeedSelector(graph, train_log, **selector_options)
    seed_sets = {method: selector.seeds(method, k) for method in methods}
    return seed_sets, seed_set_intersections(seed_sets)


def spread_achieved_experiment(
    graph: SocialGraph,
    train_log: ActionLog,
    methods: Sequence[str],
    ks: Iterable[int],
    seed_sets: Mapping[str, list[User]] | None = None,
    **selector_options,
) -> dict[str, list[tuple[float, float]]]:
    """Figure 6: spread achieved by each method's seeds, measured under CD.

    The paper's argument: the CD model is the most accurate predictor
    available (Figures 3-4), so its estimate serves as the best proxy
    for the *actual* spread of arbitrary seed sets.  All methods' seed
    prefixes are therefore evaluated with ``sigma_cd`` (Eq. 9 credits on
    the training log).

    Returns per-method series of ``(k, spread)`` points.
    """
    k_values = sorted(set(ks))
    require(bool(k_values), "ks must be non-empty")
    max_k = k_values[-1]
    selector = SeedSelector(graph, train_log, **selector_options)
    if seed_sets is None:
        seed_sets = {method: selector.seeds(method, max_k) for method in methods}
    evaluator = CDSpreadEvaluator(
        graph, train_log, credit=TimeDecayCredit(selector.params())
    )
    series: dict[str, list[tuple[float, float]]] = {}
    for method in methods:
        seeds = seed_sets[method]
        series[method] = [
            (float(k), evaluator.spread(seeds[:k])) for k in k_values
        ]
    return series
