"""Noise-robustness sweeps: the PT experiment, generalised.

The paper probes robustness at a single operating point — EM
probabilities perturbed by ±20% (the PT method) — and concludes "the
greedy algorithm ... is robust against some noise in the probability
learning step".  This driver turns that spot check into a curve: sweep
the noise level, re-select seeds at each level, and measure

* **seed stability** — overlap between the noisy seeds and the clean
  seeds (Table 2's EM∩PT entry as a function of noise);
* **quality retention** — the spread (under the clean model) achieved
  by the noisy seeds, relative to the clean seeds' spread.  Stability
  can drop while quality holds (interchangeable seeds), so both matter.

The same sweep applies to the CD model by perturbing the learned direct
credits, answering the analogous question for the paper's own model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.core.credit import DirectCredit, UniformCredit
from repro.core.maximize import cd_maximize
from repro.core.scan import scan_action_log
from repro.data.actionlog import ActionLog
from repro.data.propagation import PropagationGraph
from repro.graphs.digraph import SocialGraph
from repro.maximization.celf import celf_maximize
from repro.maximization.oracle import ICSpreadOracle
from repro.probabilities.perturb import perturb_probabilities
from repro.utils.rng import make_rng
from repro.utils.validation import require

__all__ = [
    "NoisePoint",
    "ic_noise_sweep",
    "PerturbedCredit",
    "cd_noise_sweep",
]

User = Hashable
Edge = tuple[User, User]


@dataclass(frozen=True)
class NoisePoint:
    """One point of a robustness curve.

    Attributes
    ----------
    noise:
        The perturbation magnitude (0.2 = ±20%).
    overlap:
        ``|noisy seeds ∩ clean seeds|``.
    quality_ratio:
        Spread of the noisy seeds / spread of the clean seeds, both
        measured under the *clean* model (≤ 1 by greedy near-optimality,
        up to the oracle's own estimation noise).
    """

    noise: float
    overlap: int
    quality_ratio: float


def ic_noise_sweep(
    graph: SocialGraph,
    probabilities: dict[Edge, float],
    k: int,
    noise_levels: Sequence[float],
    num_simulations: int = 100,
    seed: int = 7,
) -> list[NoisePoint]:
    """Robustness of IC-greedy seed selection to probability noise.

    ``probabilities`` are the clean (e.g. EM-learned) values; each noise
    level re-perturbs them independently and re-runs CELF.
    """
    require(k >= 1, f"k must be >= 1, got {k}")
    clean_oracle = ICSpreadOracle(
        graph, probabilities, num_simulations=num_simulations, seed=seed
    )
    clean = celf_maximize(clean_oracle, k)
    clean_spread = clean_oracle.spread(clean.seeds)
    points = []
    for level_index, noise in enumerate(noise_levels):
        require(noise >= 0.0, f"noise must be >= 0, got {noise}")
        noisy_probabilities = perturb_probabilities(
            probabilities, noise=noise, seed=seed + 1000 * (level_index + 1)
        )
        noisy_oracle = ICSpreadOracle(
            graph,
            noisy_probabilities,
            num_simulations=num_simulations,
            seed=seed,
        )
        noisy = celf_maximize(noisy_oracle, k)
        quality = (
            clean_oracle.spread(noisy.seeds) / clean_spread
            if clean_spread > 0
            else 1.0
        )
        points.append(
            NoisePoint(
                noise=noise,
                overlap=len(set(clean.seeds) & set(noisy.seeds)),
                quality_ratio=quality,
            )
        )
    return points


class PerturbedCredit:
    """A direct-credit scheme with multiplicative noise — CD's "PT".

    Wraps any base scheme and scales each ``gamma_{v,u}(a)`` by a factor
    drawn once per (influencer, influenced, action) from
    ``[1 - noise, 1 + noise]``, clamping into [0, 1/d_in] so the
    per-user conservation constraint survives.  Draws are memoised so
    the scheme stays a pure function within a run (scans and exact
    evaluation agree).
    """

    def __init__(
        self,
        base: DirectCredit | None,
        noise: float,
        seed: int | random.Random | None = None,
    ) -> None:
        require(noise >= 0.0, f"noise must be >= 0, got {noise}")
        self._base = UniformCredit() if base is None else base
        self._noise = noise
        self._rng = make_rng(seed)
        self._factors: dict[tuple[User, User, Hashable], float] = {}

    def __call__(
        self, propagation: PropagationGraph, influencer: User, influenced: User
    ) -> float:
        """The base credit scaled by this triple's (memoised) noise factor."""
        value = self._base(propagation, influencer, influenced)
        if value <= 0.0:
            return value
        key = (influencer, influenced, propagation.action)
        factor = self._factors.get(key)
        if factor is None:
            factor = 1.0 + self._rng.uniform(-self._noise, self._noise)
            self._factors[key] = factor
        ceiling = 1.0 / propagation.in_degree(influenced)
        return min(ceiling, max(0.0, value * factor))

    def __repr__(self) -> str:
        return f"PerturbedCredit(base={self._base!r}, noise={self._noise})"


def cd_noise_sweep(
    graph: SocialGraph,
    log: ActionLog,
    k: int,
    noise_levels: Sequence[float],
    base_credit: DirectCredit | None = None,
    truncation: float = 0.001,
    seed: int = 7,
) -> list[NoisePoint]:
    """Robustness of CD seed selection to noise in the learned credits.

    The CD analogue of :func:`ic_noise_sweep`: perturb the direct
    credits (the model's learned quantity), rebuild the index, re-select
    seeds, and measure stability and quality retention against the clean
    run.  ``base_credit`` defaults to uniform; pass a
    :class:`~repro.core.credit.TimeDecayCredit` for the Eq. 9 pipeline.
    """
    require(k >= 1, f"k must be >= 1, got {k}")
    clean_index = scan_action_log(
        graph, log, credit=base_credit, truncation=truncation
    )
    clean = cd_maximize(clean_index, k, mutate=False)

    # Clean-model yardstick for noisy seed sets: a fresh index per
    # evaluation, consumed destructively by a "forced-order" greedy.
    def clean_spread_of(seeds: list[User]) -> float:
        from repro.core.index import SeedCredits
        from repro.core.maximize import _absorb_seed, marginal_gain

        index = clean_index.copy()
        seed_credits = SeedCredits()
        total = 0.0
        for node in seeds:
            total += marginal_gain(index, seed_credits, node)
            _absorb_seed(index, seed_credits, node)
        return total

    clean_spread = clean_spread_of(clean.seeds)
    points = []
    for level_index, noise in enumerate(noise_levels):
        require(noise >= 0.0, f"noise must be >= 0, got {noise}")
        noisy_credit = PerturbedCredit(
            base_credit, noise=noise, seed=seed + 1000 * (level_index + 1)
        )
        noisy_index = scan_action_log(
            graph, log, credit=noisy_credit, truncation=truncation
        )
        noisy = cd_maximize(noisy_index, k, mutate=True)
        quality = (
            clean_spread_of(noisy.seeds) / clean_spread
            if clean_spread > 0
            else 1.0
        )
        points.append(
            NoisePoint(
                noise=noise,
                overlap=len(set(clean.seeds) & set(noisy.seeds)),
                quality_ratio=quality,
            )
        )
    return points
