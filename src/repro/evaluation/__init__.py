"""Experiment harness: one driver per table/figure of the paper.

* :mod:`~repro.evaluation.metrics` — binned RMSE (Figures 2-3), the
  absolute-error capture curve (Figure 4), seed-set intersection
  matrices (Table 2, Figure 5);
* :mod:`~repro.evaluation.prediction` — spread-prediction experiments
  (Figures 2, 3, 4);
* :mod:`~repro.evaluation.selection` — seed-selection experiments
  (Table 2, Figures 5, 6);
* :mod:`~repro.evaluation.performance` — runtime, scalability,
  training-size and truncation experiments (Figures 7-9, Table 4);
* :mod:`~repro.evaluation.reporting` — ASCII rendering shared by the
  benchmark suite.
"""

from repro.evaluation.export import (
    export_matrix,
    export_prediction_pairs,
    export_series,
    write_rows,
)
from repro.evaluation.metrics import (
    binned_rmse,
    capture_curve,
    rmse,
    seed_set_intersections,
)
from repro.evaluation.prediction import (
    PredictionExperiment,
    build_cd_predictor,
    build_ic_predictors,
    build_lt_predictor,
    spread_prediction_experiment,
)
from repro.evaluation.performance import (
    runtime_comparison,
    scalability_experiment,
    truncation_experiment,
)
from repro.evaluation.comparison import (
    ComparisonResult,
    ModelReport,
    SelectorComparison,
    compare_models,
    compare_selectors,
)
from repro.evaluation.groundtruth import (
    ground_truth_evaluation,
    true_spread,
)
from repro.evaluation.plots import ascii_line_chart, ascii_scatter
from repro.evaluation.reporting import format_matrix, format_series, format_table
from repro.evaluation.robustness import (
    NoisePoint,
    PerturbedCredit,
    cd_noise_sweep,
    ic_noise_sweep,
)
from repro.evaluation.significance import (
    PairedComparison,
    bootstrap_ci,
    paired_bootstrap_test,
    sign_test,
)
from repro.evaluation.selection import (
    method_selector,
    seed_overlap_experiment,
    select_seeds_by_method,
    spread_achieved_experiment,
)

__all__ = [
    "rmse",
    "binned_rmse",
    "capture_curve",
    "seed_set_intersections",
    "PredictionExperiment",
    "spread_prediction_experiment",
    "build_ic_predictors",
    "build_lt_predictor",
    "build_cd_predictor",
    "select_seeds_by_method",
    "seed_overlap_experiment",
    "spread_achieved_experiment",
    "runtime_comparison",
    "scalability_experiment",
    "truncation_experiment",
    "format_table",
    "format_series",
    "format_matrix",
    "write_rows",
    "export_prediction_pairs",
    "export_series",
    "export_matrix",
    "ascii_line_chart",
    "ascii_scatter",
    "bootstrap_ci",
    "PairedComparison",
    "paired_bootstrap_test",
    "sign_test",
    "NoisePoint",
    "PerturbedCredit",
    "ic_noise_sweep",
    "cd_noise_sweep",
    "ModelReport",
    "ComparisonResult",
    "compare_models",
    "SelectorComparison",
    "compare_selectors",
    "method_selector",
    "true_spread",
    "ground_truth_evaluation",
]
