"""CSV export of experiment results.

The benchmark harness prints ASCII tables; this module writes the same
data as CSV files so the figures can be re-plotted with any tool
(gnuplot, matplotlib, a spreadsheet).  One function per result family,
all sharing a tiny writer that needs no third-party dependency.
"""

from __future__ import annotations

import csv
import os
from typing import Mapping, Sequence

from repro.evaluation.prediction import PredictionExperiment

__all__ = [
    "write_rows",
    "export_prediction_pairs",
    "export_series",
    "export_matrix",
    "export_comparison",
    "export_noise_points",
]


def write_rows(
    path: str | os.PathLike[str],
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Write ``rows`` (with ``header``) to ``path`` as CSV."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_prediction_pairs(
    experiment: PredictionExperiment, path: str | os.PathLike[str]
) -> None:
    """One row per (test trace, method): actual and predicted spread.

    The raw data behind Figures 2-4; binned RMSE and capture curves can
    be recomputed from it.
    """
    rows = []
    for method in experiment.methods:
        for actual, predicted in experiment.pairs(method):
            rows.append([method, actual, predicted])
    write_rows(path, ["method", "actual_spread", "predicted_spread"], rows)


def export_series(
    series: Mapping[str, Sequence[tuple[float, float]]],
    path: str | os.PathLike[str],
    x_label: str = "x",
) -> None:
    """Export named (x, y) series sharing an x grid (Figures 6-9 data)."""
    names = list(series)
    if not names:
        write_rows(path, [x_label], [])
        return
    xs = [x for x, _ in series[names[0]]]
    rows = []
    for index, x in enumerate(xs):
        rows.append([x, *[series[name][index][1] for name in names]])
    write_rows(path, [x_label, *names], rows)


def export_matrix(
    names: Sequence[str],
    matrix: Mapping[tuple[str, str], int],
    path: str | os.PathLike[str],
) -> None:
    """Export a seed-overlap matrix (Table 2 / Figure 5 data)."""
    rows = [
        [first, *[matrix[(first, second)] for second in names]]
        for first in names
    ]
    write_rows(path, ["method", *names], rows)


def export_comparison(comparison, path: str | os.PathLike[str]) -> None:
    """Export a :class:`~repro.evaluation.comparison.ComparisonResult`.

    One row per model with its RMSE, CI and capture rate, followed by
    one row per ordered model pair with the paired-bootstrap verdict.
    """
    rows: list[list[object]] = []
    for report in comparison.reports:
        rows.append(
            [
                "model",
                report.name,
                "",
                report.rmse,
                report.rmse_lower,
                report.rmse_upper,
                report.capture_rate,
            ]
        )
    for (first, second), paired in comparison.pairwise.items():
        rows.append(
            [
                "pair",
                first,
                second,
                paired.difference,
                paired.ci_lower,
                paired.ci_upper,
                int(paired.significant),
            ]
        )
    write_rows(
        path,
        ["kind", "a", "b", "value", "ci_lower", "ci_upper", "extra"],
        rows,
    )


def export_noise_points(points, path: str | os.PathLike[str]) -> None:
    """Export a robustness sweep (list of
    :class:`~repro.evaluation.robustness.NoisePoint`)."""
    write_rows(
        path,
        ["noise", "overlap", "quality_ratio"],
        [[point.noise, point.overlap, point.quality_ratio] for point in points],
    )
