"""Runtime, scalability, training-size and truncation experiments.

Covers the paper's Figure 7 (runtime vs seed-set size for IC/LT/CD),
Figure 8 (runtime and memory vs number of action-log tuples), Figure 9
(solution quality vs number of tuples) and Table 4 (the truncation
threshold sweep).

Memory is reported as the credit index's entry-based estimate
(:meth:`repro.core.index.CreditIndex.estimate_memory_bytes`) — the
quantity the paper's Figure 8 (right) tracks, without OS-level RSS noise
(a documented substitution, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from repro.core.credit import TimeDecayCredit
from repro.core.maximize import cd_maximize
from repro.core.params import learn_influenceability
from repro.core.scan import scan_action_log
from repro.core.spread import CDSpreadEvaluator
from repro.data.actionlog import ActionLog
from repro.graphs.digraph import SocialGraph
from repro.maximization.celf import celf_maximize
from repro.maximization.oracle import ICSpreadOracle, LTSpreadOracle
from repro.probabilities.em import learn_ic_probabilities_em
from repro.probabilities.lt_weights import learn_lt_weights
from repro.utils.timing import Timer
from repro.utils.validation import require

__all__ = [
    "RuntimeCurves",
    "runtime_comparison",
    "ScalabilityRow",
    "scalability_experiment",
    "TruncationRow",
    "truncation_experiment",
]

User = Hashable


@dataclass
class RuntimeCurves:
    """Figure-7 data: cumulative seconds to reach each seed count."""

    curves: dict[str, list[tuple[int, float]]] = field(default_factory=dict)


def runtime_comparison(
    graph: SocialGraph,
    train_log: ActionLog,
    k: int = 50,
    num_simulations: int = 100,
    truncation: float = 0.001,
    seed: int = 7,
    methods: Sequence[str] = ("IC", "LT", "CD"),
) -> RuntimeCurves:
    """Time seed selection under IC (MC+CELF), LT (MC+CELF) and CD.

    IC and LT use the standard approach — probabilities/weights learned
    from data, then CELF greedy over Monte Carlo spread estimation.  CD
    times include the Algorithm-2 scan (its dominant cost, per the
    paper's Section 6 "Running Time" discussion).
    """
    result = RuntimeCurves()
    if "IC" in methods:
        with Timer() as learn_timer:
            probabilities = learn_ic_probabilities_em(graph, train_log).probabilities
        oracle = ICSpreadOracle(
            graph, probabilities, num_simulations=num_simulations, seed=seed
        )
        time_log: list[tuple[int, float]] = []
        celf_maximize(oracle, k, time_log=time_log)
        result.curves["IC"] = [
            (count, learn_timer.elapsed + elapsed) for count, elapsed in time_log
        ]
    if "LT" in methods:
        with Timer() as learn_timer:
            weights = learn_lt_weights(graph, train_log)
        oracle = LTSpreadOracle(
            graph, weights, num_simulations=num_simulations, seed=seed
        )
        time_log = []
        celf_maximize(oracle, k, time_log=time_log)
        result.curves["LT"] = [
            (count, learn_timer.elapsed + elapsed) for count, elapsed in time_log
        ]
    if "CD" in methods:
        with Timer() as scan_timer:
            params = learn_influenceability(graph, train_log)
            index = scan_action_log(
                graph,
                train_log,
                credit=TimeDecayCredit(params),
                truncation=truncation,
            )
        time_log = []
        cd_maximize(index, k, mutate=True, time_log=time_log)
        result.curves["CD"] = [
            (count, scan_timer.elapsed + elapsed) for count, elapsed in time_log
        ]
    return result


@dataclass
class ScalabilityRow:
    """One point of the Figures 8-9 sweeps."""

    num_tuples: int
    scan_seconds: float
    select_seconds: float
    total_seconds: float
    index_entries: int
    memory_bytes: int
    seeds: list[User]
    spread: float = 0.0
    true_seed_overlap: int = 0


def scalability_experiment(
    graph: SocialGraph,
    log: ActionLog,
    tuple_counts: Iterable[int],
    k: int = 50,
    truncation: float = 0.001,
) -> list[ScalabilityRow]:
    """Figures 8 and 9: sweep the number of training tuples.

    For each tuple budget, whole propagation traces are sampled until
    the budget is reached (``ActionLog.head_tuples``), the CD pipeline
    (parameter learning + scan + maximization) is timed, the index's
    memory is recorded, and the selected seeds are scored against the
    full log: spread under the full-log CD evaluator and overlap with
    the "true seeds" — those selected using the complete action log.
    """
    counts = sorted(set(tuple_counts))
    require(bool(counts), "tuple_counts must be non-empty")
    rows: list[ScalabilityRow] = []
    for count in counts:
        sublog = log.head_tuples(count)
        with Timer() as scan_timer:
            params = learn_influenceability(graph, sublog)
            index = scan_action_log(
                graph, sublog, credit=TimeDecayCredit(params), truncation=truncation
            )
        entries = index.total_entries
        memory = index.estimate_memory_bytes()
        with Timer() as select_timer:
            selection = cd_maximize(index, k, mutate=True)
        rows.append(
            ScalabilityRow(
                num_tuples=sublog.num_tuples,
                scan_seconds=scan_timer.elapsed,
                select_seconds=select_timer.elapsed,
                total_seconds=scan_timer.elapsed + select_timer.elapsed,
                index_entries=entries,
                memory_bytes=memory,
                seeds=selection.seeds,
            )
        )
    # Score every row against the full log (Figure 9).
    full_params = learn_influenceability(graph, log)
    evaluator = CDSpreadEvaluator(graph, log, credit=TimeDecayCredit(full_params))
    full_index = scan_action_log(
        graph, log, credit=TimeDecayCredit(full_params), truncation=truncation
    )
    true_seeds = set(cd_maximize(full_index, k, mutate=True).seeds)
    for row in rows:
        row.spread = evaluator.spread(row.seeds)
        row.true_seed_overlap = len(true_seeds & set(row.seeds))
    return rows


@dataclass
class TruncationRow:
    """One row of Table 4."""

    truncation: float
    spread: float
    true_seeds_discovered: int
    memory_bytes: int
    runtime_seconds: float
    index_entries: int
    seeds: list[User] = field(default_factory=list)


def truncation_experiment(
    graph: SocialGraph,
    log: ActionLog,
    truncations: Iterable[float],
    k: int = 50,
) -> list[TruncationRow]:
    """Table 4: sweep the truncation threshold ``lambda``.

    "True seeds" are, as in the paper, those obtained at the smallest
    threshold in the sweep; spread is measured with the exact
    (untruncated) CD evaluator so that quality differences reflect what
    the truncated index *lost*.
    """
    lambdas = sorted(set(truncations), reverse=True)
    require(bool(lambdas), "truncations must be non-empty")
    params = learn_influenceability(graph, log)
    credit = TimeDecayCredit(params)
    evaluator = CDSpreadEvaluator(graph, log, credit=credit)
    rows: list[TruncationRow] = []
    for value in lambdas:
        with Timer() as timer:
            index = scan_action_log(graph, log, credit=credit, truncation=value)
            entries = index.total_entries
            memory = index.estimate_memory_bytes()
            selection = cd_maximize(index, k, mutate=True)
        rows.append(
            TruncationRow(
                truncation=value,
                spread=evaluator.spread(selection.seeds),
                true_seeds_discovered=0,
                memory_bytes=memory,
                runtime_seconds=timer.elapsed,
                index_entries=entries,
                seeds=selection.seeds,
            )
        )
    reference = set(rows[-1].seeds)  # smallest lambda = highest fidelity
    for row in rows:
        row.true_seeds_discovered = len(reference & set(row.seeds))
    return rows
