"""repro.obs — unified tracing and metrics for pipeline, store, serving.

Two halves, both strictly out-of-band (nothing here may perturb
response bodies, stored artifacts, or any byte-determinism contract):

- :mod:`repro.obs.trace` — lightweight nested spans with monotonic
  timing and deterministic span ids, propagated through the
  :class:`~repro.runtime.executor.Executor` seam so serial, thread and
  process runs produce the same span tree shape.
- :mod:`repro.obs.metrics` — counters/gauges/histograms plus the exact
  quantile math the bench harnesses share, rendered on demand in the
  Prometheus text exposition format by ``GET /metrics``.

See ``docs/OBSERVABILITY.md`` for the span catalog and metric
vocabulary.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    default_registry,
    exact_median,
    exact_percentile,
    render_exposition,
)
from repro.obs.trace import (
    TRACE_ENV_VAR,
    Span,
    Trace,
    current_trace,
    monotonic,
    span,
    trace_enabled,
    trace_from_env,
)

__all__ = [
    "TRACE_ENV_VAR",
    "Span",
    "Trace",
    "current_trace",
    "monotonic",
    "span",
    "trace_enabled",
    "trace_from_env",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "default_registry",
    "exact_median",
    "exact_percentile",
    "render_exposition",
]
