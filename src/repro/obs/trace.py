"""Lightweight nested tracing spans with deterministic ids.

Design constraints, in order:

1. **Out-of-band.** Tracing must never perturb results.  Spans read
   clocks and append to a list; they never touch RNG state, artifact
   bytes, or response bodies.  The parity suite runs every determinism
   contract with tracing on and off and asserts bit-identity.
2. **Free when off.** ``span(...)`` with no active trace costs one
   :mod:`contextvars` read and returns a shared null object — cheap
   enough to leave in hot paths (`store.get`, kernel dispatch).
3. **Deterministic span ids.** A span's id is a blake2b digest of
   ``(trace_id, parent_id, name, index)`` where ``index`` is the
   per-(parent, name) child counter.  Two runs with the same trace id
   and the same call structure produce the same ids — and, crucially,
   the serial, thread and process executors produce the *same span
   tree* for the same work (the executor pins each task's index
   explicitly, so scheduling order cannot leak into ids).
4. **Executor-safe.** Worker threads and processes do not inherit the
   submitting context.  The :class:`~repro.runtime.executor.Executor`
   seam therefore ships an explicit :func:`export_task` token with
   each task; :func:`run_task` rebuilds a recorder around the task and
   returns its spans for :func:`absorb_task` to merge in submission
   order.

Timestamps are offsets from each recorder's construction on the
``monotonic`` clock (:func:`time.perf_counter` — the single clock
source for the whole codebase; ``utils.timing`` imports it from here).
Offsets from worker recorders are relative to the worker task's own
start, not the parent trace epoch: span *durations* are always
meaningful, cross-process start offsets are not.
"""

from __future__ import annotations

import contextvars
import hashlib
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "TRACE_ENV_VAR",
    "Span",
    "Trace",
    "absorb_task",
    "current_trace",
    "export_task",
    "monotonic",
    "run_task",
    "span",
    "trace_enabled",
    "trace_from_env",
]

TRACE_ENV_VAR = "REPRO_TRACE"

#: The single monotonic clock source.  Everything that times work —
#: spans, ``utils.timing.Timer``, the serving latency histograms —
#: reads this name so there is exactly one clock to reason about.
monotonic = time.perf_counter

# The active recorder for this context: (Trace, current span id | None).
_ACTIVE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_active", default=None
)


@dataclass
class Span:
    """One timed, named region.  Plain data; picklable across workers."""

    span_id: str
    parent_id: str | None
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    duration_s: float = 0.0
    status: str = "ok"
    error: str | None = None

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (merged into ``attrs``)."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
            "status": self.status,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.error is not None:
            payload["error"] = self.error
        return payload


class Trace:
    """A span recorder: the per-run trace id plus the collected spans.

    Spans are appended on *close*, so the list is in completion order;
    tree structure lives in the ``parent_id`` links.  Thread-safe — a
    traced thread-pool map appends from the submitting thread only,
    but direct concurrent use (e.g. a traced server) is also safe.
    """

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id if trace_id else uuid.uuid4().hex[:16]
        self.spans: list[Span] = []
        self._epoch = monotonic()
        self._lock = threading.Lock()
        self._child_counts: dict[tuple[str | None, str], int] = {}

    def span_id_for(self, parent_id: str | None, name: str, index: int) -> str:
        seed = f"{self.trace_id}/{parent_id or ''}/{name}/{index}"
        return hashlib.blake2b(seed.encode("utf-8"), digest_size=8).hexdigest()

    def next_index(self, parent_id: str | None, name: str) -> int:
        with self._lock:
            key = (parent_id, name)
            index = self._child_counts.get(key, 0)
            self._child_counts[key] = index + 1
            return index

    def record(self, recorded: Span) -> None:
        with self._lock:
            self.spans.append(recorded)

    def activate(self) -> "_Activation":
        """Context manager making this trace current for the block."""
        return _Activation(self)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "spans": [recorded.to_dict() for recorded in self.spans],
        }


class _Activation:
    __slots__ = ("_trace", "_token")

    def __init__(self, trace: Trace) -> None:
        self._trace = trace
        self._token = None

    def __enter__(self) -> Trace:
        self._token = _ACTIVE.set((self._trace, None))
        return self._trace

    def __exit__(self, *exc_info: Any) -> None:
        _ACTIVE.reset(self._token)


def current_trace() -> Trace | None:
    """The active trace in this context, or None."""
    state = _ACTIVE.get()
    return state[0] if state is not None else None


def trace_enabled() -> bool:
    return _ACTIVE.get() is not None


def trace_from_env() -> Trace | None:
    """A fresh trace if ``REPRO_TRACE`` requests one, else None.

    ``1``/``on``/``true`` get a random trace id; any other non-empty
    value is hashed into a *stable* trace id, so two runs with
    ``REPRO_TRACE=myrun`` produce identical span ids (the executor
    span-tree parity tests rely on this).
    """
    value = os.environ.get(TRACE_ENV_VAR, "").strip()
    if not value or value.lower() in ("0", "off", "false", "no"):
        return None
    if value.lower() in ("1", "on", "true", "yes"):
        return Trace()
    stable = hashlib.blake2b(value.encode("utf-8"), digest_size=8).hexdigest()
    return Trace(trace_id=stable)


class _NullSpan:
    """Shared do-nothing span handed out when tracing is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class span:
    """``with span("store.get", key=...) as sp:`` — record one region.

    When no trace is active the body runs untouched and ``sp`` is a
    shared null object.  When active, the span closes on exit — on the
    exception path too, with ``status="error"`` and the exception type
    name — and is appended to the trace.
    """

    __slots__ = ("_name", "_attrs", "_state", "_span", "_token", "_started")

    def __init__(self, name: str, **attrs: Any) -> None:
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span | _NullSpan:
        state = _ACTIVE.get()
        self._state = state
        if state is None:
            return _NULL_SPAN
        trace, parent_id = state
        index = trace.next_index(parent_id, self._name)
        opened = Span(
            span_id=trace.span_id_for(parent_id, self._name, index),
            parent_id=parent_id,
            name=self._name,
            attrs=dict(self._attrs),
            start_s=monotonic() - trace._epoch,
        )
        self._span = opened
        self._token = _ACTIVE.set((trace, opened.span_id))
        self._started = monotonic()
        return opened

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if self._state is None:
            return False
        opened = self._span
        opened.duration_s = monotonic() - self._started
        if exc_type is not None:
            opened.status = "error"
            opened.error = exc_type.__name__
        _ACTIVE.reset(self._token)
        self._state[0].record(opened)
        return False


# --------------------------------------------------------------------------
# Executor seam: explicit context hand-off to worker threads/processes.


def export_task(index: int) -> tuple[str, str | None, int] | None:
    """A picklable token carrying the trace context into task ``index``.

    None when tracing is off — :func:`run_task` then runs the task
    bare.  The token pins the task's child index explicitly, so span
    ids do not depend on which worker runs the task or when.
    """
    state = _ACTIVE.get()
    if state is None:
        return None
    trace, parent_id = state
    return (trace.trace_id, parent_id, index)


def run_task(
    token: tuple[str, str | None, int] | None,
    fn: Callable[[Any], Any],
    item: Any,
) -> tuple[Any, list[Span] | None]:
    """Run one executor task under its own span recorder.

    Returns ``(result, spans)`` where ``spans`` covers everything the
    task recorded inside an ``executor.task`` root span (None when
    tracing is off).  The recorder is local to the task, so thread and
    process workers need no shared state; ids stay deterministic
    because the root span's index comes from the token.
    """
    if token is None:
        return fn(item), None
    trace_id, parent_id, index = token
    recorder = Trace(trace_id=trace_id)
    root = Span(
        span_id=recorder.span_id_for(parent_id, "executor.task", index),
        parent_id=parent_id,
        name="executor.task",
        attrs={"index": index},
    )
    reset = _ACTIVE.set((recorder, root.span_id))
    started = monotonic()
    try:
        result = fn(item)
    except BaseException as error:
        root.status = "error"
        root.error = type(error).__name__
        raise
    finally:
        root.duration_s = monotonic() - started
        _ACTIVE.reset(reset)
        recorder.record(root)
    return result, recorder.spans


def absorb_task(spans: list[Span] | None) -> None:
    """Merge a finished task's spans into the active trace."""
    state = _ACTIVE.get()
    if state is None or not spans:
        return
    trace = state[0]
    for recorded in spans:
        trace.record(recorded)
