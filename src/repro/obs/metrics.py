"""Counters, gauges, histograms and the Prometheus text exposition.

One registry class backs every telemetry surface in the repo:

- ``repro serve`` holds a per-service :class:`Registry` (so two
  services in one process never mix counters) and renders it on
  ``GET /metrics``; ``/healthz`` reads its JSON fields back *from* the
  registry, keeping the response schema byte-compatible with the
  pre-registry servers.
- The pipeline publishes stage-duration gauges to the process-wide
  :func:`default_registry`.
- The load/soak harnesses build latency summaries through
  :meth:`Histogram.summary` instead of three private percentile
  implementations.

Quantile semantics are pinned, not approximated: the harnesses have
published reports since PR 7 using the nearest-rank formula
``sorted(samples)[min(n - 1, round(q * (n - 1)))]`` for p99 (Python
banker's rounding and all) and :func:`statistics.median` for p50.
:func:`exact_percentile` / :func:`exact_median` are those exact
functions; :meth:`Histogram.summary` composes them.  Histograms also
keep fixed cumulative buckets for exposition — buckets are for
scrapers, summaries are exact.

Rendering is deterministic: metrics in registration order, label sets
sorted, values formatted minimally.  The content type to serve with a
rendered page is :data:`EXPOSITION_CONTENT_TYPE`.
"""

from __future__ import annotations

import statistics
import threading
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "DEFAULT_BUCKETS",
    "EXPOSITION_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "default_registry",
    "exact_median",
    "exact_percentile",
    "render_exposition",
]

EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default latency ladder, in seconds: 1ms..10s covers everything from
#: a warm prefix lookup to a cold MC-evaluated select.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def exact_percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, exactly as the bench harnesses define it.

    ``sorted(samples)[min(n - 1, round(q * (n - 1)))]`` — note Python's
    banker's rounding on the index.  Raises on an empty sequence, like
    the private implementations it replaces.
    """
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def exact_median(samples: Sequence[float]) -> float:
    """p50 as :func:`statistics.median` (mean of middle two for even n)."""
    return statistics.median(samples)


def _label_key(
    labelnames: tuple[str, ...], labels: Mapping[str, Any], metric: str
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"metric {metric} takes labels {sorted(labelnames)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labelnames: tuple[str, ...], key: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(labelnames, key)
    )
    return "{" + pairs + "}"


class _Metric:
    kind = ""

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        return _label_key(self.labelnames, labels, self.name)

    def _render(self) -> Iterator[str]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count, optionally labelled."""

    kind = "counter"

    def __init__(self, name, help, labelnames, lock) -> None:
        super().__init__(name, help, labelnames, lock)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def by_label(self, labelname: str) -> dict[str, float]:
        """``{label value: count}`` projection for one label position."""
        position = self.labelnames.index(labelname)
        with self._lock:
            return {key[position]: value for key, value in self._values.items()}

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def _render(self) -> Iterator[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            # An unlabelled counter is 0 until first incremented; a
            # scraper should see the sample, not an absent series.
            yield f"{self.name} 0"
            return
        for key, value in items:
            labels = _render_labels(self.labelnames, key)
            yield f"{self.name}{labels} {_format_value(value)}"


class Gauge(_Metric):
    """A value that goes up and down (depths, durations, timestamps)."""

    kind = "gauge"

    def __init__(self, name, help, labelnames, lock) -> None:
        super().__init__(name, help, labelnames, lock)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _render(self) -> Iterator[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            yield f"{self.name} 0"
            return
        for key, value in items:
            labels = _render_labels(self.labelnames, key)
            yield f"{self.name}{labels} {_format_value(value)}"


class _Series:
    """One label set's histogram state."""

    __slots__ = ("samples", "total", "count", "bucket_counts")

    def __init__(self, num_buckets: int) -> None:
        self.samples: list[float] | None = []
        self.total = 0.0
        self.count = 0
        self.bucket_counts = [0] * num_buckets


class Histogram(_Metric):
    """Observations with exact summaries and fixed exposition buckets.

    Raw samples are retained so :meth:`summary` can reproduce the
    harnesses' exact quantiles; the cumulative buckets exist only for
    the Prometheus rendering.  Retention is bounded per label set
    (``max_samples``, default 100k — a long soak's worth): past the
    cap the sample list is dropped and quantiles report 0.0, while
    buckets, sum and count stay exact forever.
    """

    kind = "histogram"

    def __init__(
        self,
        name,
        help,
        labelnames,
        lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_samples: int = 100_000,
    ) -> None:
        super().__init__(name, help, labelnames, lock)
        self.buckets = tuple(sorted(float(edge) for edge in buckets))
        self.max_samples = max_samples
        self._series: dict[tuple[str, ...], _Series] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Series(len(self.buckets))
            series.total += value
            series.count += 1
            # Cumulative `le` semantics: a value lands in every bucket
            # whose edge is >= it.
            for position, edge in enumerate(self.buckets):
                if value <= edge:
                    series.bucket_counts[position] += 1
            if series.samples is not None:
                series.samples.append(value)
                if len(series.samples) > self.max_samples:
                    series.samples = None

    def samples(self, **labels: Any) -> list[float]:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return list(series.samples or ()) if series else []

    def count(self, **labels: Any) -> int:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series.count if series else 0

    def percentile(self, q: float, **labels: Any) -> float:
        return exact_percentile(self.samples(**labels), q)

    def median(self, **labels: Any) -> float:
        return exact_median(self.samples(**labels))

    def summary(self, **labels: Any) -> dict[str, float]:
        """``{count, mean, p50, p99}`` with the harnesses' exact math.

        p50 is :func:`exact_median`, p99 :func:`exact_percentile` —
        byte-for-byte the numbers ``bench_serve_load``/``bench_soak``
        reported before deduplication.  Empty series summarize to
        zeros rather than raising.
        """
        values = self.samples(**labels)
        if not values:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0}
        return {
            "count": len(values),
            "mean": statistics.fmean(values),
            "p50": exact_median(values),
            "p99": exact_percentile(values, 0.99),
        }

    def _render(self) -> Iterator[str]:
        with self._lock:
            items = sorted(
                (key, list(series.bucket_counts), series.total, series.count)
                for key, series in self._series.items()
            )
        for key, bucket_counts, total, count in items:
            for edge, cumulative in zip(self.buckets, bucket_counts):
                labels = _render_labels(
                    self.labelnames + ("le",), key + (_format_value(edge),)
                )
                yield f"{self.name}_bucket{labels} {cumulative}"
            labels = _render_labels(self.labelnames + ("le",), key + ("+Inf",))
            yield f"{self.name}_bucket{labels} {count}"
            plain = _render_labels(self.labelnames, key)
            yield f"{self.name}_sum{plain} {_format_value(total)}"
            yield f"{self.name}_count{plain} {count}"


class Registry:
    """A named collection of metrics with get-or-create registration."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls, name, help, labelnames, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, threading.Lock(), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """This registry alone in Prometheus text format."""
        return render_exposition(self)


def render_exposition(*registries: Registry) -> str:
    """Concatenate registries into one Prometheus text page.

    Serve with ``Content-Type:`` :data:`EXPOSITION_CONTENT_TYPE`.
    Later registries' duplicate metric names are skipped (a service
    registry listed first wins over the process-wide default).
    """
    lines: list[str] = []
    seen: set[str] = set()
    for registry in registries:
        with registry._lock:
            metrics = list(registry._metrics.values())
        for metric in metrics:
            if metric.name in seen:
                continue
            seen.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric._render())
    return "\n".join(lines) + "\n" if lines else ""


_DEFAULT = Registry()


def default_registry() -> Registry:
    """The process-wide registry (pipeline stage gauges land here)."""
    return _DEFAULT
