"""repro.faults — deterministic fault injection and crash-consistency.

The reliability layer of the store/stream/serve stack:

* :mod:`repro.faults.plan` — :class:`FaultPlan`/:class:`FaultSpec`, a
  seeded, replayable schedule of faults, parseable from the
  ``REPRO_FAULTS`` environment variable;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, a
  :class:`~repro.store.io.StoreIO` implementation that simulates torn
  writes, ``ENOSPC``, ``EIO``, crash-at-step-N and service-level faults
  (slow evaluation, worker death, ingest failure) on that schedule;
* :mod:`repro.faults.sweep` — kill-point sweeps: die after every write
  step of a store mutation, reopen, and assert the fully-old-or-fully-new
  invariant plus lineage safety;
* :mod:`repro.faults.soak` — the sustained chaos harness behind
  ``repro soak`` / ``benchmarks/bench_soak.py`` and the committed
  ``STRESS_TEST_REPORT.md``.

See ``docs/RELIABILITY.md`` for the failure-mode matrix this package
enforces.
"""

from repro.faults.injector import CrashPoint, FaultInjector, WorkerDied
from repro.faults.plan import FaultPlan, FaultSpec, parse_fault_plan
from repro.faults.soak import (
    DEFAULT_PLAN,
    SoakConfig,
    render_report,
    run_soak,
)
from repro.faults.sweep import (
    CrashAtStep,
    SweepReport,
    crash_consistency_sweep,
    lineage_invariant_problems,
)

__all__ = [
    "DEFAULT_PLAN",
    "SoakConfig",
    "render_report",
    "run_soak",
    "CrashPoint",
    "FaultInjector",
    "WorkerDied",
    "FaultPlan",
    "FaultSpec",
    "parse_fault_plan",
    "CrashAtStep",
    "SweepReport",
    "crash_consistency_sweep",
    "lineage_invariant_problems",
]
