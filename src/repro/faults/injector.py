"""The fault injector: a :class:`~repro.store.io.StoreIO` that fails on cue.

:class:`FaultInjector` implements the store's I/O seam *and* the
service-level ``fire`` hook, consulting a
:class:`~repro.faults.plan.FaultPlan` before delegating each operation
to an inner (real) :class:`~repro.store.io.StoreIO`.  Decisions are
deterministic — per-site operation counters plus per-spec seeded RNG
streams — so a chaos run can be replayed exactly from its plan text,
and a kill-point sweep can enumerate ``replace:crash@n=1..N``.

Two exception types model the non-errno faults:

* :class:`CrashPoint` derives from :class:`BaseException` on purpose —
  it simulates *process death*, so no ``except Exception`` handler in
  the library may swallow it.  Only the kill-point sweep (and tests)
  catch it, at the same place a monitor would observe the process gone.
* :class:`WorkerDied` is an ordinary :class:`RuntimeError`: it models a
  service worker thread dying, which the serving layer is expected to
  survive and degrade around (503 + restart), not to propagate.

The injector is thread-safe: the serving stack calls it from many
request threads, and counter updates/draws happen under one lock.
"""

from __future__ import annotations

import errno
import threading
import time
from pathlib import Path
from typing import Any, BinaryIO

from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import trace as obs_trace
from repro.store.io import StoreIO

__all__ = ["CrashPoint", "WorkerDied", "FaultInjector"]


class CrashPoint(BaseException):
    """The simulated process death of a ``crash`` fault.

    A ``BaseException`` so library code that defensively catches
    ``Exception`` cannot accidentally "survive" a crash — after a real
    power cut there is no handler left to run either.
    """

    def __init__(self, site: str, step: int) -> None:
        super().__init__(f"simulated crash at {site} step {step}")
        self.site = site
        self.step = step


class WorkerDied(RuntimeError):
    """The simulated death of a background service worker."""


class FaultInjector(StoreIO):
    """A :class:`StoreIO` (plus service hook) driven by a fault plan."""

    def __init__(self, plan: FaultPlan, inner: StoreIO | None = None) -> None:
        self.plan = plan
        self.inner = inner if inner is not None else StoreIO()
        self._lock = threading.Lock()
        self._site_steps: dict[str, int] = {}
        self._spec_fires: dict[int, int] = {}
        self._spec_rngs = {
            index: plan.spec_rng(spec)
            for index, spec in enumerate(plan.specs)
        }
        # Every fired fault, in firing order: (site, kind, site step).
        # The soak report renders this; tests assert determinism on it.
        self.fired: list[tuple[str, str, int]] = []

    # ------------------------------------------------------------------
    # Decision core
    # ------------------------------------------------------------------
    def _due(self, site: str) -> list[tuple[FaultSpec, int]]:
        """Advance ``site``'s step counter; return the specs that fire."""
        due: list[tuple[FaultSpec, int]] = []
        with self._lock:
            step = self._site_steps.get(site, 0) + 1
            self._site_steps[site] = step
            for index, spec in enumerate(self.plan.specs):
                if spec.site != site:
                    continue
                fires = self._spec_fires.get(index, 0)
                if spec.at_step is not None:
                    hit = step == spec.at_step and fires == 0
                else:
                    if spec.max_fires is not None and fires >= spec.max_fires:
                        continue
                    hit = (
                        self._spec_rngs[index].random() < spec.probability
                    )
                if hit:
                    self._spec_fires[index] = fires + 1
                    self.fired.append((site, spec.kind, step))
                    due.append((spec, step))
        return due

    def _raise_for(self, spec: FaultSpec, site: str, step: int) -> None:
        if spec.kind == "eio":
            raise OSError(errno.EIO, f"injected EIO at {site} step {step}")
        if spec.kind == "enospc":
            raise OSError(
                errno.ENOSPC, f"injected ENOSPC at {site} step {step}"
            )
        if spec.kind == "crash":
            raise CrashPoint(site, step)
        if spec.kind == "die":
            raise WorkerDied(f"injected worker death at {site} step {step}")
        if spec.kind == "error":
            raise RuntimeError(
                f"injected failure at {site} step {step}"
            )

    def _check(self, site: str) -> list[tuple[FaultSpec, int]]:
        """Fire non-write faults for ``site``; return torn specs (if any).

        ``delay`` sleeps here (outside the lock); error kinds raise.
        ``torn`` is returned to the caller, because only ``write`` can
        act on it (it needs the data in hand).
        """
        torn: list[tuple[FaultSpec, int]] = []
        for spec, step in self._due(site):
            # The span wraps the fault's *effect* (sleep or raise), so an
            # error-kind fault closes it on the exception path with the
            # raised type recorded — the trace shows exactly which
            # injected fault tore through which operation.
            with obs_trace.span(
                "fault.fire", site=site, kind=spec.kind, step=step
            ):
                if spec.kind == "delay":
                    time.sleep(spec.delay_s)
                elif spec.kind == "torn":
                    torn.append((spec, step))
                else:
                    self._raise_for(spec, site, step)
        return torn

    # ------------------------------------------------------------------
    # StoreIO surface
    # ------------------------------------------------------------------
    def open_write(self, path: Path) -> BinaryIO:
        self._check("open")
        return self.inner.open_write(path)

    def write(self, handle: BinaryIO, data: bytes) -> None:
        torn = self._check("write")
        if torn:
            # A torn write: half the bytes land, then the device errors.
            # Combined with a crash this is the classic partial temp
            # file; alone it surfaces as EIO the writer must handle.
            self.inner.write(handle, data[: max(1, len(data) // 2)])
            spec, step = torn[0]
            raise OSError(
                errno.EIO, f"injected torn write at step {step}"
            )
        self.inner.write(handle, data)

    def fsync(self, handle: BinaryIO) -> None:
        self._check("fsync")
        self.inner.fsync(handle)

    def replace(self, source: Path, target: Path) -> None:
        self._check("replace")
        self.inner.replace(source, target)

    def fsync_dir(self, directory: Path) -> None:
        self._check("fsync_dir")
        self.inner.fsync_dir(directory)

    def read_bytes(self, path: Path) -> bytes:
        self._check("read")
        return self.inner.read_bytes(path)

    # ------------------------------------------------------------------
    # Service-level hook
    # ------------------------------------------------------------------
    def fire(self, site: str, **info: Any) -> None:
        """Consult the plan at a named service site (may sleep or raise)."""
        self._check(site)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Fired-fault counts by ``site:kind`` plus per-site op totals."""
        with self._lock:
            by_fault: dict[str, int] = {}
            for site, kind, _ in self.fired:
                label = f"{site}:{kind}"
                by_fault[label] = by_fault.get(label, 0) + 1
            return {
                "plan": self.plan.describe(),
                "fired": by_fault,
                "total_fired": len(self.fired),
                "operations": dict(self._site_steps),
            }
