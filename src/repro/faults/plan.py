"""Deterministic fault schedules: what fails, where, when.

A :class:`FaultPlan` is a seed plus a list of :class:`FaultSpec`
entries.  Each spec names an injection *site* (an I/O operation of the
store seam — ``open``, ``write``, ``fsync``, ``replace``, ``fsync_dir``,
``read`` — or a service-level hook such as ``serve.spread``), a fault
*kind*, and a trigger: either a per-operation probability or an exact
1-based operation index (crash-at-step-N).  The plan is **fully
deterministic**: probabilistic triggers draw from a per-spec
:class:`random.Random` stream seeded via
:func:`repro.utils.rng.derive_seed`, and step triggers count matching
operations — the same plan against the same operation sequence always
fires the same faults, which is what makes chaos runs replayable and
kill-point sweeps enumerable.

Plan text (the ``REPRO_FAULTS`` environment format) is a ``;``-separated
list — ``seed=N`` first (optional, default 0), then one clause per
spec::

    site:kind[@p=0.01][@n=14][@delay=0.05][@max=3]

Examples::

    seed=7;read:eio@p=0.02;write:enospc@p=0.01
    replace:crash@n=3                       # die at the 3rd rename
    serve.spread:delay@delay=0.05@p=0.25    # slow 25% of evaluations
    serve.worker:die@n=10                   # kill the coalescer worker

Kinds: ``eio`` / ``enospc`` (the matching :class:`OSError`), ``torn``
(write only half the bytes, then ``EIO``), ``crash`` (raise
:class:`~repro.faults.injector.CrashPoint`, modelling process death),
``delay`` (sleep ``delay`` seconds), ``die`` (raise
:class:`~repro.faults.injector.WorkerDied`), ``error`` (a generic
:class:`RuntimeError`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro.utils.rng import derive_seed

__all__ = [
    "IO_SITES",
    "SERVICE_SITES",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "parse_fault_plan",
]

IO_SITES = ("open", "write", "fsync", "replace", "fsync_dir", "read")
SERVICE_SITES = ("serve.spread", "serve.worker", "serve.ingest")
FAULT_KINDS = ("eio", "enospc", "torn", "crash", "delay", "die", "error")


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: fire ``kind`` at ``site`` per its trigger.

    Exactly one trigger is active: ``at_step`` (fire on the N-th
    matching operation, 1-based) wins over ``probability`` when both
    are given.  ``max_fires`` bounds how often a probabilistic rule
    fires (``None`` = unbounded); a step rule fires exactly once.
    """

    site: str
    kind: str
    probability: float = 0.0
    at_step: int | None = None
    delay_s: float = 0.0
    max_fires: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.at_step is not None and self.at_step < 1:
            raise ValueError(f"at_step is 1-based, got {self.at_step}")
        if self.at_step is None and self.probability == 0.0:
            raise ValueError(
                f"spec {self.site}:{self.kind} has no trigger "
                "(give @p=... or @n=...)"
            )
        if self.delay_s < 0.0:
            raise ValueError(f"delay must be >= 0, got {self.delay_s}")


@dataclass
class FaultPlan:
    """A seed and the fault rules it deterministically drives."""

    seed: int = 0
    specs: list[FaultSpec] = field(default_factory=list)

    def specs_for(self, site: str) -> list[FaultSpec]:
        return [spec for spec in self.specs if spec.site == site]

    def spec_rng(self, spec: FaultSpec) -> random.Random:
        """The private decision stream of one spec (stable per plan).

        Keyed by the spec's identity, not its list position, so adding
        an unrelated rule to a plan does not reshuffle when an existing
        rule fires.
        """
        return random.Random(
            derive_seed(
                self.seed, spec.site, spec.kind, spec.probability,
                spec.at_step, spec.max_fires,
            )
        )

    def describe(self) -> str:
        clauses = [f"seed={self.seed}"]
        for spec in self.specs:
            clause = f"{spec.site}:{spec.kind}"
            if spec.at_step is not None:
                clause += f"@n={spec.at_step}"
            elif spec.probability:
                clause += f"@p={spec.probability:g}"
            if spec.delay_s:
                clause += f"@delay={spec.delay_s:g}"
            if spec.max_fires is not None:
                clause += f"@max={spec.max_fires}"
            clauses.append(clause)
        return ";".join(clauses)


def _parse_clause(clause: str) -> FaultSpec:
    head, *modifiers = [part.strip() for part in clause.split("@")]
    if ":" not in head:
        raise ValueError(
            f"bad fault clause {clause!r}: expected 'site:kind[@...]'"
        )
    site, kind = (part.strip() for part in head.split(":", 1))
    fields: dict[str, object] = {"site": site, "kind": kind}
    for modifier in modifiers:
        if "=" not in modifier:
            raise ValueError(
                f"bad fault modifier {modifier!r} in {clause!r}"
            )
        name, value = (part.strip() for part in modifier.split("=", 1))
        try:
            if name == "p":
                fields["probability"] = float(value)
            elif name == "n":
                fields["at_step"] = int(value)
            elif name == "delay":
                fields["delay_s"] = float(value)
            elif name == "max":
                fields["max_fires"] = int(value)
            else:
                raise ValueError(f"unknown fault modifier {name!r}")
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"bad fault modifier {modifier!r} in {clause!r}: {error}"
            ) from None
    return FaultSpec(**fields)  # type: ignore[arg-type]


def parse_fault_plan(text: str | Iterable[str]) -> FaultPlan:
    """Parse plan text (the ``REPRO_FAULTS`` format) into a plan."""
    clauses = (
        [part for part in text.split(";")]
        if isinstance(text, str)
        else list(text)
    )
    seed = 0
    specs: list[FaultSpec] = []
    for clause in clauses:
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause.removeprefix("seed="))
            except ValueError:
                raise ValueError(f"bad fault-plan seed {clause!r}") from None
            continue
        specs.append(_parse_clause(clause))
    return FaultPlan(seed=seed, specs=specs)
