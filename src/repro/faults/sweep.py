"""Crash-consistency kill-point sweeps: die after *every* write step.

The store's durability story is "record-as-commit": payload before
manifest, artifacts before context record, prefix artifact before
record row — so a crash at any point leaves the previous state fully
visible or the new state fully visible, never a torn hybrid.  This
module turns that claim into an enumerable check instead of a comment:

1. run the operation once against a step-counting I/O seam to learn
   how many physical write steps (open/write/fsync/replace/fsync_dir)
   it performs;
2. for every step N, restore a pristine copy of the starting store,
   re-run the operation with an injector that dies (raises
   :class:`~repro.faults.injector.CrashPoint`) immediately after step
   N, then **reopen the store with clean I/O** — the reboot — and run
   the caller's invariant check plus the built-in lineage checks;
3. run once more to completion and check the fully-new state.

:func:`lineage_invariant_problems` is the built-in postcondition every
trial must satisfy: each readable context record is fully materialized
(graph, artifacts through their ``artifact_sources`` aliases, every
listed selection prefix), ``gc`` collects only garbage (the same
records remain fully loadable afterwards), and an age-expiry ``gc``
under :func:`~repro.stream.derive.referenced_context_keys` protection
would never remove an entry a surviving bundle still references.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO, Callable

from repro.faults.injector import CrashPoint
from repro.store.io import StoreIO
from repro.store.keys import artifact_key
from repro.store.store import ArtifactStore, StoreError

__all__ = [
    "WRITE_SITES",
    "CrashAtStep",
    "SweepReport",
    "lineage_invariant_problems",
    "crash_consistency_sweep",
]

# The physical write path, in the order _replace_into drives it.  Reads
# are deliberately absent: a crash cannot corrupt what it only read.
WRITE_SITES = ("open", "write", "fsync", "replace", "fsync_dir")


class CrashAtStep(StoreIO):
    """Count write-path operations; die right after the ``crash_at``-th.

    With ``crash_at=None`` it only counts — the sweep's measuring pass.
    ``trace`` records ``(site, path)`` per step so a violation report
    can say *which* write the store died after.
    """

    def __init__(self, crash_at: int | None = None) -> None:
        self.crash_at = crash_at
        self.steps = 0
        self.trace: list[tuple[str, str]] = []
        self._inner = StoreIO()

    def _step(self, site: str, path: Path | str) -> None:
        self.steps += 1
        self.trace.append((site, str(path)))
        if self.crash_at is not None and self.steps >= self.crash_at:
            raise CrashPoint(site, self.steps)

    def open_write(self, path: Path) -> BinaryIO:
        handle = self._inner.open_write(path)
        try:
            self._step("open", path)
        except CrashPoint:
            handle.close()  # the "process" is gone; don't leak the fd
            raise
        return handle

    def write(self, handle: BinaryIO, data: bytes) -> None:
        self._inner.write(handle, data)
        self._step("write", handle.name)

    def fsync(self, handle: BinaryIO) -> None:
        self._inner.fsync(handle)
        self._step("fsync", handle.name)

    def replace(self, source: Path, target: Path) -> None:
        self._inner.replace(source, target)
        self._step("replace", target)

    def fsync_dir(self, directory: Path) -> None:
        self._inner.fsync_dir(directory)
        self._step("fsync_dir", directory)

    def read_bytes(self, path: Path) -> bytes:
        return self._inner.read_bytes(path)


@dataclass
class SweepReport:
    """What a sweep observed: one trial per kill point, plus the clean run."""

    steps: int
    trials: list[dict[str, Any]] = field(default_factory=list)
    violations: list[dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "write_steps": self.steps,
            "trials": len(self.trials),
            "violations": self.violations,
            "ok": self.ok,
        }


def lineage_invariant_problems(store: ArtifactStore) -> list[str]:
    """Violations of the store's crash/lineage postconditions (see module doc).

    Empty list = healthy.  Runs a real (non-dry) broken-entry ``gc`` as
    part of the check — the reboot's first maintenance pass — so a
    caller's store is mutated exactly the way a recovering deployment's
    would be.
    """
    from repro.store.warm import (
        CONTEXT_RECORD,
        GRAPH_ARTIFACT,
        artifact_source_key,
        list_context_records,
    )
    from repro.stream.derive import referenced_context_keys

    problems: list[str] = []

    def _materialized(record: dict[str, Any], phase: str) -> None:
        ckey = record["context_key"]
        names = [GRAPH_ARTIFACT, *record.get("artifacts", [])]
        for name in names:
            source = artifact_source_key(record, name)
            try:
                store.get(artifact_key(source, name))
            except StoreError as error:
                problems.append(
                    f"{phase}: record {ckey[:12]} references {name!r} "
                    f"which does not load: {error}"
                )
        for row in record.get("prefixes", []):
            try:
                value = store.get(artifact_key(ckey, row["name"]))
            except StoreError as error:
                problems.append(
                    f"{phase}: record {ckey[:12]} lists prefix "
                    f"{row['name']!r} which does not load: {error}"
                )
                continue
            if getattr(value, "k_max", None) != row.get("k_max"):
                problems.append(
                    f"{phase}: prefix {row['name']!r} of {ckey[:12]} is "
                    f"torn: artifact k_max={getattr(value, 'k_max', None)} "
                    f"!= recorded k_max={row.get('k_max')}"
                )

    records = list_context_records(store)
    for record in records:
        _materialized(record, "post-crash")

    # The reboot's maintenance pass: collecting broken entries must not
    # take anything a readable record still needs.
    store.gc()
    for record in list_context_records(store):
        _materialized(record, "post-gc")

    # Age expiry under lineage protection must never list an entry that
    # a surviving bundle references (directly or via artifact_sources).
    protected = referenced_context_keys(store)
    would_remove = store.gc(
        older_than_s=0.0, dry_run=True, protect_contexts=protected
    )
    removable = {key for key in would_remove if "/" not in key}
    for key in removable:
        try:
            entry = store.entry(key)
        except StoreError:
            continue
        context = entry.meta.get("context")
        if context in protected:
            problems.append(
                f"age-expiry gc would orphan entry {key[:12]} "
                f"({entry.meta.get('artifact')}) still referenced by a "
                f"live bundle under context {str(context)[:12]}"
            )
    # Do not also flag CONTEXT_RECORD removals: an unreferenced bundle
    # (no derived children) is legitimately expirable as a whole.
    del CONTEXT_RECORD
    return problems


def crash_consistency_sweep(
    template: str | Path,
    operation: Callable[[ArtifactStore], Any],
    check: Callable[[ArtifactStore, int | None], None] | None = None,
    *,
    workdir: str | Path,
    max_steps: int | None = None,
) -> SweepReport:
    """Kill the store after every write step of ``operation``; verify each.

    ``template`` is the prepared starting store root; every trial runs
    against a fresh copy under ``workdir``.  ``operation`` receives the
    trial's store (it should resolve records/inputs from the store
    itself, so each trial is self-contained).  ``check(store, crashed_at)``
    runs on the reopened store after every kill point — and once with
    ``crashed_at=None`` after the uninterrupted run — *in addition to*
    the built-in :func:`lineage_invariant_problems`; raise
    ``AssertionError`` to flag a scenario-specific violation.
    ``max_steps`` caps the enumeration (tests on big operations).
    """
    template = Path(template)
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    def _fresh(tag: str) -> Path:
        root = workdir / f"trial-{tag}"
        if root.exists():
            shutil.rmtree(root)
        shutil.copytree(template, root)
        return root

    # Measuring pass: how many write steps does the operation perform?
    counter = CrashAtStep(crash_at=None)
    count_root = _fresh("count")
    operation(ArtifactStore(count_root, io=counter))
    total = counter.steps
    shutil.rmtree(count_root, ignore_errors=True)
    report = SweepReport(steps=total)

    kill_points = range(1, total + 1)
    if max_steps is not None and total > max_steps:
        # Deterministic thinning: always cover the first/last writes,
        # stride the middle.  (Tests pass no cap; this is an escape
        # hatch for very large operations.)
        stride = max(1, total // max_steps)
        kill_points = sorted(
            {*range(1, total + 1, stride), 1, total}
        )

    for step in list(kill_points) + [None]:
        tag = "clean" if step is None else str(step)
        root = _fresh(tag)
        io = CrashAtStep(crash_at=step)
        crashed = False
        try:
            operation(ArtifactStore(root, io=io))
        except CrashPoint:
            crashed = True
        trial: dict[str, Any] = {
            "crashed_at": step,
            "site": io.trace[-1][0] if (step and io.trace) else None,
            "path": io.trace[-1][1] if (step and io.trace) else None,
        }
        if step is not None and not crashed:
            report.violations.append(
                {**trial, "problem": "kill point never reached"}
            )
            report.trials.append(trial)
            continue
        reopened = ArtifactStore(root)  # clean I/O: the post-reboot view
        problems = lineage_invariant_problems(reopened)
        if check is not None:
            try:
                check(reopened, step)
            except AssertionError as error:
                problems = problems + [f"scenario check: {error}"]
        if problems:
            report.violations.append({**trial, "problems": problems})
        trial["ok"] = not problems
        report.trials.append(trial)
        shutil.rmtree(root, ignore_errors=True)
    return report
