"""Sustained chaos soak: mixed live traffic + injected faults + audits.

The harness behind ``repro soak`` and ``benchmarks/bench_soak.py``:
stand up a real :func:`~repro.store.service.make_server` over a
populated store **with a fault injector mounted on the store's I/O
seam**, drive minutes of mixed ``/select`` / ``/spread`` / ``/predict``
/ ``/ingest`` traffic from concurrent workers, and hold the service to
its degradation contract the whole time:

* every failure a client sees is an explicit **503 with Retry-After**
  (shed load), never a 500 — ``non_503_5xx == 0``;
* successful responses stay **byte-deterministic**: identical requests
  against the same serving context return identical payloads, faults
  or no faults;
* after the dust settles, :func:`repro.store.verify.verify_store`
  finds zero integrity errors — injected ingest failures may orphan
  re-derivable entries, but nothing torn and nothing dangling.

Everything is seeded (the fault plan, the traffic mix, the retry
jitter), so a failing soak replays exactly from its recorded config.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.faults.injector import FaultInjector
from repro.obs.metrics import exact_median, exact_percentile
from repro.faults.plan import parse_fault_plan
from repro.store.store import ArtifactStore
from repro.utils.retry import RetryPolicy
from repro.utils.rng import derive_seed

__all__ = [
    "DEFAULT_PLAN",
    "SoakConfig",
    "prepare_store",
    "run_soak",
    "render_report",
]

# The default chaos mix: transient read errors (exercises the retry
# policy), slow and failing spread evaluations, periodic evaluation-
# worker death, and ingest derives that blow up mid-flight.  All
# bounded (@max) so a long soak degrades intermittently, not terminally.
DEFAULT_PLAN = (
    "read:eio@p=0.01@max=25;"
    "serve.spread:delay@p=0.05@delay=0.02;"
    "serve.spread:error@p=0.02@max=10;"
    "serve.worker:die@p=0.01@max=5;"
    "serve.ingest:error@p=0.5@max=4"
)


@dataclass
class SoakConfig:
    """One soak run, fully determined by its fields."""

    duration_s: float = 60.0
    workers: int = 6
    seed: int = 11
    plan: str = DEFAULT_PLAN
    k_max: int = 5
    ingest_period_s: float = 3.0
    # Shorter than production so a wedged engine surfaces inside the run.
    evaluation_timeout_s: float = 15.0

    def plan_text(self) -> str:
        if self.plan.startswith("seed="):
            return self.plan
        return f"seed={self.seed};{self.plan}" if self.plan else f"seed={self.seed}"


def prepare_store(root: str, scale: str = "mini", k_max: int = 5) -> None:
    """Populate ``root`` with a full serving bundle + a cd prefix.

    The same recipe the serving tests and load bench use: one
    experiment run to commit the bundle, a warm start for the
    prediction artifacts, and a precomputed ``cd`` selection prefix so
    the soak's ``/select`` traffic exercises the warm path.
    """
    from repro.api import ExperimentConfig, SelectionContext, run_experiment
    from repro.data.datasets import flixster_like
    from repro.data.split import train_test_split
    from repro.store.prefix import precompute_prefix
    from repro.store.warm import (
        load_context_record,
        load_serving_context,
        warm_start,
    )

    dataset = flixster_like(scale)
    run_experiment(
        ExperimentConfig(
            dataset="flixster", scale=scale, selectors=["cd"],
            ks=[min(3, k_max)], seed=11, store=root,
        ),
        dataset=dataset,
    )
    train, _ = train_test_split(dataset.log, every=5)
    context = SelectionContext(dataset.graph, train, seed=11)
    warm_start(
        ArtifactStore(root),
        context,
        ["ic_probabilities/EM", "lt_weights"],
        dataset=dataset,
        split={"split": True, "every": 5},
        dataset_name=dataset.name,
    )
    store = ArtifactStore(root, create=False)
    record = load_context_record(store)
    serving = load_serving_context(store, record)
    precompute_prefix(store, record, serving, "cd", k_max)


class _Traffic:
    """Thread-shared tallies for one soak run."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.statuses: dict[int, int] = {}
        self.samples: dict[str, list[float]] = {}
        # determinism: key -> set of 200-response bodies.  Keys include
        # the response's serving context, because /ingest legitimately
        # swaps the default context mid-run.
        self.bodies: dict[str, set[str]] = {}
        self.transport_errors = 0
        self.ingest: dict[str, int] = {
            "accepted": 0, "conflict_409": 0, "shed_503": 0,
        }

    def record(self, endpoint: str, status: int, elapsed_ms: float,
               key: str | None, body: str | None) -> None:
        with self.lock:
            self.statuses[status] = self.statuses.get(status, 0) + 1
            self.samples.setdefault(endpoint, []).append(elapsed_ms)
            if status == 200 and key is not None and body is not None:
                self.bodies.setdefault(key, set()).add(body)


def _request(port: int, method: str, path: str,
             payload: dict | None = None, timeout: float = 120.0):
    """One HTTP exchange; returns ``(status, body_text)``."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        connection.close()


def _worker(port: int, worker_id: int, deadline: float, config: SoakConfig,
            seeds: list, base_context: str | None,
            traffic: _Traffic) -> None:
    import random

    rng = random.Random(derive_seed(config.seed, "soak-worker", worker_id))
    methods = ("CD", "IC", "LT")
    while time.monotonic() < deadline:
        roll = rng.random()
        if roll < 0.45:
            k = rng.randrange(1, config.k_max + 1)
            endpoint, payload = "/select", {"selector": "cd", "k": k}
            tag = f"select:k={k}"
        elif roll < 0.65:
            endpoint, payload = "/spread", {"seeds": seeds}
            tag = "spread"
        elif roll < 0.9:
            method = methods[rng.randrange(3)]
            endpoint = "/predict"
            payload = {"seeds": seeds, "method": method}
            tag = f"predict:{method}"
        else:
            endpoint, payload, tag = "/healthz", None, None
        if payload is not None and base_context is not None:
            payload = {**payload, "context": base_context}
        started = time.perf_counter()
        try:
            if payload is None:
                status, body = _request(port, "GET", endpoint)
            else:
                status, body = _request(port, "POST", endpoint, payload)
        except OSError:
            with traffic.lock:
                traffic.transport_errors += 1
            continue
        elapsed_ms = (time.perf_counter() - started) * 1000
        key = None
        if tag is not None and status == 200:
            # Key the determinism check by (request, serving context):
            # the context field says which bundle answered.
            try:
                context = json.loads(body).get("context", "")
            except ValueError:
                context = "?"
            key = f"{tag}@{context}"
        traffic.record(endpoint.lstrip("/"), status, elapsed_ms, key,
                       body if status == 200 else None)


def _ingester(port: int, deadline: float, config: SoakConfig,
              base_context: str | None, traffic: _Traffic) -> None:
    """Fire a small deterministic delta every period; tolerate 409/503."""
    index = 0
    while time.monotonic() < deadline:
        base_time = 100.0 + index
        payload: dict[str, Any] = {
            "tuples": [
                [1, 9000 + index, base_time],
                [2, 9000 + index, base_time + 1.0],
                [3, 9000 + index, base_time + 2.0],
            ],
        }
        if base_context is not None:
            payload["context"] = base_context
        try:
            status, _ = _request(port, "POST", "/ingest", payload)
        except OSError:
            with traffic.lock:
                traffic.transport_errors += 1
            status = None
        with traffic.lock:
            if status is not None:
                traffic.statuses[status] = traffic.statuses.get(status, 0) + 1
            if status == 200:
                traffic.ingest["accepted"] += 1
            elif status == 409:
                traffic.ingest["conflict_409"] += 1
            elif status == 503:
                traffic.ingest["shed_503"] += 1
        index += 1
        time.sleep(config.ingest_period_s)


def _settle_ingests(port: int, timeout_s: float = 120.0) -> list[dict]:
    """Wait for background ingest jobs to leave the 'running' state."""
    deadline = time.monotonic() + timeout_s
    jobs: list[dict] = []
    while time.monotonic() < deadline:
        try:
            status, body = _request(port, "GET", "/ingest")
        except OSError:
            time.sleep(0.2)
            continue
        if status == 200:
            jobs = json.loads(body).get("ingests", [])
            if not any(job.get("status") == "running" for job in jobs):
                return jobs
        time.sleep(0.2)
    return jobs


def run_soak(store_root: str, config: SoakConfig | None = None) -> dict[str, Any]:
    """Run one chaos soak against ``store_root``; return the report dict.

    The report's ``failures`` list is empty iff the run met the
    contract (zero non-503 5xx, byte-determinism, zero post-run
    integrity errors, no transport errors).
    """
    from repro.store.service import make_server
    from repro.store.verify import verify_store

    config = config or SoakConfig()
    injector = FaultInjector(parse_fault_plan(config.plan_text()))
    server = make_server(
        store_root,
        port=0,
        io=injector,
        evaluation_timeout=config.evaluation_timeout_s,
        retry=RetryPolicy(seed=derive_seed(config.seed, "soak-retry")),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    traffic = _Traffic()
    started = time.monotonic()
    try:
        # Bootstrap: a seed set for the spread/predict legs.  Retried —
        # the very first request is as fault-exposed as any other.  On
        # a store with several contexts (a previous soak's ingests), a
        # keyless /select is ambiguous (404); resolve the deepest
        # lineage — the most current bundle — and pin every request to
        # it.  A single-context store keeps context=None, which also
        # exercises the default-swap path on ingest.
        seeds: list | None = None
        base_context: str | None = None
        for _ in range(20):
            payload = {"selector": "cd", "k": 3}
            if base_context is not None:
                payload["context"] = base_context
            try:
                status, body = _request(port, "POST", "/select", payload)
            except OSError:
                time.sleep(0.1)
                continue
            if status == 200:
                seeds = json.loads(body)["selection"]["seeds"]
                break
            if status == 404 and base_context is None:
                try:
                    ctx_status, ctx_body = _request(port, "GET", "/contexts")
                except OSError:
                    ctx_status = None
                if ctx_status == 200:
                    records = json.loads(ctx_body).get("contexts", [])
                    if len(records) > 1:
                        best = max(
                            records,
                            key=lambda r: (
                                int(r.get("lineage_depth", 0)),
                                r.get("context_key", ""),
                            ),
                        )
                        base_context = best.get("context_key")
            time.sleep(0.1)
        if seeds is None:
            raise RuntimeError("soak bootstrap: /select never succeeded")

        deadline = time.monotonic() + config.duration_s
        pool = [
            threading.Thread(
                target=_worker,
                args=(port, index, deadline, config, seeds, base_context,
                      traffic),
            )
            for index in range(config.workers)
        ]
        pool.append(
            threading.Thread(
                target=_ingester,
                args=(port, deadline, config, base_context, traffic),
            )
        )
        for member in pool:
            member.start()
        for member in pool:
            member.join()
        jobs = _settle_ingests(port)
        _, health_body = _request(port, "GET", "/healthz")
        health = json.loads(health_body)
    finally:
        server.shutdown()
        server.server_close()
    elapsed = time.monotonic() - started

    audit = verify_store(ArtifactStore(store_root, create=False), deep=True)
    total = sum(traffic.statuses.values())
    non_503_5xx = sum(
        count for status, count in traffic.statuses.items()
        if status >= 500 and status != 503
    )
    nondeterministic = sorted(
        key for key, bodies in traffic.bodies.items() if len(bodies) > 1
    )
    failures: list[str] = []
    if non_503_5xx:
        failures.append(f"{non_503_5xx} non-503 5xx responses")
    if nondeterministic:
        failures.append(
            "nondeterministic payloads: " + ", ".join(nondeterministic[:5])
        )
    if audit.errors:
        failures.append(
            f"{len(audit.errors)} store integrity errors after the soak: "
            + "; ".join(problem.render() for problem in audit.errors[:5])
        )
    if traffic.transport_errors:
        failures.append(f"{traffic.transport_errors} transport errors")

    endpoints = {
        name: {
            "count": len(samples),
            # The repo's pinned quantile semantics (repro.obs.metrics),
            # byte-identical to the private formulas they replace.
            "p50_ms": round(exact_median(samples), 3),
            "p99_ms": round(exact_percentile(samples, 0.99), 3),
        }
        for name, samples in sorted(traffic.samples.items())
    }
    job_states: dict[str, int] = {}
    for job in jobs:
        state = str(job.get("status"))
        job_states[state] = job_states.get(state, 0) + 1
    return {
        "config": {
            "duration_s": config.duration_s,
            "workers": config.workers,
            "seed": config.seed,
            "plan": config.plan_text(),
            "k_max": config.k_max,
            "ingest_period_s": config.ingest_period_s,
        },
        "elapsed_s": round(elapsed, 1),
        "requests": total,
        "throughput_rps": round(total / max(elapsed, 1e-9), 1),
        "statuses": {
            str(status): count
            for status, count in sorted(traffic.statuses.items())
        },
        "non_503_5xx": non_503_5xx,
        "transport_errors": traffic.transport_errors,
        "endpoints": endpoints,
        "deterministic": not nondeterministic,
        "distinct_response_keys": len(traffic.bodies),
        "ingest": {**traffic.ingest, "jobs": job_states},
        "faults": injector.stats(),
        "health": {
            "status": health.get("status"),
            "degraded": health.get("degraded", {}),
            "select_paths": health.get("select_paths", {}),
            "queue": health.get("queue", {}),
        },
        "store_audit": audit.to_dict(),
        "failures": failures,
        "ok": not failures,
    }


def render_report(report: dict[str, Any]) -> str:
    """The committed ``STRESS_TEST_REPORT.md`` body for one soak report."""
    config = report["config"]
    lines = [
        "# Stress test report — `repro soak`",
        "",
        "Sustained chaos soak of the serving stack: a live `repro serve`",
        "instance with a deterministic fault injector mounted on the",
        "store's I/O seam, under mixed concurrent traffic",
        "(select / spread / predict / healthz) plus periodic `/ingest`",
        "deltas.  Replay with:",
        "",
        "```",
        f"PYTHONPATH=src python benchmarks/bench_soak.py "
        f"--duration {config['duration_s']:g} "
        f"--workers {config['workers']} --seed {config['seed']}",
        "```",
        "",
        "## Contract",
        "",
        "| check | requirement | observed | verdict |",
        "|---|---|---|---|",
        f"| shed, don't break | zero non-503 5xx | {report['non_503_5xx']} "
        f"| {'PASS' if not report['non_503_5xx'] else 'FAIL'} |",
        f"| determinism | identical request + context -> identical bytes "
        f"| {report['distinct_response_keys']} keys, "
        f"{'no' if report['deterministic'] else 'SOME'} divergence "
        f"| {'PASS' if report['deterministic'] else 'FAIL'} |",
        f"| integrity | `repro store verify --deep`: zero errors "
        f"| {report['store_audit']['errors']} errors, "
        f"{report['store_audit']['orphans']} orphans (re-derivable) "
        f"| {'PASS' if not report['store_audit']['errors'] else 'FAIL'} |",
        f"| transport | no dropped connections "
        f"| {report['transport_errors']} errors "
        f"| {'PASS' if not report['transport_errors'] else 'FAIL'} |",
        "",
        "## Run",
        "",
        f"- elapsed: **{report['elapsed_s']}s**, requests: "
        f"**{report['requests']}** ({report['throughput_rps']} rps, "
        f"{config['workers']} workers)",
        f"- fault plan: `{config['plan']}`",
        f"- faults fired: {report['faults']['fired'] or 'none'} "
        f"(total {report['faults']['total_fired']})",
        f"- HTTP statuses: {report['statuses']}",
        f"- ingest: {report['ingest']}",
        f"- final health: status `{report['health']['status']}`, "
        f"degraded events {report['health']['degraded'] or '{}'}",
        f"- select paths: {report['health']['select_paths']}, "
        f"queue: {report['health']['queue']}",
        "",
        "## Endpoint latency",
        "",
        "| endpoint | requests | p50 ms | p99 ms |",
        "|---|---|---|---|",
    ]
    for name, stats in report["endpoints"].items():
        lines.append(
            f"| /{name} | {stats['count']} | {stats['p50_ms']} "
            f"| {stats['p99_ms']} |"
        )
    lines += [
        "",
        "## Verdict",
        "",
        "**PASS** — the service degraded gracefully under every injected "
        "fault." if report["ok"] else
        "**FAIL**:\n\n" + "\n".join(f"- {f}" for f in report["failures"]),
        "",
    ]
    return "\n".join(lines)
