"""Streaming scenario: keep the seed set fresh as the action log grows.

A marketing team re-selects its seed users every "week".  New action
tuples stream in continuously; because per-action credits are
independent, the credit index ingests each completed trace exactly once
and the standing index always equals a full batch rescan — no
approximation drift, no periodic rebuilds.

The script replays a Flixster-like action log in chronological waves,
folds each wave into a :class:`repro.StreamingCreditIndex`, re-selects
seeds, and reports how the seed set and its spread stabilise as
evidence accumulates (the online version of the paper's Figure 9).

Run with:  python examples/streaming_updates.py
"""

from repro import StreamingCreditIndex, flixster_like
from repro.data.temporal import traces_by_completion

NUM_WAVES = 4
K = 8


def main() -> None:
    dataset = flixster_like("small")
    print(f"dataset: {dataset.name} ({dataset.log.num_tuples} tuples)")

    # Replay traces in waves, in the order a live system would see them
    # complete (a trace is ingestible once its last activation lands).
    actions = [action for action, _ in traces_by_completion(dataset.log)]
    wave_size = (len(actions) + NUM_WAVES - 1) // NUM_WAVES

    stream = StreamingCreditIndex(dataset.graph, truncation=0.001)
    previous_seeds: set = set()
    for wave_number in range(NUM_WAVES):
        wave = actions[wave_number * wave_size : (wave_number + 1) * wave_size]
        for action in wave:
            for user, time in dataset.log.trace(action):
                stream.observe(user, action, time)
        folded = stream.flush()

        result = stream.select_seeds(K)
        seeds = set(result.seeds)
        retained = len(seeds & previous_seeds)
        print(
            f"\nwave {wave_number + 1}: +{folded} traces "
            f"({stream.flushed_actions} total, "
            f"{stream.index.total_entries} credit entries)"
        )
        print(
            f"  seeds: {sorted(result.seeds, key=repr)}\n"
            f"  sigma_cd = {result.spread:.2f}; "
            f"{retained}/{K} seeds kept from the previous wave"
        )
        previous_seeds = seeds

    print(
        "\nThe seed set churns early (little evidence) and stabilises as "
        "the log grows —\nthe streaming analogue of the paper's Figure-9 "
        "training-size saturation."
    )


if __name__ == "__main__":
    main()
