"""Viral-marketing scenario: choosing users to seed a movie campaign.

The paper's motivating application (Section 1): a studio wants to give
free tickets to k users of a movie-rating platform so that as many
people as possible end up rating (watching) the movie.  This example
compares four ways of choosing those k users on a Flixster-like dataset:

* CD       — the paper's data-based method;
* IC (EM)  — the standard approach: learn edge probabilities with EM,
             run greedy under the IC model (via the PMIA heuristic);
* HighDegree / PageRank — structural heuristics that ignore the log.

Each method's seed set is then scored with ``sigma_cd`` — the spread
estimator the paper shows to be closest to ground truth — and we also
report the average activity of the chosen seeds, reproducing the
paper's observation that IC-with-EM picks rarely-active users.

Run with:  python examples/movie_campaign.py
"""

from repro import flixster_like, train_test_split
from repro.evaluation.selection import SeedSelector, spread_achieved_experiment

K = 15


def main() -> None:
    dataset = flixster_like("small")
    train, _ = train_test_split(dataset.log)
    print(f"campaign dataset: {dataset.name} ({dataset.graph.num_nodes} users)")
    print(f"choosing {K} seed users per method...\n")

    selector = SeedSelector(dataset.graph, train, num_simulations=50)
    methods = ["CD", "IC", "HighDegree", "PageRank"]
    seed_sets = {method: selector.seeds(method, K) for method in methods}

    series = spread_achieved_experiment(
        dataset.graph, train, methods=methods, ks=[K], seed_sets=seed_sets
    )

    print(f"{'method':<12} {'sigma_cd':>9} {'avg seed activity':>18}")
    for method in methods:
        spread = series[method][0][1]
        activities = [train.activity(seed) for seed in seed_sets[method]]
        average_activity = sum(activities) / len(activities)
        print(f"{method:<12} {spread:9.1f} {average_activity:18.1f}")

    print(
        "\nNote the paper's Section-6 finding: the IC model (EM-learned\n"
        "probabilities) tends to pick much less active users than CD,\n"
        "because EM assigns probability 1.0 to edges observed only once."
    )


if __name__ == "__main__":
    main()
