"""Campaign planning: targets, budgets, and topics on one dataset.

A marketing team rarely asks the textbook question ("best k seeds");
it asks the three planning questions this example answers with the CD
model's extensions:

1. *How many seeds do we need* to reach a target spread?
   (:func:`repro.cd_cover` — submodular set cover on ``sigma_cd``.)
2. *What can we afford* when influencers charge by their activity?
   (:func:`repro.cd_budget_maximize` — the CEF rule of Leskovec et
   al., the paper's CELF reference, under the CD objective.)
3. *Should each product line run its own campaign?*
   (:func:`repro.scan_topics` — exact topic-conditional indices.)

Run with:  python examples/campaign_planning.py
"""

from repro import (
    cd_budget_maximize,
    cd_cover,
    cd_maximize,
    flixster_like,
    scan_action_log,
    scan_topics,
    topic_seed_sets,
    topic_specialization,
    train_test_split,
)

TARGET_FRACTIONS = (0.25, 0.5, 0.75)
BUDGETS = (4.0, 16.0)
K_PER_TOPIC = 5
NUM_TOPICS = 3


def main() -> None:
    dataset = flixster_like("small")
    train, _ = train_test_split(dataset.log)
    graph = dataset.graph
    index = scan_action_log(graph, train, truncation=0.001)
    print(f"dataset: {dataset.name}; index: {index!r}")

    # ------------------------------------------------------------------
    # 1. Coverage: the seed bill for a spread target.
    # ------------------------------------------------------------------
    ceiling = cd_maximize(index, k=len(index.activity)).spread
    print(f"\n1. seed bill vs target (achievable ceiling {ceiling:.1f})")
    for fraction in TARGET_FRACTIONS:
        cover = cd_cover(index, target=ceiling * fraction)
        print(
            f"   {fraction:>4.0%} of ceiling -> {len(cover.seeds):>3} seeds "
            f"(spread {cover.spread:.1f}, reached={cover.reached})"
        )

    # ------------------------------------------------------------------
    # 2. Budget: busy users charge more (cost ~ 1 + activity / 10).
    # ------------------------------------------------------------------
    costs = {user: 1.0 + index.activity[user] / 10.0 for user in index.users()}
    print("\n2. budgeted selection (cost ~ activity)")
    for budget in BUDGETS:
        result = cd_budget_maximize(index, budget=budget, costs=costs)
        print(
            f"   budget {budget:>5.1f} -> {len(result.seeds)} seeds, "
            f"spent {result.spent:.1f}, spread {result.spread:.1f} "
            f"(winning rule: {result.rule})"
        )

    # ------------------------------------------------------------------
    # 3. Topics: one campaign per genre, or one global campaign?
    # ------------------------------------------------------------------
    def genre_of(action) -> str:
        return f"genre{int(str(action)[1:]) % NUM_TOPICS}"

    indices = scan_topics(graph, train, genre_of, truncation=0.001)
    per_topic = topic_seed_sets(indices, k=K_PER_TOPIC)
    global_seeds = cd_maximize(index, k=K_PER_TOPIC).seeds
    print(f"\n3. topic-conditional campaigns (k = {K_PER_TOPIC} per genre)")
    for topic in sorted(indices, key=str):
        seeds = per_topic[topic].seeds
        shared = len(set(seeds) & set(global_seeds))
        print(
            f"   {topic}: spread {per_topic[topic].spread:.1f}, "
            f"{shared}/{K_PER_TOPIC} seeds shared with the global campaign"
        )
    specialization = topic_specialization(
        {topic: result.seeds for topic, result in per_topic.items()}
    )
    print(f"   specialization score: {specialization:.2f} (0 = one campaign fits all)")


if __name__ == "__main__":
    main()
