"""The influence-maximization algorithm zoo on one dataset.

Runs every seed-selection algorithm in the :mod:`repro.api` registry on
the same Flixster-like dataset and scores all of their seed sets under
the CD spread proxy (the paper's Figure-6 yardstick), printing a ranked
comparison and an ASCII chart of spread-vs-k for the headline methods.

The whole zoo is a loop over ``list_selectors()`` — no per-algorithm
wiring: the registry knows how to build each selector's inputs from the
shared :class:`~repro.api.SelectionContext`, and every algorithm added
with ``register_selector`` joins this example automatically.

Run with:  python examples/algorithm_zoo.py
"""

from repro import flixster_like, train_test_split
from repro.api import SelectionContext, get_selector, list_selectors
from repro.evaluation.plots import ascii_line_chart

K = 10

# Parameter overrides for selectors whose defaults are tuned for much
# larger instances (everything else runs with registry defaults).
PARAMS = {
    "ris": {"num_rr_sets": 3000, "seed": 7},
    "degree_discount": {"probability": 0.01},
}
# MC greedy over the full candidate pool takes minutes at this scale;
# the CELF family demonstrates the same machinery over sigma_cd.
SKIP = {"greedy"}


def main() -> None:
    dataset = flixster_like("small")
    train, _ = train_test_split(dataset.log)
    context = SelectionContext(dataset.graph, train)
    print(f"dataset: {dataset.name}, selecting k={K} seeds per algorithm\n")

    selections = []
    for spec in list_selectors():
        if spec.name in SKIP:
            continue
        selector = get_selector(spec.name, **PARAMS.get(spec.name, {}))
        selection = selector.select(context, K)
        label = spec.name + (" (this paper)" if spec.name == "cd" else "")
        selections.append((label, selection))

    evaluator = context.cd_evaluator()
    scored = sorted(
        (
            (label, selection, evaluator.spread(selection.seeds))
            for label, selection in selections
        ),
        key=lambda row: -row[2],
    )

    width = max(len(label) for label, _, _ in scored)
    print(f"{'algorithm'.ljust(width)}  spread under CD proxy   runtime")
    print(f"{'-' * width}  {'-' * 21}   {'-' * 7}")
    for label, selection, spread in scored:
        print(
            f"{label.ljust(width)}  {spread:8.2f}               "
            f"{selection.wall_time_s:6.2f}s"
        )

    # Spread-vs-k curves for the top methods (greedy prefixes nest).
    print()
    ks = list(range(1, K + 1))
    series = {
        label: [(float(k), evaluator.spread(selection.seeds_at(k)))
                for k in ks]
        for label, selection, _ in scored[:4]
    }
    print(
        ascii_line_chart(
            series,
            title="spread vs k (CD-proxy yardstick, Figure-6 layout)",
            x_label="seed set size k",
            y_label="sigma_cd",
        )
    )


if __name__ == "__main__":
    main()
