"""The influence-maximization algorithm zoo on one dataset.

Runs every seed-selection algorithm the library implements on the same
Flixster-like dataset and scores all of their seed sets under the CD
spread proxy (the paper's Figure-6 yardstick), printing a ranked
comparison and an ASCII chart of spread-vs-k for the headline methods.

Algorithms covered: the CD maximizer (this paper), CELF/CELF++ lazy
greedy over sigma_cd, PMIA (IC heuristic), LDAG (LT heuristic), SimPath
(LT path enumeration), RIS (reverse-reachable sampling), DegreeDiscount,
SingleDiscount, High-Degree and PageRank.

Run with:  python examples/algorithm_zoo.py
"""

from repro import (
    LDAGModel,
    PMIAModel,
    TimeDecayCredit,
    cd_maximize,
    degree_discount_ic_seeds,
    flixster_like,
    high_degree_seeds,
    irie_seeds,
    learn_influenceability,
    learn_lt_weights,
    learn_static_probabilities,
    pagerank_seeds,
    ris_maximize,
    scan_action_log,
    simpath_maximize,
    single_discount_seeds,
    train_test_split,
)
from repro.core.spread import CDSpreadEvaluator
from repro.evaluation.plots import ascii_line_chart

K = 10


def main() -> None:
    dataset = flixster_like("small")
    train, _ = train_test_split(dataset.log)
    graph = dataset.graph
    print(f"dataset: {dataset.name}, selecting k={K} seeds per algorithm\n")

    params = learn_influenceability(graph, train)
    index = scan_action_log(
        graph, train, credit=TimeDecayCredit(params), truncation=0.001
    )
    probabilities = learn_static_probabilities(graph, train, "bernoulli")
    lt_weights = learn_lt_weights(graph, train)
    evaluator = CDSpreadEvaluator(graph, train, credit=TimeDecayCredit(params))

    algorithms = {
        "CD (this paper)": lambda: cd_maximize(index, K, mutate=False).seeds,
        "PMIA / IC": lambda: PMIAModel(graph, probabilities)
        .select_seeds(K)
        .seeds,
        "LDAG / LT": lambda: LDAGModel(graph, lt_weights).select_seeds(K).seeds,
        "SimPath / LT": lambda: simpath_maximize(
            graph, lt_weights, K, eta=1e-3
        ).seeds,
        "RIS / IC": lambda: ris_maximize(
            graph, probabilities, K, num_rr_sets=3000, seed=7
        ).seeds,
        "IRIE / IC": lambda: irie_seeds(graph, probabilities, K),
        "DegreeDiscountIC": lambda: degree_discount_ic_seeds(graph, K),
        "SingleDiscount": lambda: single_discount_seeds(graph, K),
        "HighDegree": lambda: high_degree_seeds(graph, K),
        "PageRank": lambda: pagerank_seeds(graph, K),
    }

    scored: list[tuple[str, list, float]] = []
    for name, select in algorithms.items():
        seeds = select()
        scored.append((name, seeds, evaluator.spread(seeds)))
    scored.sort(key=lambda row: -row[2])

    width = max(len(name) for name, _, _ in scored)
    print(f"{'algorithm'.ljust(width)}  spread under CD proxy")
    print(f"{'-' * width}  {'-' * 22}")
    for name, _, spread in scored:
        print(f"{name.ljust(width)}  {spread:8.2f}")

    # Spread-vs-k curves for the top methods (greedy prefixes nest).
    print()
    ks = list(range(1, K + 1))
    series = {}
    for name, seeds, _ in scored[:4]:
        series[name] = [
            (float(k), evaluator.spread(seeds[:k])) for k in ks
        ]
    print(
        ascii_line_chart(
            series,
            title="spread vs k (CD-proxy yardstick, Figure-6 layout)",
            x_label="seed set size k",
            y_label="sigma_cd",
        )
    )


if __name__ == "__main__":
    main()
