"""Reproduce the Section-3 argument: edge probabilities must come from data.

Compares the five probability-assignment methods of the paper's
"Why Data Matters" section — UN (uniform), TV (trivalency), WC (weighted
cascade), EM (learned from traces) and PT (EM + noise) — on two
questions:

1. do they choose the same seeds?  (Table 2: almost-empty intersections
   between EM and the ad-hoc methods, large EM-vs-PT overlap)
2. can they predict the spread of held-out propagations?  (Figure 2:
   EM/PT far more accurate than UN/TV/WC)

Run with:  python examples/why_data_matters.py
"""

from repro import flixster_like, train_test_split
from repro.api import ExperimentConfig, run_experiment
from repro.evaluation.reporting import format_matrix, format_table
from repro.evaluation.selection import seed_overlap_experiment

METHODS = ["UN", "WC", "TV", "EM", "PT"]
K = 10


def main() -> None:
    dataset = flixster_like("small")
    train, _ = train_test_split(dataset.log)
    print(f"dataset: {dataset.name}\n")

    print(f"Experiment 1 — seed-set intersection (k = {K}):")
    _, matrix = seed_overlap_experiment(
        dataset.graph, train, methods=METHODS, k=K, num_simulations=30
    )
    print(format_matrix(METHODS, matrix))
    print(
        "\nExpected shape (Table 2): EM row nearly empty except against PT.\n"
    )

    print("Experiment 2 — spread prediction on held-out traces:")
    prediction = run_experiment(
        ExperimentConfig(
            task="prediction",
            dataset="flixster",
            scale="small",
            methods=METHODS,
            num_simulations=60,
            max_test_traces=40,
        ),
        dataset=dataset,
    )
    rmse_table = prediction.rmse_table()
    rows = [[method, f"{rmse_table[method]:.1f}"] for method in METHODS]
    print(format_table(["method", "RMSE"], rows))
    print(
        "\nExpected shape (Figure 2): EM and PT nearly identical and far\n"
        "below UN/TV/WC — ad-hoc probabilities mispredict real spreads."
    )


if __name__ == "__main__":
    main()
