"""Which influence model should you trust on your data?

The paper's conclusion calls for "techniques and benchmarks for
comparing different influence models and the associated influence
maximization methods".  This script runs both halves of that benchmark
through the unified experiment runtime:

* the **maximization** head-to-head — the Figure-6 line-up (the CD
  maximizer, LT via LDAG, IC via PMIA, plus the structural baselines)
  as one declarative ``ExperimentConfig`` consumed by
  :func:`repro.evaluation.comparison.compare_selectors`;
* the **prediction** benchmark — the Figure-3 protocol (which model
  predicts held-out trace spreads best?) as the *same* config format
  with ``task="prediction"``, run by the same
  :func:`repro.api.run_experiment` stage pipeline.

Every selector entry is just a registry name and every predictor a
method name: swap in ``"ris"``, ``"simpath"`` or your own
``register_selector`` entry and the comparison, ranking and chart adapt
automatically.  Both configs accept ``executor="thread"``/``"process"``
to parallelize with bit-identical results.

Run with:  python examples/model_comparison.py
"""

from repro.api import ExperimentConfig, run_experiment
from repro.evaluation.comparison import compare_selectors

K_GRID = [1, 3, 5, 10]
NUM_SIMULATIONS = 60
MAX_TEST_TRACES = 25

SELECTORS = [
    {"name": "cd", "label": "CD"},
    {"name": "ldag", "label": "LT"},
    {"name": "pmia", "params": {"method": "EM"}, "label": "IC"},
    {"name": "high_degree", "label": "HighDegree"},
    {"name": "pagerank", "label": "PageRank"},
]


def main() -> None:
    config = ExperimentConfig(
        dataset="flixster",
        scale="small",
        selectors=SELECTORS,
        ks=K_GRID,
        num_simulations=NUM_SIMULATIONS,
    )
    comparison = compare_selectors(config)
    print(f"dataset: {comparison.experiment.dataset_name}\n")
    print(comparison.render())

    best = comparison.ranking()[0]
    finals = comparison.experiment.final_spreads()
    runner_up = comparison.ranking()[1]
    margin = finals[best] - finals[runner_up]
    print(
        f"\nBest selector by CD-proxy spread: {best} "
        f"(+{margin:.2f} sigma_cd over {runner_up}).\n"
        "The CD yardstick favours data-based seeds by construction "
        "(Figures 3-4 argue it is also the most accurate available); "
        "rerun with your own dataset before trusting the ordering."
    )

    # The prediction half: does the CD yardstick deserve its role?
    # Same config format, task="prediction" — the Figure-3 protocol.
    prediction = run_experiment(ExperimentConfig(
        task="prediction",
        dataset="flixster",
        scale="small",
        methods=["IC", "LT", "CD"],
        num_simulations=NUM_SIMULATIONS,
        max_test_traces=MAX_TEST_TRACES,
    ))
    print()
    print(prediction.render())
    rmse_table = prediction.rmse_table()
    most_accurate = min(rmse_table, key=rmse_table.get)
    print(
        f"\nMost accurate spread predictor on held-out traces: "
        f"{most_accurate} (RMSE {rmse_table[most_accurate]:.1f})."
    )


if __name__ == "__main__":
    main()
