"""Which influence model's seeds should you trust on your data?

The paper's conclusion calls for "techniques and benchmarks for
comparing different influence models and the associated influence
maximization methods".  This script runs that benchmark the registry
way: the Figure-6 line-up (the CD maximizer, LT via LDAG, IC via PMIA,
plus the structural baselines) is a single declarative
:class:`repro.api.ExperimentConfig`, and
:func:`repro.evaluation.comparison.compare_selectors` — backed by
:func:`repro.api.run_experiment` — owns the whole dataset→split→learn→
select→evaluate pipeline.

Every entry is just a registry name: swap in ``"ris"``, ``"simpath"``
or your own ``register_selector`` entry and the comparison, ranking and
chart adapt automatically.

Run with:  python examples/model_comparison.py
"""

from repro.api import ExperimentConfig
from repro.evaluation.comparison import compare_selectors

K_GRID = [1, 3, 5, 10]
NUM_SIMULATIONS = 60

SELECTORS = [
    {"name": "cd", "label": "CD"},
    {"name": "ldag", "label": "LT"},
    {"name": "pmia", "params": {"method": "EM"}, "label": "IC"},
    {"name": "high_degree", "label": "HighDegree"},
    {"name": "pagerank", "label": "PageRank"},
]


def main() -> None:
    config = ExperimentConfig(
        dataset="flixster",
        scale="small",
        selectors=SELECTORS,
        ks=K_GRID,
        num_simulations=NUM_SIMULATIONS,
    )
    comparison = compare_selectors(config)
    print(f"dataset: {comparison.experiment.dataset_name}\n")
    print(comparison.render())

    best = comparison.ranking()[0]
    finals = comparison.experiment.final_spreads()
    runner_up = comparison.ranking()[1]
    margin = finals[best] - finals[runner_up]
    print(
        f"\nBest selector by CD-proxy spread: {best} "
        f"(+{margin:.2f} sigma_cd over {runner_up}).\n"
        "The CD yardstick favours data-based seeds by construction "
        "(Figures 3-4 argue it is also the most accurate available); "
        "rerun with your own dataset before trusting the ordering."
    )


if __name__ == "__main__":
    main()
