"""Which influence model should you trust on your data?

The paper's conclusion calls for "techniques and benchmarks for
comparing different influence models".  This script runs that
benchmark on a Flixster-like dataset: the Figure-3 trio (IC with
EM-learned probabilities, LT with learned weights, the CD model) plus a
naive baseline, scored on held-out traces with bootstrap confidence
intervals and a pairwise significance matrix.

The output answers three questions point estimates cannot:

* is the RMSE ordering statistically real, or small-sample noise?
* where does each model's accuracy actually differ (capture rate vs
  tail-dominated RMSE)?
* how wide is the uncertainty on each model's error?

Run with:  python examples/model_comparison.py
"""

from repro import flixster_like, train_test_split
from repro.evaluation.comparison import compare_models
from repro.evaluation.prediction import (
    build_cd_predictor,
    build_ic_predictors,
    build_lt_predictor,
)

MAX_TEST_TRACES = 50
NUM_SIMULATIONS = 60


def main() -> None:
    dataset = flixster_like("small")
    train, _ = train_test_split(dataset.log)
    graph = dataset.graph
    print(f"dataset: {dataset.name}\n")

    predictors = {
        "IC": build_ic_predictors(
            graph, train, methods=("EM",), num_simulations=NUM_SIMULATIONS
        )["EM"],
        "LT": build_lt_predictor(
            graph, train, num_simulations=NUM_SIMULATIONS
        ),
        "CD": build_cd_predictor(graph, train),
        "naive-mean": _naive_mean_predictor(train),
    }
    result = compare_models(
        graph,
        dataset.log,
        predictors,
        tolerance=10.0,
        max_test_traces=MAX_TEST_TRACES,
        num_resamples=500,
    )
    print(result.render())
    best = result.ranking()[0]
    print(
        f"\nBest model by RMSE: {best}.  Read the verdict matrix before "
        "trusting the ranking:\na '~' between two models means this test "
        "set cannot separate them."
    )


def _naive_mean_predictor(train):
    """Predict every spread as the training traces' mean size."""
    sizes = [train.trace_size(action) for action in train.actions()]
    mean = sum(sizes) / len(sizes) if sizes else 0.0

    def predict(seeds):
        return mean

    return predict


if __name__ == "__main__":
    main()
