"""Community sampling: how the paper builds its "small" datasets.

Section 3: "we use samples that correspond to taking a unique
community, obtained by means of graph clustering performed using
Graclus."  This example reproduces that data-engineering step with the
library's label-propagation clustering: build a large community-
structured graph, cluster it, extract one community, and restrict the
action log to it — producing a self-contained small dataset ready for
the expensive cross-model experiments.

Run with:  python examples/community_sampling.py
"""

from repro import ActionLog, CascadeModel, generate_action_log
from repro.data.datasets import community_social_graph
from repro.graphs.clustering import extract_community, label_propagation


def main() -> None:
    # A "large" graph with three communities.
    graph = community_social_graph(
        [500, 300, 200], out_degree=6, cross_fraction=0.04, seed=21
    )
    model = CascadeModel.random(graph, seed=22, mean_influence=0.1)
    log = generate_action_log(model, num_actions=400, seed=23)
    print(
        f"large dataset: {graph.num_nodes} nodes, {graph.num_edges} edges, "
        f"{log.num_tuples} tuples"
    )

    # Cluster and inspect the community structure.
    labels = label_propagation(graph, seed=24)
    sizes: dict[int, int] = {}
    for label in labels.values():
        sizes[label] = sizes.get(label, 0) + 1
    top = sorted(sizes.items(), key=lambda item: -item[1])[:5]
    print("largest detected communities:", [size for _, size in top])

    # Extract the community closest to 300 nodes.
    community = extract_community(graph, target_size=300, seed=24)
    members = set(community.nodes())
    print(
        f"extracted community: {community.num_nodes} nodes, "
        f"{community.num_edges} edges"
    )

    # Restrict the action log to tuples of community members, keeping
    # only actions that still have at least 2 participants.
    small_log = ActionLog()
    for user, action, time in log.tuples():
        if user in members:
            small_log.add(user, action, time)
    kept = [a for a in small_log.actions() if small_log.trace_size(a) >= 2]
    small_log = small_log.restrict_to_actions(kept)
    print(
        f"restricted log: {small_log.num_actions} propagations, "
        f"{small_log.num_tuples} tuples"
    )
    print("\nThis (community graph, restricted log) pair is the 'small'")
    print("dataset shape used by the paper's cross-model experiments.")


if __name__ == "__main__":
    main()
