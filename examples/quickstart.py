"""Quickstart: the credit-distribution pipeline in ~40 lines.

Generates a Flixster-like dataset (social graph + action log), learns
the Eq.-9 credit parameters from the training traces, scans the log into
a credit index (Algorithm 2) and selects seeds with the CELF-optimised
CD maximizer (Algorithms 3-5) — no edge probabilities, no Monte Carlo.

Run with:  python examples/quickstart.py
"""

from repro import (
    TimeDecayCredit,
    cd_maximize,
    flixster_like,
    learn_influenceability,
    scan_action_log,
    sigma_cd,
    train_test_split,
)


def main() -> None:
    # 1. A dataset: unweighted social graph + action log L(user, action, time).
    dataset = flixster_like("small")
    stats = dataset.stats()
    print(f"dataset: {dataset.name}")
    print(
        f"  {stats.num_nodes} users, {stats.num_edges} edges, "
        f"{stats.num_propagations} propagations, {stats.num_tuples} tuples"
    )

    # 2. Hold out 20% of the traces for evaluation (the paper's split).
    train, test = train_test_split(dataset.log)
    print(f"  training on {train.num_actions} traces, testing on {test.num_actions}")

    # 3. Learn the direct-credit parameters (tau, infl) and scan the log.
    params = learn_influenceability(dataset.graph, train)
    index = scan_action_log(
        dataset.graph, train, credit=TimeDecayCredit(params), truncation=0.001
    )
    print(f"  credit index: {index.total_entries} entries")

    # 4. Influence maximization under the CD model.
    result = cd_maximize(index, k=10)
    print("\ntop-10 seeds by credit-distribution greedy:")
    for rank, (seed, gain) in enumerate(zip(result.seeds, result.gains), start=1):
        print(f"  {rank:2d}. user {seed}  (marginal spread {gain:.2f})")
    print(f"estimated spread sigma_cd(S) = {result.spread:.2f}")

    # 5. Sanity check: evaluate the same seed set with the exact evaluator.
    exact = sigma_cd(
        dataset.graph, train, result.seeds, credit=TimeDecayCredit(params)
    )
    print(f"exact re-evaluation          = {exact:.2f}")


if __name__ == "__main__":
    main()
