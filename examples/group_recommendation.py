"""Spread prediction for photo-platform interest groups (Flickr scenario).

The paper's second dataset treats "join interest group g" as the action.
A platform that can *predict* how far a group will spread from its first
few members can rank nascent groups for promotion.  This example:

1. builds a Flickr-like dataset (dense graph, many short cascades);
2. trains the CD, IC(EM) and LT models on 80% of the traces;
3. predicts, for each held-out group, its final size from its initiators;
4. scores the predictions exactly as Figures 3-4 do (binned RMSE and the
   absolute-error capture curve).

Run with:  python examples/group_recommendation.py
"""

from repro import flickr_like
from repro.evaluation.metrics import binned_rmse, capture_curve
from repro.evaluation.prediction import spread_prediction_experiment
from repro.evaluation.reporting import format_table


def main() -> None:
    dataset = flickr_like("small")
    print(f"dataset: {dataset.name} ({dataset.log.num_actions} group histories)")
    print("training IC / LT / CD on 80% of traces, predicting the rest...\n")

    experiment = spread_prediction_experiment(
        dataset.graph, dataset.log, max_test_traces=60
    )

    print("binned RMSE (lower is better):")
    rows = []
    for method in experiment.methods:
        binned = binned_rmse(experiment.pairs(method), bin_width=20)
        overall = sum(r * c for _, r, c in binned) / sum(c for _, _, c in binned)
        rows.append([method, f"{overall:.1f}"])
    print(format_table(["method", "weighted RMSE"], rows))

    print("\nfraction of groups predicted within an absolute error of e:")
    thresholds = [1, 2, 5, 10, 20]
    rows = []
    for method in experiment.methods:
        curve = dict(capture_curve(experiment.pairs(method), thresholds))
        rows.append([method, *[f"{curve[t]:.2f}" for t in thresholds]])
    print(
        format_table(
            ["method", *[f"e<={t}" for t in thresholds]],
            rows,
        )
    )

    print(
        "\nExpected shape (paper Figures 3-4): CD captures the largest\n"
        "fraction of propagations at every error tolerance."
    )


if __name__ == "__main__":
    main()
