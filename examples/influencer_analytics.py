"""Influencer analytics: interrogating the credit index.

Seed selection answers one question; a data-based influence model can
answer many more.  This script builds a credit index from a
Flickr-like action log and walks through the query API:

* the global influencer leaderboard (``most_influential``);
* a user's personal influence sphere (``influence_vector``);
* who actually influences a given user (``top_influencers``);
* a per-seed/per-user explanation of a selected seed set's spread
  (``explain_spread``) — the audit trail behind "why these seeds?".

Run with:  python examples/influencer_analytics.py
"""

from repro import (
    cd_maximize,
    explain_spread,
    flickr_like,
    influence_vector,
    most_influential,
    scan_action_log,
    top_influencers,
    train_test_split,
)

K = 5


def main() -> None:
    dataset = flickr_like("small")
    train, _ = train_test_split(dataset.log)
    index = scan_action_log(dataset.graph, train, truncation=0.001)
    print(f"dataset: {dataset.name}; index: {index.total_entries} entries")

    # 1. The leaderboard: total credit received from the whole network.
    print("\ninfluencer leaderboard (total credit kappa over all users):")
    leaderboard = most_influential(index, limit=5)
    for rank, (user, score) in enumerate(leaderboard, start=1):
        print(f"  {rank}. user {user}: {score:.2f}")

    # 2. Zoom into the top influencer's sphere of influence.
    star = leaderboard[0][0]
    sphere = influence_vector(index, star)
    strongest = sorted(sphere.items(), key=lambda item: -item[1])[:5]
    print(f"\nuser {star} holds credit over {len(sphere)} users; strongest:")
    for user, credit in strongest:
        print(f"  -> user {user}: kappa = {credit:.3f}")

    # 3. The reverse question: who influences that strongest follower?
    follower = strongest[0][0]
    print(f"\nwho influences user {follower}?")
    for user, credit in top_influencers(index, follower, limit=5):
        print(f"  <- user {user}: kappa = {credit:.3f}")

    # 4. Select seeds and explain where their spread comes from.
    result = cd_maximize(index, k=K, mutate=False)
    breakdown = explain_spread(index, result.seeds)
    print(f"\nselected seeds: {result.seeds}")
    print(
        f"sigma_cd = {breakdown.total:.2f} "
        f"(self-credit {breakdown.self_credit:.0f} + "
        f"influence {breakdown.total - breakdown.self_credit:.2f}; "
        f"redundancy {breakdown.redundancy:.2f})"
    )
    print("per-seed solo influence over non-seeds:")
    for seed in result.seeds:
        print(f"  seed {seed}: {breakdown.per_seed[seed]:.2f}")
    audience = sorted(breakdown.per_user.items(), key=lambda item: -item[1])
    print("most-influenced users:")
    for user, credit in audience[:5]:
        print(f"  user {user}: kappa_S = {credit:.3f}")


if __name__ == "__main__":
    main()
