"""Deadline-constrained campaign planning with continuous-time IC.

A product launch has a hard deadline: influence that arrives after it
is worthless.  Discrete IC/LT cannot express this; the continuous-time
IC model can.  This script learns edge probabilities from a training
log, selects candidate seed sets with two selectors (DegreeDiscount and
RIS), and compares their *time-bounded* spread sigma(S, T) across
deadlines and delay regimes — showing how the right seed set changes
when time matters and how heavy-tailed response times eat into any
fixed deadline.

Run with:  python examples/deadline_campaign.py
"""

from repro import (
    degree_discount_ic_seeds,
    estimate_spread_ctic,
    estimate_spread_ic,
    exponential_delays,
    flixster_like,
    learn_static_probabilities,
    lognormal_delays,
    ris_maximize,
    train_test_split,
)
from repro.evaluation.plots import ascii_line_chart

K = 8
DEADLINES = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
NUM_SIMULATIONS = 200


def main() -> None:
    dataset = flixster_like("small")
    train, _ = train_test_split(dataset.log)
    graph = dataset.graph
    probabilities = learn_static_probabilities(graph, train, "bernoulli")
    print(f"dataset: {dataset.name}; k = {K}")

    candidates = {
        "DegreeDiscount": degree_discount_ic_seeds(graph, K, probability=0.05),
        "RIS": ris_maximize(
            graph, probabilities, K, num_rr_sets=3000, seed=7
        ).seeds,
    }
    for name, seeds in candidates.items():
        unbounded = estimate_spread_ic(
            graph, probabilities, seeds,
            num_simulations=NUM_SIMULATIONS, seed=1,
        )
        print(f"\n{name} seeds: unbounded spread = {unbounded:.1f}")

    # Time-bounded spread per deadline, under two delay regimes.
    series = {}
    for name, seeds in candidates.items():
        for regime, sampler in (
            ("exp", exponential_delays(1.0)),
            ("heavy", lognormal_delays(median=1.0, sigma=2.0)),
        ):
            series[f"{name}/{regime}"] = [
                (
                    deadline,
                    estimate_spread_ctic(
                        graph,
                        probabilities,
                        seeds,
                        horizon=deadline,
                        delay_sampler=sampler,
                        num_simulations=NUM_SIMULATIONS,
                        seed=2,
                    ),
                )
                for deadline in DEADLINES
            ]

    print()
    print(
        ascii_line_chart(
            series,
            title="time-bounded spread sigma(S, T) by deadline",
            x_label="deadline T (mean delays)",
            y_label="spread",
        )
    )
    tightest = DEADLINES[0]
    print(
        f"\nAt the tightest deadline (T = {tightest}), heavy-tailed "
        "response times defer a\nlarge share of each seed set's influence "
        "past the deadline — the delay\nphenomenon the CD model's Eq. 9 "
        "learns per user pair."
    )


if __name__ == "__main__":
    main()
