"""Packaging for the reproduction.

The execution environment has no network access and no `wheel` package,
so PEP 660 editable installs cannot build; keeping the metadata in
classic ``setup.py`` form lets ``pip install -e . --no-build-isolation``
fall back to ``setup.py develop``.

The ``py.typed`` marker ships with the package (PEP 561) so downstream
type checkers read the inline annotations.
"""

from setuptools import find_packages, setup

setup(
    name="repro-data-based-im",
    version="1.11.0",
    description=(
        "Reproduction of 'A Data-Based Approach to Social Influence "
        "Maximization' (Goyal, Bonchi, Lakshmanan; PVLDB 2011)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
