"""Figure 7: running time of IC, LT (MC greedy + CELF) and CD vs k.

The paper's headline efficiency result: selecting 50 seeds on
Flixster_Small takes 40 h (IC) / 25 h (LT) with MC+CELF but 3 minutes
with CD.  We reproduce the *orders-of-magnitude gap* at reduced scale
through :func:`repro.api.run_experiment`: the three methods are
registry selectors whose adapters record cumulative runtime-vs-k
(``time_log``) *including* the learning/scanning cost each method
triggers — a fresh context (no shared artifacts) keeps the attribution
honest, exactly as the paper charges each method with its own
preprocessing.
"""

from benchmarks.conftest import NUM_SIMULATIONS
from repro.api import ExperimentConfig, run_experiment
from repro.evaluation.reporting import format_series

K_RUNTIME = 10  # MC greedy is the paper's bottleneck; keep the sweep short.

SELECTORS = [
    {"name": "celf", "params": {"model": "ic", "seed": 7}, "label": "IC"},
    {"name": "celf", "params": {"model": "lt", "seed": 7}, "label": "LT"},
    {"name": "cd", "label": "CD"},
]


def test_fig7_runtime_comparison(benchmark, report, flixster_small):
    config = ExperimentConfig(
        dataset="flixster",
        scale="small",
        selectors=SELECTORS,
        ks=[K_RUNTIME],
        num_simulations=NUM_SIMULATIONS,
        evaluate_spread=False,  # pure-runtime experiment
    )
    curves = benchmark.pedantic(
        # A fresh context per run: each method pays for the artifacts
        # it triggers (EM learning, LT learning, the credit scan).
        lambda: run_experiment(config, dataset=flixster_small).runtime_curves(),
        rounds=1,
        iterations=1,
    )
    series = {
        method: [(float(count), elapsed) for count, elapsed in points]
        for method, points in curves.items()
    }
    report(
        format_series(
            "k",
            series,
            title=(
                "Figure 7 (flixster_small) — cumulative seconds to select k seeds\n"
                "paper shape: CD orders of magnitude below IC and LT"
            ),
            y_format="{:.2f}",
        )
    )
    cd_total = series["CD"][-1][1]
    ic_total = series["IC"][-1][1]
    lt_total = series["LT"][-1][1]
    # The paper reports ~800x (IC) and ~500x (LT); at our scale demand
    # at least one order of magnitude.
    assert ic_total >= 10 * cd_total
    assert lt_total >= 5 * cd_total
