"""Figure 7: running time of IC, LT (MC greedy + CELF) and CD vs k.

The paper's headline efficiency result: selecting 50 seeds on
Flixster_Small takes 40 h (IC) / 25 h (LT) with MC+CELF but 3 minutes
with CD.  We reproduce the *orders-of-magnitude gap* at reduced scale:
IC and LT run CELF over Monte Carlo estimation with learned
probabilities/weights; CD runs the scan + Theorem-3 greedy.
"""

from benchmarks.conftest import NUM_SIMULATIONS
from repro.evaluation.performance import runtime_comparison
from repro.evaluation.reporting import format_series

K_RUNTIME = 10  # MC greedy is the paper's bottleneck; keep the sweep short.


def test_fig7_runtime_comparison(benchmark, report, flixster_small, flixster_split):
    train, _ = flixster_split
    curves = benchmark.pedantic(
        lambda: runtime_comparison(
            flixster_small.graph,
            train,
            k=K_RUNTIME,
            num_simulations=NUM_SIMULATIONS,
        ).curves,
        rounds=1,
        iterations=1,
    )
    series = {
        method: [(float(count), elapsed) for count, elapsed in points]
        for method, points in curves.items()
    }
    report(
        format_series(
            "k",
            series,
            title=(
                "Figure 7 (flixster_small) — cumulative seconds to select k seeds\n"
                "paper shape: CD orders of magnitude below IC and LT"
            ),
            y_format="{:.2f}",
        )
    )
    cd_total = series["CD"][-1][1]
    ic_total = series["IC"][-1][1]
    lt_total = series["LT"][-1][1]
    # The paper reports ~800x (IC) and ~500x (LT); at our scale demand
    # at least one order of magnitude.
    assert ic_total >= 10 * cd_total
    assert lt_total >= 5 * cd_total
