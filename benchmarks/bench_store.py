"""Store benchmark: cold (learn + save) vs warm (load) vs serve.

Measures what :mod:`repro.store` buys on the machine at hand and writes
the results to ``BENCH_store.json`` — the repo's record of the
offline/online split the subsystem exists for.

Protocol
--------
Each workload is one ``ExperimentConfig`` with ``store=`` pointing at a
fresh directory, run three times:

* **cold** — empty store: every artifact is learned and saved (the
  cost of the offline phase, including serialization);
* **warm** — same config again: every artifact loads from the store
  and learning is skipped entirely (the online phase an interactive
  consumer pays);
* **baseline** — the same config with no store at all, so the report
  separates the store's save overhead (cold vs baseline) from its
  speedup (baseline vs warm).

As in ``bench_runtime.py``, the dataset is pre-built and passed in, so
synthesis cost is excluded from every leg identically — a deployment
reads its dataset from disk once, and re-synthesizing it per run would
dilute exactly the learn-vs-load difference this benchmark measures.

The cold and warm runs must return *identical* results (the warm-start
contract; ``identical`` records the check).  On top of the experiment
workloads, the report times the query service's hot path: ``select``
and ``spread`` answered by a :class:`~repro.store.service.QueryService`
over the populated store — the per-request latency a ``repro serve``
deployment would see — and records byte-determinism of the responses.

Acceptance: the medium-mode ``prediction_fig3`` workload (the
learning-dominated regime the store exists for) must show
``speedup_warm >= 5`` (warm vs cold, end to end).  ``selection_cd``
reports its honest smaller ratio: its warm floor is the online
``cd_maximize`` query, which depends on the request and is rightly not
cached.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_store.py [--mode medium|quick]
                                                    [--out BENCH_store.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro.api import ExperimentConfig, run_experiment
from repro.data.datasets import flickr_like, flixster_like
from repro.store.service import QueryService


def _fingerprint(result) -> object:
    """Everything that must be identical between cold and warm runs."""
    if result.prediction is not None:
        return result.prediction.records
    return [
        (run.label, run.trial, run.selection.seeds, run.selection.gains,
         run.selection.spread, run.curve)
        for run in result.runs
    ]


def _workloads(mode: str) -> dict[str, dict]:
    if mode == "medium":
        scale, traces, sims, ks = "small", 16, 25, [5, 10]
    else:
        scale, traces, sims, ks = "mini", 8, 20, [2, 3]
    return {
        # The CD pipeline: influenceability learning + the Algorithm-2
        # scan + sigma_cd compilation are the offline work the store
        # amortizes; the online remainder is the cd_maximize query
        # itself, which bounds the warm speedup here (see the report
        # note).
        "selection_cd": dict(
            dataset="flixster",
            scale=scale,
            selectors=["cd", "high_degree"],
            ks=ks,
        ),
        # The Figure-3 trio on the *dense* dataset: EM probability
        # learning dominates end to end (the paper's offline phase),
        # while the online phase is a bounded batch of Monte-Carlo
        # predictions — the regime the >=5x acceptance bar targets.
        "prediction_fig3": dict(
            task="prediction",
            dataset="flickr",
            scale=scale,
            methods=["IC", "LT", "CD"],
            num_simulations=sims,
            max_test_traces=traces,
        ),
    }


def _timed_run(config_kwargs: dict, dataset) -> tuple[float, object]:
    config = ExperimentConfig(**config_kwargs)
    started = time.perf_counter()
    result = run_experiment(config, dataset=dataset)
    return time.perf_counter() - started, result


def bench_workload(name: str, overrides: dict, store_root: str, dataset) -> dict:
    baseline_s, baseline = _timed_run(dict(overrides), dataset)
    cold_s, cold = _timed_run(dict(overrides, store=store_root), dataset)
    warm_s, warm = _timed_run(dict(overrides, store=store_root), dataset)
    assert not warm.store_events["misses"], (
        f"{name}: warm run missed {warm.store_events['misses']}"
    )
    entry = {
        "baseline_s": round(baseline_s, 3),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "save_overhead": round(cold_s / max(baseline_s, 1e-9), 2),
        "speedup_warm": round(cold_s / max(warm_s, 1e-9), 2),
        "speedup_vs_baseline": round(baseline_s / max(warm_s, 1e-9), 2),
        "identical": (
            _fingerprint(cold) == _fingerprint(warm) == _fingerprint(baseline)
        ),
        "artifacts_saved": cold.store_events["saved"],
        "artifacts_hit": warm.store_events["hits"],
    }
    return entry


def bench_serve(store_root: str, k: int, requests: int = 20) -> dict:
    """Per-request latency of the query service's hot path."""
    service = QueryService(store_root)
    select_payload = {"selector": "cd", "k": k}
    first = service.select(select_payload)  # loads the context (cold)
    started = time.perf_counter()
    service_responses = []
    for _ in range(requests):
        service_responses.append(service.select(select_payload))
    select_s = (time.perf_counter() - started) / requests
    seeds = first["selection"]["seeds"]
    started = time.perf_counter()
    spreads = [service.spread({"seeds": seeds}) for _ in range(requests)]
    spread_s = (time.perf_counter() - started) / requests
    return {
        "requests": requests,
        "select_ms": round(select_s * 1000, 3),
        "spread_ms": round(spread_s * 1000, 3),
        "deterministic": (
            all(response == first for response in service_responses)
            and all(response == spreads[0] for response in spreads)
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode", choices=("medium", "quick"), default="medium",
        help="medium: the acceptance workloads (>=5x warm speedup bar); "
        "quick: a seconds-long smoke proving the round trip and parity",
    )
    parser.add_argument("--out", default="BENCH_store.json")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "artifact store (cold learn+save vs warm load) + serve",
        "mode": args.mode,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": (
            "warm runs load every artifact from the store and skip "
            "learning; speedup_warm is end-to-end cold/warm.  The >=5x "
            "acceptance bar applies to the learning-dominated "
            "prediction_fig3 workload; selection_cd's warm ceiling is "
            "the online cd_maximize query itself, which the store "
            "rightly does not cache (it depends on k and the seed-set "
            "request)."
        ),
        "workloads": {},
    }
    failures = []
    scale = "small" if args.mode == "medium" else "mini"
    datasets = {
        "flixster": flixster_like(scale),
        "flickr": flickr_like(scale),
    }
    for name, overrides in _workloads(args.mode).items():
        store_root = tempfile.mkdtemp(prefix="bench-store-")
        try:
            print(f"[bench_store] running {name} ({args.mode}) ...", flush=True)
            entry = bench_workload(
                name, overrides, store_root, datasets[overrides["dataset"]]
            )
            if name == "selection_cd":
                k = overrides["ks"][-1]
                entry["serve"] = bench_serve(store_root, k)
            report["workloads"][name] = entry
            print(
                f"  baseline {entry['baseline_s']}s | cold {entry['cold_s']}s "
                f"| warm {entry['warm_s']}s (x{entry['speedup_warm']}) | "
                f"identical: {entry['identical']}",
                flush=True,
            )
            if not entry["identical"]:
                failures.append(f"{name}: cold/warm results differ")
            if args.mode == "medium" and name == "prediction_fig3" and (
                entry["speedup_warm"] < 5.0
            ):
                failures.append(
                    f"{name}: warm speedup {entry['speedup_warm']} < 5x bar"
                )
        finally:
            shutil.rmtree(store_root, ignore_errors=True)
    for failure in failures:
        print(f"  ERROR: {failure}")
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_store] wrote {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
