"""Ablation: direct-credit schemes on held-out spread prediction.

Section 4 fixes one direct-credit scheme (Eq. 9) after motivating the
design space; this ablation sweeps the schemes the library implements —
uniform, Eq. 9 exponential decay, linear decay, power-law decay, and
evidence-proportional (pair-weighted) — on the Figures-3/4 protocol:
predict held-out trace sizes from their initiators, compare RMSE and
the error-capture rate.

Expected shape: all data-based schemes land in the same accuracy band
(the paper's choice of Eq. 9 is motivated by personalisation, not raw
RMSE); none should be wildly worse than uniform, and the time-aware
schemes should not lose to uniform on the capture rate at the paper's
headline tolerance.
"""

from repro.core.credit import TimeDecayCredit, UniformCredit
from repro.core.params import learn_influenceability
from repro.core.spread import CDSpreadEvaluator
from repro.core.variants import (
    LinearDecayCredit,
    PairWeightedCredit,
    PowerDecayCredit,
)
from repro.evaluation.metrics import capture_curve, rmse
from repro.evaluation.prediction import spread_prediction_experiment
from repro.evaluation.reporting import format_table
from repro.probabilities.lt_weights import count_propagations

MAX_TEST_TRACES = 50
CAPTURE_TOLERANCE = 10.0


def test_ablation_credit_schemes(
    benchmark, report, flixster_small, flixster_split
):
    graph = flixster_small.graph
    train, _ = flixster_split
    params = learn_influenceability(graph, train)
    pair_counts = count_propagations(graph, train)

    schemes = {
        "uniform": UniformCredit(),
        "Eq.9 exp decay": TimeDecayCredit(params),
        "linear decay": LinearDecayCredit(params),
        "power decay": PowerDecayCredit(params),
        "pair-weighted": PairWeightedCredit(pair_counts),
    }
    predictors = {
        name: CDSpreadEvaluator(graph, train, credit=scheme).spread
        for name, scheme in schemes.items()
    }

    experiment = benchmark.pedantic(
        lambda: spread_prediction_experiment(
            graph,
            flixster_small.log,
            predictors,
            max_test_traces=MAX_TEST_TRACES,
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    results: dict[str, tuple[float, float]] = {}
    for name in schemes:
        pairs = experiment.pairs(name)
        error = rmse(pairs)
        captured = capture_curve(pairs, [CAPTURE_TOLERANCE])[0][1]
        results[name] = (error, captured)
        rows.append([name, f"{error:.1f}", f"{captured:.0%}"])
    report(
        format_table(
            ["credit scheme", "RMSE", f"captured (err<={CAPTURE_TOLERANCE:.0f})"],
            rows,
            title=(
                "Ablation — direct-credit schemes on held-out prediction "
                f"(flixster_small, {experiment.num_test_traces} test traces)\n"
                "paper: Eq. 9 chosen for personalisation; uniform shown "
                "'for ease of exposition'"
            ),
        )
    )
    errors = {name: error for name, (error, _) in results.items()}
    best = min(errors.values())
    # Every data-based scheme lands in the same accuracy band.
    assert all(error <= 2.0 * best for error in errors.values())
    # The paper's Eq. 9 scheme is competitive with the best variant.
    assert errors["Eq.9 exp decay"] <= 1.5 * best
