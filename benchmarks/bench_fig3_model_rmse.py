"""Figure 3: spread-prediction RMSE of the IC, LT and CD models.

Models are trained on the 80% training traces; each test trace's
initiators form the seed set and the trace size is the actual spread.
Expected shapes: CD has the lowest error on both datasets; the IC-vs-LT
ordering flips between the sparse (flixster) and dense (flickr) dataset.

Runs through the unified runtime as
``ExperimentConfig(task="prediction")`` — the same config format (and
stage pipeline) the selection benches use.
"""

from benchmarks.conftest import MAX_TEST_TRACES
from repro.api import ExperimentConfig, run_experiment
from repro.evaluation.metrics import binned_rmse
from repro.evaluation.reporting import format_series, format_table

NUM_SIMULATIONS = 200  # the legacy predictors' default


def _run(dataset, name):
    config = ExperimentConfig(
        task="prediction",
        dataset=name,
        scale="small",
        methods=["IC", "LT", "CD"],
        num_simulations=NUM_SIMULATIONS,
        max_test_traces=MAX_TEST_TRACES,
    )
    return run_experiment(config, dataset=dataset)


def _report_dataset(report, result, name, bin_width):
    series = {
        method: [
            (lower, value)
            for lower, value, _ in binned_rmse(result.pairs(method), bin_width)
        ]
        for method in result.prediction_methods()
    }
    report(
        format_series(
            "spread-bin",
            series,
            title=(
                f"Figure 3 ({name}) — RMSE by actual-spread bin\n"
                "paper shape: CD lowest across bins"
            ),
        )
    )


def test_fig3_flixster(benchmark, report, flixster_small):
    result = benchmark.pedantic(
        lambda: _run(flixster_small, "flixster"), rounds=1, iterations=1
    )
    _report_dataset(report, result, "flixster_small", bin_width=20.0)
    overall = result.rmse_table()
    report(
        format_table(
            ["method", "overall RMSE"],
            [[m, f"{overall[m]:.1f}"] for m in result.prediction_methods()],
        )
    )
    # Flixster shape: CD most accurate, LT worst (IC beats LT here; the
    # ordering flips on the flickr dataset below, as in the paper).
    assert overall["CD"] <= 1.15 * overall["IC"]
    assert overall["CD"] <= overall["LT"]
    assert overall["IC"] <= overall["LT"]


def test_fig3_flickr(benchmark, report, flickr_small):
    result = benchmark.pedantic(
        lambda: _run(flickr_small, "flickr"), rounds=1, iterations=1
    )
    _report_dataset(report, result, "flickr_small", bin_width=20.0)
    overall = result.rmse_table()
    report(
        format_table(
            ["method", "overall RMSE"],
            [[m, f"{overall[m]:.1f}"] for m in result.prediction_methods()],
        )
    )
    # Flickr shape (the paper's "interesting observation"): the IC/LT
    # ordering flips — LT beats IC here — and CD sits at the accurate
    # end.  At reproduction scale CD and LT are a statistical tie on the
    # dense dataset (within a few percent), so CD is held to LT's band
    # rather than strictly below it.
    assert overall["CD"] <= 1.05 * overall["LT"]
    assert overall["CD"] <= overall["IC"]
    assert overall["LT"] <= overall["IC"]
