"""Figure 3: spread-prediction RMSE of the IC, LT and CD models.

Models are trained on the 80% training traces; each test trace's
initiators form the seed set and the trace size is the actual spread.
Expected shapes: CD has the lowest error on both datasets; the IC-vs-LT
ordering flips between the sparse (flixster) and dense (flickr) dataset.
"""

from benchmarks.conftest import MAX_TEST_TRACES
from repro.evaluation.metrics import binned_rmse, rmse
from repro.evaluation.prediction import spread_prediction_experiment
from repro.evaluation.reporting import format_series, format_table


def _run(dataset):
    return spread_prediction_experiment(
        dataset.graph, dataset.log, max_test_traces=MAX_TEST_TRACES
    )


def _report_dataset(report, experiment, name, bin_width):
    series = {
        method: [
            (lower, value)
            for lower, value, _ in binned_rmse(experiment.pairs(method), bin_width)
        ]
        for method in experiment.methods
    }
    report(
        format_series(
            "spread-bin",
            series,
            title=(
                f"Figure 3 ({name}) — RMSE by actual-spread bin\n"
                "paper shape: CD lowest across bins"
            ),
        )
    )


def test_fig3_flixster(benchmark, report, flixster_small):
    experiment = benchmark.pedantic(
        lambda: _run(flixster_small), rounds=1, iterations=1
    )
    _report_dataset(report, experiment, "flixster_small", bin_width=20.0)
    overall = {m: rmse(experiment.pairs(m)) for m in experiment.methods}
    report(
        format_table(
            ["method", "overall RMSE"],
            [[m, f"{overall[m]:.1f}"] for m in experiment.methods],
        )
    )
    # Flixster shape: CD most accurate, LT worst (IC beats LT here; the
    # ordering flips on the flickr dataset below, as in the paper).
    assert overall["CD"] <= 1.15 * overall["IC"]
    assert overall["CD"] <= overall["LT"]
    assert overall["IC"] <= overall["LT"]


def test_fig3_flickr(benchmark, report, flickr_small):
    experiment = benchmark.pedantic(
        lambda: _run(flickr_small), rounds=1, iterations=1
    )
    _report_dataset(report, experiment, "flickr_small", bin_width=20.0)
    overall = {m: rmse(experiment.pairs(m)) for m in experiment.methods}
    report(
        format_table(
            ["method", "overall RMSE"],
            [[m, f"{overall[m]:.1f}"] for m in experiment.methods],
        )
    )
    # Flickr shape (the paper's "interesting observation"): the IC/LT
    # ordering flips — LT beats IC here — and CD is the most accurate.
    assert overall["CD"] <= overall["LT"]
    assert overall["CD"] <= overall["IC"]
    assert overall["LT"] <= overall["IC"]
