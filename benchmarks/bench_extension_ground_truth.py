"""Extension: Figure 6 re-run against the hidden ground truth.

The paper cannot observe the actual spread of arbitrary seed sets, so
Figure 6 scores every method with the CD model's own estimate — the
best available proxy, but a proxy.  Our synthetic substrate keeps the
hidden cascade model that generated the log, so this bench re-runs the
Figure-6 comparison with the *oracle* yardstick: Monte Carlo over the
true (never-learned) dynamics.

Expected shape — and the validation it provides: the oracle reproduces
the paper's proxy-based ordering (CD ≥ LT > High-Degree/PageRank > IC),
confirming that (a) the CD model's seeds really are the best, not just
self-preferred, and (b) using sigma_cd as the Figure-6 ground-truth
proxy was sound on this substrate.
"""

from repro.evaluation.groundtruth import ground_truth_evaluation
from repro.evaluation.reporting import format_table

K = 10
NUM_SIMULATIONS = 150
METHODS = ["CD", "EM", "LT", "HighDegree", "PageRank"]


def test_extension_ground_truth(
    benchmark, report, flixster_small, flixster_selector
):
    seed_sets = {
        method: flixster_selector.seeds(method, K) for method in METHODS
    }
    scores = benchmark.pedantic(
        lambda: ground_truth_evaluation(
            flixster_small, seed_sets, num_simulations=NUM_SIMULATIONS
        ),
        rounds=1,
        iterations=1,
    )
    ranked = sorted(scores.items(), key=lambda pair: -pair[1])
    report(
        format_table(
            ["method", "true expected spread"],
            [[method, f"{score:.1f}"] for method, score in ranked],
            title=(
                f"Extension — Figure 6 under the hidden-truth oracle "
                f"(flixster_small, k={K}, {NUM_SIMULATIONS} simulations)\n"
                "paper (CD-proxy yardstick): CD >= LT > heuristics > IC"
            ),
        )
    )
    # The paper's ordering, validated by the oracle:
    # CD at the top (within MC noise of the best)...
    best = ranked[0][1]
    assert scores["CD"] >= 0.95 * best
    # ...IC-with-EM at the bottom, below both structural heuristics
    # (the Section-6 "rarely active seeds" pathology is real).
    assert scores["EM"] <= scores["HighDegree"]
    assert scores["EM"] <= scores["CD"]
    # LT's learned weights beat the structure-only heuristics.
    assert scores["LT"] >= 0.95 * scores["HighDegree"]