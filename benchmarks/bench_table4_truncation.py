"""Table 4: effect of the truncation threshold lambda on Flixster_Large.

Sweeps lambda over the paper's grid, reporting influence spread (exact
evaluator), "true seeds discovered" (vs the smallest lambda), memory
and runtime.  Expected shape: as lambda decreases, quality improves and
saturates around lambda = 0.001 while memory and runtime keep growing —
which is why 0.001 is the library default.
"""

from repro.evaluation.performance import truncation_experiment
from repro.evaluation.reporting import format_table

LAMBDAS = [0.1, 0.01, 0.001, 0.0001]
K = 25

PAPER_ROWS = {
    0.1: (2959, 38, 2.1, 5.25),
    0.01: (3220, 45, 6.0, 8.62),
    0.001: (3267, 48, 18.8, 21.25),
    0.0001: (3270, 50, 51.0, 46.7),
}


def test_table4_truncation_sweep(benchmark, report, flixster_large):
    rows = benchmark.pedantic(
        lambda: truncation_experiment(
            flixster_large.graph, flixster_large.log, truncations=LAMBDAS, k=K
        ),
        rounds=1,
        iterations=1,
    )
    table_rows = []
    for row in rows:
        paper = PAPER_ROWS[row.truncation]
        table_rows.append(
            [
                row.truncation,
                f"{row.spread:.1f}",
                f"{row.true_seeds_discovered}/{K}",
                f"{row.memory_bytes / 1e6:.1f}",
                f"{row.runtime_seconds:.1f}",
                f"{paper[0]} / {paper[1]}/50 / {paper[2]}GB / {paper[3]}min",
            ]
        )
    report(
        format_table(
            [
                "lambda",
                "spread",
                "true seeds",
                "mem MB",
                "runtime s",
                "paper (spread/seeds/mem/time)",
            ],
            table_rows,
            title="Table 4 (flixster_large) — truncation threshold sweep",
        )
    )
    # Shapes: memory/runtime increase as lambda shrinks...
    assert rows[-1].memory_bytes > rows[0].memory_bytes
    assert rows[-1].index_entries > rows[0].index_entries
    # ...while quality improves and saturates: 0.001 within 1% of 0.0001.
    assert rows[-1].spread >= rows[0].spread - 1e-9
    spread_at_001 = next(r.spread for r in rows if r.truncation == 0.001)
    assert spread_at_001 >= 0.99 * rows[-1].spread
    # True-seed recovery grows with fidelity.
    assert rows[-1].true_seeds_discovered == K
    assert rows[0].true_seeds_discovered <= rows[-1].true_seeds_discovered
