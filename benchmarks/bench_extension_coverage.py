"""Extension: seed minimization — how many seeds reach a target spread?

The dual of the paper's Problem 2: instead of fixing k and maximizing
``sigma_cd``, fix a spread target and minimize the seed count
(submodular set cover; Wolsey 1982 bicriteria guarantee).  The bench
sweeps the target as a fraction of the exhaustive maximum and reports
the seeds the greedy cover needs.

Expected shape: diminishing returns — the seed bill grows far faster
than linearly as the target approaches the ceiling (the top of the
sigma_cd curve is nearly flat), which is the Figure-6 concavity read in
the other direction.  The cover sequence is the cd_maximize greedy
prefix, so reaching 100% needs every profitable candidate.
"""

from repro.core.coverage import cd_cover
from repro.core.maximize import cd_maximize
from repro.core.scan import scan_action_log
from repro.evaluation.reporting import format_table

TARGET_FRACTIONS = (0.25, 0.50, 0.75, 0.90, 0.99)


def test_extension_coverage_targets(benchmark, report, flixster_split, flixster_small):
    train, _ = flixster_split
    index = scan_action_log(flixster_small.graph, train, truncation=0.001)
    ceiling = cd_maximize(index, k=len(index.activity)).spread

    def run_covers():
        return [
            cd_cover(index, target=ceiling * fraction)
            for fraction in TARGET_FRACTIONS
        ]

    covers = benchmark.pedantic(run_covers, rounds=1, iterations=1)

    rows = []
    previous_seeds = 0
    for fraction, cover in zip(TARGET_FRACTIONS, covers):
        rows.append(
            [
                f"{fraction:.0%}",
                f"{cover.target:.1f}",
                len(cover.seeds),
                f"+{len(cover.seeds) - previous_seeds}",
                f"{cover.spread:.1f}",
                "yes" if cover.reached else "NO",
                cover.oracle_calls,
            ]
        )
        previous_seeds = len(cover.seeds)
    report(
        format_table(
            [
                "target %",
                "target",
                "seeds",
                "extra seeds",
                "spread",
                "reached",
                "gain evals",
            ],
            rows,
            title=(
                "Extension — seed minimization under the CD model "
                f"(flixster_small train split, ceiling = {ceiling:.1f})\n"
                "expected: per-step seed bill explodes as the target nears "
                "the ceiling (diminishing returns)"
            ),
        )
    )

    # Every target below the ceiling is reachable.
    assert all(cover.reached for cover in covers)
    # The covers are nested greedy prefixes: seed counts non-decreasing.
    counts = [len(cover.seeds) for cover in covers]
    assert counts == sorted(counts)
    # Diminishing returns: the last 9% of spread costs more seeds than
    # the first 50%.
    seeds_to_half = counts[1]
    seeds_last_stretch = counts[4] - counts[3]
    assert seeds_last_stretch > seeds_to_half
