"""Extension: budgeted influence maximization with heterogeneous costs.

Real campaigns pay per seed: the more active a user, the more their
endorsement costs.  This bench prices each user proportionally to their
activity (the CD model's own influence currency), sweeps the budget,
and compares the CEF rule of Leskovec et al. (KDD'07, the paper's CELF
reference [12]) against its two constituent passes and a high-activity
baseline that ignores marginal gains.

Expected shape: at tight budgets the ratio pass (gain per unit cost)
wins — buying two cheap mid-influencers beats one expensive star; as
the budget loosens the two passes converge; CEF always matches the
better pass and dominates the activity baseline.
"""

from repro.core.budget import _lazy_budget_pass, cd_budget_maximize
from repro.core.scan import scan_action_log
from repro.core.spread import CDSpreadEvaluator
from repro.evaluation.reporting import format_table

BUDGETS = (2.0, 4.0, 8.0, 16.0, 32.0)


def _activity_costs(index) -> dict:
    """Cost ~ 1 + activity / 10: busy users charge more."""
    return {
        user: 1.0 + index.activity[user] / 10.0 for user in index.users()
    }


def _greedy_by_activity(index, budget: float, costs: dict) -> list:
    """Baseline: buy the most active affordable users, ignoring gains."""
    remaining = budget
    chosen = []
    ranked = sorted(
        index.users(), key=lambda user: (-index.activity[user], repr(user))
    )
    for user in ranked:
        if costs[user] <= remaining:
            chosen.append(user)
            remaining -= costs[user]
    return chosen


def test_extension_budgeted_maximization(
    benchmark, report, flixster_split, flixster_small
):
    train, _ = flixster_split
    graph = flixster_small.graph
    index = scan_action_log(graph, train, truncation=0.001)
    costs = _activity_costs(index)
    evaluator = CDSpreadEvaluator(graph, train)

    def run_sweep():
        return [
            cd_budget_maximize(index, budget=budget, costs=costs)
            for budget in BUDGETS
        ]

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for budget, result in zip(BUDGETS, results):
        benefit_seeds, benefit_gains, _, _ = _lazy_budget_pass(
            index.copy(), budget, costs, 1.0, by_ratio=False
        )
        ratio_seeds, ratio_gains, _, _ = _lazy_budget_pass(
            index.copy(), budget, costs, 1.0, by_ratio=True
        )
        baseline_seeds = _greedy_by_activity(index, budget, costs)
        baseline_spread = evaluator.spread(baseline_seeds)
        rows.append(
            [
                f"{budget:.0f}",
                f"{sum(benefit_gains):.1f} ({len(benefit_seeds)})",
                f"{sum(ratio_gains):.1f} ({len(ratio_seeds)})",
                f"{result.spread:.1f} ({len(result.seeds)})",
                result.rule,
                f"{baseline_spread:.1f} ({len(baseline_seeds)})",
            ]
        )
        # CEF invariants: within budget, equals the better pass, and
        # dominates the cost-blind activity baseline.
        assert result.spent <= budget + 1e-9
        assert result.spread >= max(sum(benefit_gains), sum(ratio_gains)) - 1e-9
        assert result.spread >= baseline_spread - 1e-9
    report(
        format_table(
            [
                "budget",
                "benefit pass",
                "ratio pass",
                "CEF winner",
                "rule",
                "by-activity",
            ],
            rows,
            title=(
                "Extension — budgeted CD maximization, cost ~ activity "
                "(flixster_small train split; 'spread (seeds)')\n"
                "expected: CEF = max(passes) at every budget and beats the "
                "cost-blind activity baseline"
            ),
        )
    )

    # Loosening the budget 16x buys substantially more spread.
    assert results[-1].spread > results[0].spread
