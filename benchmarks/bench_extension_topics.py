"""Extension: topic-conditional influence maximization.

Influence is topic-dependent (the paper's references [7] and [16]); the
CD model's per-action credit independence makes conditioning exact:
scanning one topic's actions yields precisely the index a topic-only
log would produce.  The bench partitions the training actions into
three synthetic genres, selects seeds per genre, and scores them
against the global seed set *on each genre's own index*.

Expected shape: per-topic seeds beat (or tie) the global seeds on their
own topic at equal k for most genres and in aggregate — specialization
pays whenever topics disagree — and the specialization score is
strictly positive (one global campaign cannot be optimal for every
genre at once).
"""

from repro.core.maximize import cd_maximize
from repro.core.scan import scan_action_log
from repro.core.spread import CDSpreadEvaluator
from repro.core.topics import (
    scan_topics,
    topic_seed_sets,
    topic_specialization,
)
from repro.evaluation.reporting import format_table

K = 10
NUM_TOPICS = 3


def _genre_of(action) -> str:
    """Deterministic 3-way genre labelling of dataset actions ('a<i>')."""
    return f"genre{int(str(action)[1:]) % NUM_TOPICS}"


def test_extension_topic_conditional_seeds(
    benchmark, report, flixster_split, flixster_small
):
    train, _ = flixster_split
    graph = flixster_small.graph

    def run_topics():
        indices = scan_topics(graph, train, _genre_of, truncation=0.001)
        return indices, topic_seed_sets(indices, k=K)

    indices, per_topic = benchmark.pedantic(run_topics, rounds=1, iterations=1)

    global_index = scan_action_log(graph, train, truncation=0.001)
    global_seeds = cd_maximize(global_index, k=K).seeds

    rows = []
    wins = 0
    total_own = 0.0
    total_crossed = 0.0
    for topic in sorted(indices, key=str):
        topic_log = train.restrict_to_actions(
            [action for action in train.actions() if _genre_of(action) == topic]
        )
        evaluator = CDSpreadEvaluator(graph, topic_log)
        own = evaluator.spread(per_topic[topic].seeds)
        crossed = evaluator.spread(global_seeds)
        overlap = len(set(per_topic[topic].seeds) & set(global_seeds))
        total_own += own
        total_crossed += crossed
        if own >= crossed - 1e-9:
            wins += 1
        rows.append(
            [
                topic,
                indices[topic].total_entries,
                f"{own:.1f}",
                f"{crossed:.1f}",
                f"{own / crossed:.2f}x" if crossed else "inf",
                f"{overlap}/{K}",
            ]
        )
    specialization = topic_specialization(
        {topic: result.seeds for topic, result in per_topic.items()}
    )
    rows.append(["specialization", "", "", "", f"{specialization:.2f}", ""])
    report(
        format_table(
            [
                "genre",
                "credit entries",
                "topic seeds",
                "global seeds",
                "ratio",
                "overlap",
            ],
            rows,
            title=(
                f"Extension — topic-conditional seeds, k = {K} "
                "(flixster_small train split, 3 synthetic genres; spreads "
                "scored on each genre's own log)\n"
                "expected: topic seeds >= global seeds on their own genre; "
                "specialization > 0"
            ),
        )
    )

    # Specialized seeds win (or tie) on most topics.  (Greedy carries no
    # per-instance optimality, so a narrow per-topic loss is possible;
    # the aggregate must still favour specialization.)
    assert wins * 2 >= len(indices)
    assert total_own >= total_crossed
    # The genres genuinely disagree about who the right seeds are.
    assert specialization > 0.0
