"""Table 1: statistics of the four datasets.

Regenerates the paper's dataset-statistics table for the synthetic
stand-ins, printing the paper's reported values alongside.  The timed
kernel is full dataset synthesis (graph generation + hidden-truth
cascade simulation), the substrate every other experiment consumes.
"""

from repro.data.datasets import flixster_like
from repro.evaluation.reporting import format_table


def test_table1_dataset_statistics(
    benchmark, report, flixster_small, flickr_small, flixster_large, flickr_large
):
    benchmark.pedantic(
        lambda: flixster_like("small"), rounds=1, iterations=1
    )
    rows = []
    for dataset in (flixster_small, flickr_small, flixster_large, flickr_large):
        stats = dataset.stats()
        reference = dataset.paper_reference
        rows.append(
            [
                dataset.name,
                stats.num_nodes,
                stats.num_edges,
                stats.avg_degree,
                stats.num_propagations,
                stats.num_tuples,
                (
                    f"{reference.num_nodes} / {reference.num_edges} / "
                    f"{reference.avg_degree} / {reference.num_propagations} / "
                    f"{reference.num_tuples}"
                    if reference
                    else "-"
                ),
            ]
        )
    report(
        format_table(
            [
                "dataset",
                "#nodes",
                "#edges",
                "avg.deg",
                "#props",
                "#tuples",
                "paper (nodes/edges/deg/props/tuples)",
            ],
            rows,
            title="Table 1 — dataset statistics (synthetic stand-ins)",
        )
    )
    # Shape assertions: flickr denser than flixster, large bigger than small.
    assert flickr_small.graph.average_degree() > flixster_small.graph.average_degree()
    assert flixster_large.log.num_tuples > flixster_small.log.num_tuples
