"""Ablation: uniform direct credit vs the Eq. 9 time-decay scheme.

The paper motivates Eq. 9 (time decay + user influenceability) over the
"ease of exposition" uniform credit ``1/d_in(u, a)`` but does not
evaluate the choice directly; this ablation does.  Both credit schemes
are trained on the training traces and scored on the held-out spread-
prediction task of Figure 3.  Expected shape: time-decayed credit
predicts test spreads at least as well as uniform credit, because it
discounts stale and incidental co-activations.
"""

from benchmarks.conftest import MAX_TEST_TRACES
from repro.core.credit import TimeDecayCredit, UniformCredit
from repro.core.params import learn_influenceability
from repro.core.spread import CDSpreadEvaluator
from repro.data.split import train_test_split
from repro.evaluation.metrics import capture_curve, rmse
from repro.evaluation.prediction import spread_prediction_experiment
from repro.evaluation.reporting import format_table


def _run(dataset):
    train, _ = train_test_split(dataset.log)
    params = learn_influenceability(dataset.graph, train)
    predictors = {
        "CD-uniform": CDSpreadEvaluator(
            dataset.graph, train, credit=UniformCredit()
        ).spread,
        "CD-eq9": CDSpreadEvaluator(
            dataset.graph, train, credit=TimeDecayCredit(params)
        ).spread,
    }
    return spread_prediction_experiment(
        dataset.graph,
        dataset.log,
        predictors=predictors,
        max_test_traces=MAX_TEST_TRACES,
    )


def test_ablation_credit_scheme(benchmark, report, flixster_small):
    experiment = benchmark.pedantic(
        lambda: _run(flixster_small), rounds=1, iterations=1
    )
    thresholds = [5, 10, 20, 40]
    rows = []
    for method in experiment.methods:
        pairs = experiment.pairs(method)
        curve = dict(capture_curve(pairs, thresholds))
        rows.append(
            [
                method,
                f"{rmse(pairs):.1f}",
                *[f"{curve[t]:.2f}" for t in thresholds],
            ]
        )
    report(
        format_table(
            ["credit scheme", "RMSE", *[f"cap@{t}" for t in thresholds]],
            rows,
            title=(
                "Ablation — uniform vs Eq.9 time-decay direct credit "
                "(flixster_small, Figure-3 protocol)"
            ),
        )
    )
    uniform_rmse = rmse(experiment.pairs("CD-uniform"))
    eq9_rmse = rmse(experiment.pairs("CD-eq9"))
    # Eq. 9 must not be materially worse than uniform on prediction.
    assert eq9_rmse <= 1.25 * uniform_rmse
