"""Figure 9: solution quality vs number of training tuples.

For each tuple budget, the CD pipeline selects seeds from the sub-log;
quality is (a) the spread of those seeds under the *full-log* CD model
and (b) the overlap with the "true seeds" selected from the complete
log.  Expected shape: both saturate well before the full log — a small
sample of traces suffices, which is why the paper concludes memory "in
reality ... is not that high".
"""

from repro.evaluation.performance import scalability_experiment
from repro.evaluation.reporting import format_table

K = 25


def _sweep(dataset, fractions=(0.15, 0.3, 0.5, 0.75, 1.0)):
    total = dataset.log.num_tuples
    counts = [int(total * f) for f in fractions]
    return scalability_experiment(
        dataset.graph, dataset.log, tuple_counts=counts, k=K
    )


def _report_rows(report, rows, name):
    report(
        format_table(
            ["#tuples", "spread (full-log CD)", f"true seeds (of {K})"],
            [
                [row.num_tuples, f"{row.spread:.1f}", row.true_seed_overlap]
                for row in rows
            ],
            title=(
                f"Figure 9 ({name}) — quality vs training tuples\n"
                "paper shape: spread and true-seed overlap saturate early"
            ),
        )
    )


def test_fig9_flixster_large(benchmark, report, flixster_large):
    rows = benchmark.pedantic(
        lambda: _sweep(flixster_large), rounds=1, iterations=1
    )
    _report_rows(report, rows, "flixster_large")
    # The full log recovers itself.
    assert rows[-1].true_seed_overlap == K
    # Saturation shape: 75% of tuples already reaches ~most of the final
    # spread, and half the tuples reaches >= 80%.
    assert rows[-2].spread >= 0.9 * rows[-1].spread
    assert rows[2].spread >= 0.8 * rows[-1].spread


def test_fig9_flickr_large(benchmark, report, flickr_large):
    # Fewer sweep points on the denser dataset to bound suite runtime.
    rows = benchmark.pedantic(
        lambda: _sweep(flickr_large, fractions=(0.3, 0.6, 1.0)),
        rounds=1,
        iterations=1,
    )
    _report_rows(report, rows, "flickr_large")
    assert rows[-1].true_seed_overlap == K
    assert rows[-2].spread >= 0.85 * rows[-1].spread
