"""Figure 5: seed-set intersections between the IC, LT and CD models.

Expected shape (paper): IC's seed set is disjoint from both LT's and
CD's; LT and CD overlap substantially (~50%).  As in the paper, IC uses
the PMIA heuristic and LT uses LDAG where MC greedy would be too slow.
"""

from benchmarks.conftest import K_SELECT
from repro.evaluation.metrics import seed_set_intersections
from repro.evaluation.reporting import format_matrix

METHODS = ["IC", "LT", "CD"]


def _matrix(selector, k):
    seed_sets = {method: selector.seeds(method, k) for method in METHODS}
    return seed_set_intersections(seed_sets)


def test_fig5_flixster(benchmark, report, flixster_selector):
    matrix = benchmark.pedantic(
        lambda: _matrix(flixster_selector, K_SELECT), rounds=1, iterations=1
    )
    report(
        format_matrix(
            METHODS,
            matrix,
            title=(
                f"Figure 5 (flixster_small, k={K_SELECT}) — model seed overlap\n"
                "paper shape: IC∩LT = IC∩CD = 0; LT∩CD ~ 50%"
            ),
        )
    )
    assert matrix[("IC", "CD")] <= matrix[("LT", "CD")]
    assert matrix[("IC", "CD")] / K_SELECT <= 0.3


def test_fig5_flickr(benchmark, report, flickr_selector):
    matrix = benchmark.pedantic(
        lambda: _matrix(flickr_selector, K_SELECT), rounds=1, iterations=1
    )
    report(
        format_matrix(
            METHODS,
            matrix,
            title=f"Figure 5 (flickr_small, k={K_SELECT}) — model seed overlap",
        )
    )
    assert matrix[("IC", "CD")] <= matrix[("LT", "CD")] + K_SELECT // 5
