"""Runtime benchmark: the executor seam, serial vs thread vs process.

Times the two end-to-end protocols of the unified stage pipeline
(:mod:`repro.runtime`) under each executor and writes the results to
``BENCH_runtime.json`` — the repo's record of what the parallel seam
buys on the machine at hand.

Protocol
--------
Each workload is one ``ExperimentConfig`` run through
:func:`repro.api.run_experiment` three times — ``executor="serial"``,
``"thread"`` and ``"process"`` — timing the full pipeline (dataset
synthesis excluded: the dataset is pre-built and passed in, as the
benchmark fixtures do).  Because the runtime derives every task's seed
from labels and reduces in submission order, the three runs must return
*bit-identical* results; the report records that check (``identical``)
next to the wall times, so a speedup can never silently come from
computing something else.

* **prediction** — the Figure-2 line-up (five IC probability
  assignments) over held-out traces: the fan-out is (method x
  trace-chunk) tasks, each a batch of Monte-Carlo estimates.
* **selection** — CELF over the EM-learned IC oracle: the fan-out is
  the initial singleton sweep plus chunked Monte-Carlo batches inside
  every spread call.

Interpreting the numbers
------------------------
Process-executor speedup is bounded by physical cores — the report
records ``cpu_count`` so the ratios can be read in context.  On a
single-core machine the parallel executors can only add overhead
(pool forking, task pickling); the interesting single-core number is
that the overhead stays small, i.e. the seam is safe to leave on.  On
an N-core machine the embarrassingly parallel stages scale toward
min(N, #tasks); the >=1.5x process-executor acceptance bar for the
``medium`` workloads applies to multi-core hardware.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_runtime.py [--mode medium|quick]
                                                      [--out BENCH_runtime.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.api import ExperimentConfig, run_experiment
from repro.data.datasets import flixster_like

EXECUTORS = ("serial", "thread", "process")


def _fingerprint(result) -> object:
    """Everything that must be identical across executors."""
    if result.prediction is not None:
        return result.prediction.records
    return [
        (run.label, run.trial, run.selection.seeds, run.selection.gains,
         run.selection.spread, run.curve)
        for run in result.runs
    ]


def _workloads(mode: str) -> dict[str, dict]:
    if mode == "medium":
        scale, sims, traces, k, select_sims = "small", 200, 50, 8, 400
    else:
        scale, sims, traces, k, select_sims = "mini", 20, 8, 3, 60
    return {
        "prediction_fig2": dict(
            task="prediction",
            dataset="flixster",
            scale=scale,
            methods=["UN", "WC", "TV", "EM", "PT"],
            num_simulations=sims,
            max_test_traces=traces,
        ),
        "selection_celf_ic": dict(
            dataset="flixster",
            scale=scale,
            selectors=[{"name": "celf", "params": {"model": "ic"},
                        "label": "IC"}],
            ks=[k],
            num_simulations=select_sims,
            evaluate_spread=False,
        ),
    }


def bench_workload(name: str, overrides: dict, dataset) -> dict:
    entry: dict[str, object] = {}
    fingerprints = {}
    # Warm-up: pay one-time lazy imports and artifact learning outside
    # the timed runs, so the serial baseline is not charged for them.
    run_experiment(ExperimentConfig(**overrides, executor="serial"),
                   dataset=dataset)
    for executor in EXECUTORS:
        config = ExperimentConfig(**overrides, executor=executor)
        started = time.perf_counter()
        result = run_experiment(config, dataset=dataset)
        entry[f"{executor}_s"] = round(time.perf_counter() - started, 3)
        fingerprints[executor] = _fingerprint(result)
    entry["identical"] = all(
        fingerprints[executor] == fingerprints["serial"]
        for executor in EXECUTORS
    )
    for executor in ("thread", "process"):
        entry[f"speedup_{executor}"] = round(
            entry["serial_s"] / max(entry[f"{executor}_s"], 1e-9), 2
        )
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode", choices=("medium", "quick"), default="medium",
        help="medium: the acceptance workloads; quick: a seconds-long "
        "smoke proving all three executors run and agree",
    )
    parser.add_argument("--out", default="BENCH_runtime.json")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "runtime executors (serial vs thread vs process)",
        "mode": args.mode,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": (
            "speedups are bounded by cpu_count; on a single-core machine "
            "the parallel executors measure seam overhead, not speedup — "
            "the >=1.5x process acceptance bar applies to multi-core "
            "hardware"
            if (os.cpu_count() or 1) <= 1
            else "process speedup target for medium workloads: >= 1.5x"
        ),
        "workloads": {},
    }
    scale = "small" if args.mode == "medium" else "mini"
    dataset = flixster_like(scale)
    for name, overrides in _workloads(args.mode).items():
        print(f"[bench_runtime] running {name} ({args.mode}) ...", flush=True)
        entry = bench_workload(name, overrides, dataset)
        report["workloads"][name] = entry
        print(
            f"  serial {entry['serial_s']}s | thread {entry['thread_s']}s "
            f"(x{entry['speedup_thread']}) | process {entry['process_s']}s "
            f"(x{entry['speedup_process']}) | identical: "
            f"{entry['identical']}",
            flush=True,
        )
        if not entry["identical"]:
            print("  ERROR: executors disagreed — parity violation")
            return 1
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_runtime] wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
