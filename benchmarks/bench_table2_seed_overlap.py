"""Table 2: seed-set intersections of UN/WC/TV/EM/PT under the IC model.

The paper's first experiment: run greedy influence maximization under
IC with each probability-assignment method and intersect the chosen
seed sets.  Expected shape: EM's row is nearly empty except against PT
(its own perturbation) — ad-hoc probabilities choose *different* seeds
than data-learned ones, and learning is robust to noise.

As in the paper's footnote 3, seed selection uses the PMIA heuristic
(empirically near-greedy) to keep IC maximization tractable.
"""

from benchmarks.conftest import K_SELECT
from repro.evaluation.metrics import seed_set_intersections
from repro.evaluation.reporting import format_matrix

METHODS = ["UN", "WC", "TV", "EM", "PT"]


def _overlap_matrix(selector, k):
    seed_sets = {method: selector.seeds(method, k) for method in METHODS}
    return seed_sets, seed_set_intersections(seed_sets)


def test_table2_flixster(benchmark, report, flixster_selector):
    seed_sets, matrix = benchmark.pedantic(
        lambda: _overlap_matrix(flixster_selector, K_SELECT),
        rounds=1,
        iterations=1,
    )
    report(
        format_matrix(
            METHODS,
            matrix,
            title=(
                f"Table 2 (flixster_small, k={K_SELECT}) — seed-set overlap\n"
                "paper shape: EM vs UN/WC/TV <= ~6/50; EM vs PT ~44/50"
            ),
        )
    )
    # Shape assertions: data-learned seeds differ from ad-hoc ones, and
    # noise barely changes them (paper: 44/50 = 88% overlap).
    em_pt = matrix[("EM", "PT")] / K_SELECT
    assert em_pt >= 0.5
    for method in ("UN", "WC", "TV"):
        assert matrix[("EM", method)] / K_SELECT <= 0.5
        assert matrix[("EM", method)] / K_SELECT < em_pt


def test_table2_flickr(benchmark, report, flickr_selector):
    seed_sets, matrix = benchmark.pedantic(
        lambda: _overlap_matrix(flickr_selector, K_SELECT),
        rounds=1,
        iterations=1,
    )
    report(
        format_matrix(
            METHODS,
            matrix,
            title=f"Table 2 (flickr_small, k={K_SELECT}) — seed-set overlap",
        )
    )
    assert matrix[("EM", "PT")] > matrix[("EM", "UN")]
