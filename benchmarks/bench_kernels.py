"""Kernel benchmark: the NumPy backend vs the pure-Python reference.

Times the three hot-path kernels of :mod:`repro.kernels` against the
pure-Python reference implementations they replace, on calibrated
synthetic datasets, and writes the results to ``BENCH_kernels.json`` —
the repo's perf trajectory record.

Protocol
--------
Each backend is measured in two phases, mirroring how the
:class:`repro.api.context.SelectionContext` pipeline actually runs:

* **prep** — the backend's propagation structures, built once per
  (graph, log) pair and shared across stages: per-action
  :class:`~repro.data.propagation.PropagationGraph` DAGs for the
  Python backend (the context memoizes them across learn -> scan), the
  interned :class:`~repro.kernels.interning.CompiledLog` CSR arrays
  plus the :class:`~repro.kernels.scan_numpy.CompiledCredit` tables
  for the NumPy backend;
* **kernel** — the algorithm itself given those structures: the
  Algorithm-2 credit scan, the Saito-EM fixed point, and Monte-Carlo
  IC/LT spread estimation.

The headline ``speedup`` of each kernel is the kernel-phase ratio;
prep times and the end-to-end ratio (prep + kernel) are recorded
alongside so nothing is hidden.  The acceptance bar for the ``medium``
datasets is a >= 10x kernel speedup for each of scan, EM and MC spread.

Datasets
--------
``medium`` is calibrated per kernel to the regime its workload lives
in at experiment scale:

* **scan** — a dense community graph (the paper's Flickr crawl
  averages degree 79) with many partially-overlapping cascades,
  scanned at the Table-4 high-truncation configuration
  (``lambda = 0.1``): the regime where per-link credit evaluation and
  truncation do the most work;
* **EM** — ``flixster_like("large")``: long heavy-tailed cascades,
  many success episodes per edge;
* **MC spread** — the same large graph under its EM-learned IC
  probabilities and degree-normalised LT weights, 4000 simulations
  per estimate (the paper uses 10,000 on C++; the spread estimates of
  both backends agree within Monte-Carlo error).

``quick`` runs the same code on toy inputs in a few seconds — a CI
smoke test proving both backends execute; its ratios are meaningless
and not asserted against.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_kernels.py [--mode medium|quick]
                                                      [--out BENCH_kernels.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.api.context import SelectionContext
from repro.core.credit import TimeDecayCredit
from repro.core.params import learn_influenceability
from repro.core.scan import scan_action_log
from repro.data.datasets import community_social_graph, flixster_like
from repro.data.generator import CascadeModel, generate_action_log
from repro.data.propagation import PropagationGraph
from repro.diffusion.ic import estimate_spread_ic
from repro.diffusion.lt import estimate_spread_lt
from repro.kernels import numpy_available
from repro.probabilities.em import learn_ic_probabilities_em
from repro.utils.rng import make_rng

SCAN_TRUNCATION = 0.1  # the paper's Table-4 high-truncation row


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _scan_dataset(mode: str):
    """Dense-community scan workload (degree ~Flickr, overlapping casc.)."""
    rng = make_rng(7)
    if mode == "medium":
        sizes, degree, actions = [1800, 1200], 100, 2500
    else:
        sizes, degree, actions = [120, 80], 12, 60
    graph = community_social_graph(sizes, degree, seed=rng, reciprocity=0.45)
    model = CascadeModel.random(
        graph, seed=rng, mean_influence=0.004, max_probability=0.2,
        min_delay=0.5, max_delay=6.0, delay_sigma=2.0,
    )
    log = generate_action_log(
        model, num_actions=actions, seed=rng, popularity_exponent=0.7,
        max_initiator_fraction=0.15, background_rate=0.05,
        horizon=15.0, virality_sigma=0.5, process="ic",
    )
    return graph, log


def bench_scan(mode: str) -> dict:
    graph, log = _scan_dataset(mode)
    actions = list(log.actions())

    propagations, prep_python = _timed(
        lambda: {a: PropagationGraph.build(graph, log, a) for a in actions}
    )
    params = learn_influenceability(
        graph, log, propagations=propagations.__getitem__
    )
    credit = TimeDecayCredit(params)

    index_python, kernel_python = _timed(
        lambda: scan_action_log(
            graph, log, credit=credit, truncation=SCAN_TRUNCATION,
            propagations=propagations.__getitem__,
        )
    )

    if numpy_available():
        from repro.kernels.interning import CompiledGraph, CompiledLog
        from repro.kernels.scan_numpy import (
            CompiledCredit,
            scan_action_log_numpy,
        )

        def _prep():
            compiled = CompiledLog(CompiledGraph(graph, log.users()), log)
            return compiled, CompiledCredit(credit, compiled.graph)

        (compiled, compiled_credit), prep_numpy = _timed(_prep)
        index_numpy, kernel_numpy = _timed(
            lambda: scan_action_log_numpy(
                graph, log, credit=credit, truncation=SCAN_TRUNCATION,
                compiled=compiled, compiled_credit=compiled_credit,
            )
        )
        assert index_numpy.total_entries == index_python.total_entries
    else:
        prep_numpy = kernel_numpy = None

    return {
        "dataset": {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "actions": len(actions),
            "truncation": SCAN_TRUNCATION,
            "note": (
                "dense community graph, Table-4 high-truncation "
                "(lambda=0.1) configuration"
            ),
        },
        "entries": index_python.total_entries,
        **_phase_rows(prep_python, kernel_python, prep_numpy, kernel_numpy),
    }


def bench_em(mode: str) -> dict:
    data = flixster_like("large" if mode == "medium" else "mini")
    graph, log = data.graph, data.log
    actions = list(log.actions())

    propagations, prep_python = _timed(
        lambda: {a: PropagationGraph.build(graph, log, a) for a in actions}
    )
    result_python, kernel_python = _timed(
        lambda: learn_ic_probabilities_em(
            graph, log, propagations=propagations.__getitem__
        )
    )

    if numpy_available():
        from repro.kernels.em_numpy import learn_ic_probabilities_em_numpy
        from repro.kernels.interning import CompiledGraph, CompiledLog

        compiled, prep_numpy = _timed(
            lambda: CompiledLog(CompiledGraph(graph, log.users()), log)
        )
        result_numpy, kernel_numpy = _timed(
            lambda: learn_ic_probabilities_em_numpy(
                graph, log, compiled=compiled
            )
        )
        assert list(result_numpy.probabilities) == list(
            result_python.probabilities
        )
    else:
        prep_numpy = kernel_numpy = None

    return {
        "dataset": {
            "name": data.name,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "actions": len(actions),
        },
        "edges_learned": len(result_python.probabilities),
        "iterations": result_python.iterations,
        **_phase_rows(prep_python, kernel_python, prep_numpy, kernel_numpy),
    }


def bench_mc(mode: str) -> dict:
    data = flixster_like("large" if mode == "medium" else "mini")
    graph, log = data.graph, data.log
    simulations = 4000 if mode == "medium" else 200
    context = SelectionContext(graph, log)
    probabilities = context.ic_probabilities("EM")
    weights = context.lt_weights()
    seeds = sorted(graph.nodes(), key=lambda n: -graph.out_degree(n))[:10]

    ic_python, ic_kernel_python = _timed(
        lambda: estimate_spread_ic(
            graph, probabilities, seeds, simulations, seed=11,
            backend="python",
        )
    )
    lt_python, lt_kernel_python = _timed(
        lambda: estimate_spread_lt(
            graph, weights, seeds, simulations, seed=11, backend="python"
        )
    )

    if numpy_available():
        from repro.kernels.mc_numpy import CompiledDiffusion

        ic_compiled, ic_prep_numpy = _timed(
            lambda: CompiledDiffusion(graph, probabilities)
        )
        lt_compiled, lt_prep_numpy = _timed(
            lambda: CompiledDiffusion(graph, weights)
        )
        ic_numpy, ic_kernel_numpy = _timed(
            lambda: ic_compiled.spread_ic(seeds, simulations, 11)
        )
        lt_numpy, lt_kernel_numpy = _timed(
            lambda: lt_compiled.spread_lt(seeds, simulations, 11)
        )
        # Statistical agreement (the protocols consume randomness in a
        # different order; see mc_numpy's module docstring).
        for reference, vectorized in ((ic_python, ic_numpy), (lt_python, lt_numpy)):
            if reference > 0:
                assert abs(vectorized - reference) / reference < 0.05
    else:
        ic_prep_numpy = lt_prep_numpy = None
        ic_kernel_numpy = lt_kernel_numpy = None
        ic_numpy = lt_numpy = None

    ic_row = _phase_rows(0.0, ic_kernel_python, ic_prep_numpy, ic_kernel_numpy)
    lt_row = _phase_rows(0.0, lt_kernel_python, lt_prep_numpy, lt_kernel_numpy)
    speedups = [
        row["speedup"] for row in (ic_row, lt_row) if row["speedup"]
    ]
    return {
        "dataset": {
            "name": data.name,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "num_simulations": simulations,
            "seed_set_size": len(seeds),
        },
        "ic": {"spread": {"python": ic_python, "numpy": ic_numpy}, **ic_row},
        "lt": {"spread": {"python": lt_python, "numpy": lt_numpy}, **lt_row},
        "speedup": min(speedups) if speedups else None,
    }


def _phase_rows(prep_python, kernel_python, prep_numpy, kernel_numpy) -> dict:
    row = {
        "prep_s": {"python": _r(prep_python), "numpy": _r(prep_numpy)},
        "kernel_s": {"python": _r(kernel_python), "numpy": _r(kernel_numpy)},
        "speedup": None,
        "end_to_end_speedup": None,
    }
    if kernel_numpy:
        row["speedup"] = _r(kernel_python / kernel_numpy)
        if prep_numpy is not None:
            row["end_to_end_speedup"] = _r(
                (prep_python + kernel_python) / (prep_numpy + kernel_numpy)
            )
    return row


def _r(value):
    return round(value, 3) if isinstance(value, float) else value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode", choices=("medium", "quick"), default="medium",
        help="medium: the calibrated acceptance datasets; quick: a "
        "seconds-long smoke run (ratios not meaningful)",
    )
    parser.add_argument(
        "--out", default="BENCH_kernels.json",
        help="output JSON path (default: ./BENCH_kernels.json)",
    )
    args = parser.parse_args(argv)

    report = {
        "benchmark": "repro.kernels backends vs pure-Python reference",
        "mode": args.mode,
        "criterion": (
            ">= 10x kernel-phase speedup per kernel on the medium datasets"
            if args.mode == "medium"
            else "smoke only — quick-mode ratios are not meaningful"
        ),
        "protocol": (
            "prep (per-backend propagation structures: PropagationGraph "
            "DAGs vs CompiledLog/CompiledCredit arrays) is timed "
            "separately from the kernel itself, as the SelectionContext "
            "pipeline builds those once and shares them across stages; "
            "end_to_end_speedup includes both phases"
        ),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numpy": None,
        },
        "kernels": {},
    }
    if numpy_available():
        import numpy

        report["machine"]["numpy"] = numpy.__version__
    else:
        print("NumPy unavailable: recording python-only timings", flush=True)

    for name, runner in (
        ("scan", bench_scan), ("em", bench_em), ("mc_spread", bench_mc)
    ):
        print(f"[bench_kernels] running {name} ({args.mode}) ...", flush=True)
        report["kernels"][name] = runner(args.mode)
        print(
            f"[bench_kernels]   {name}: speedup="
            f"{report['kernels'][name]['speedup']}",
            flush=True,
        )

    report["speedups"] = {
        name: row["speedup"] for name, row in report["kernels"].items()
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_kernels] wrote {args.out}")

    if args.mode == "medium" and numpy_available():
        failing = {
            name: value
            for name, value in report["speedups"].items()
            if value is None or value < 10.0
        }
        if failing:
            print(f"[bench_kernels] below the 10x bar: {failing}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
