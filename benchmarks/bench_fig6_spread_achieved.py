"""Figure 6: influence spread achieved by each method's seeds, under CD.

Since the actual spread of an arbitrary seed set cannot be read off the
data (the sparsity issue), the paper scores every method's seeds with
the most accurate predictor available — the CD model.  The five methods
are registry entries in one :class:`repro.api.ExperimentConfig`;
:func:`repro.api.run_experiment` selects once at the largest k and
evaluates every prefix on the grid.

Expected shape: CD on top, LT competitive, High-Degree and PageRank in
between, and IC *last* — EM's probability-1.0 edges make it pick rarely
active users (the paper's "user 168766" analysis).
"""

from benchmarks.conftest import K_SELECT
from repro.api import ExperimentConfig, run_experiment
from repro.evaluation.reporting import format_series, format_table

METHODS = ["CD", "LT", "IC", "HighDegree", "PageRank"]
SELECTORS = [
    {"name": "cd", "label": "CD"},
    {"name": "ldag", "label": "LT"},
    {"name": "pmia", "params": {"method": "EM"}, "label": "IC"},
    {"name": "high_degree", "label": "HighDegree"},
    {"name": "pagerank", "label": "PageRank"},
]
KS = [1, 5, 10, 15, 20, 25]


def _run(dataset, context, scale_name):
    config = ExperimentConfig(
        dataset=scale_name,
        scale="small",
        selectors=SELECTORS,
        ks=sorted(set(KS) | {K_SELECT}),
    )
    result = run_experiment(config, dataset=dataset, context=context)
    seed_sets = {
        label: result.selections(label)[0].seeds for label in result.labels()
    }
    series = {
        method: [(k, spread) for k, spread in points if k in KS]
        for method, points in result.spread_series().items()
    }
    return seed_sets, series


def _seed_activity_table(train, seed_sets):
    rows = []
    for method in METHODS:
        activities = [train.activity(seed) for seed in seed_sets[method]]
        rows.append([method, f"{sum(activities) / len(activities):.1f}"])
    return format_table(
        ["method", "avg actions per seed"],
        rows,
        title=(
            "Section-6 analysis — seed activity\n"
            "paper: IC seeds average 30.3 actions vs 1108.7 for CD seeds"
        ),
    )


def test_fig6_flixster(benchmark, report, flixster_small, flixster_context,
                       flixster_split):
    train, _ = flixster_split
    seed_sets, series = benchmark.pedantic(
        lambda: _run(flixster_small, flixster_context, "flixster"),
        rounds=1,
        iterations=1,
    )
    report(
        format_series(
            "k",
            series,
            title=(
                "Figure 6 (flixster_small) — spread achieved under CD\n"
                "paper shape: CD >= LT > HighDegree/PageRank > IC"
            ),
        )
    )
    report(_seed_activity_table(train, seed_sets))
    final = {method: series[method][-1][1] for method in METHODS}
    assert final["CD"] >= max(final.values()) - 1e-9  # CD dominates
    assert final["IC"] <= final["CD"]
    # The activity pathology: CD seeds are far more active than IC seeds.
    cd_activity = sum(train.activity(s) for s in seed_sets["CD"])
    ic_activity = sum(train.activity(s) for s in seed_sets["IC"])
    assert cd_activity > 2 * ic_activity


def test_fig6_flickr(benchmark, report, flickr_small, flickr_selector,
                     flickr_split):
    seed_sets, series = benchmark.pedantic(
        lambda: _run(flickr_small, flickr_selector.context, "flickr"),
        rounds=1,
        iterations=1,
    )
    report(
        format_series(
            "k",
            series,
            title="Figure 6 (flickr_small) — spread achieved under CD",
        )
    )
    final = {method: series[method][-1][1] for method in METHODS}
    assert final["CD"] >= max(final.values()) - 1e-9
