"""Streaming benchmark: delta maintenance vs cold re-learn.

Measures what :mod:`repro.stream` buys on the machine at hand and
writes the results to ``BENCH_stream.json`` — the repo's record of the
incremental-maintenance contract: fold a 5% action-log delta into a
learned bundle instead of re-learning the union from scratch.

Protocol
--------
The action log of one synthetic dataset is split 95/5 by action: the
first 95% is the *base* log a bundle was learned from, the trailing 5%
becomes an :class:`~repro.stream.delta.ActionLogDelta` of closed
traces.  Three workloads:

* **maintenance (python / numpy)** — in-memory artifact maintenance:
  ``fold_delta`` over a learned :class:`SelectionContext` (credit
  index, CD evaluator, LT weights) vs building the same artifacts cold
  over the union log.  This is the computation the streaming subsystem
  replaces, measured without any serialization.  Each leg also runs
  the CD selector on both contexts and records whether the seed
  selections are identical (they must be), and re-folds once with
  ``verify=True`` to assert the equivalence contract (byte-identity on
  the python backend; kernel-parity tolerance for the numpy credit
  index — see ``repro/stream/update.py``).

* **derive_store_roundtrip** — the full store path a ``repro ingest``
  pays: load the base bundle from disk, fold, write the derived bundle
  under its new context key, vs a cold re-learn that also writes its
  bundle.  This leg is honest about being I/O-bound: both sides move
  O(union) bytes through the pickle layer (the base bundle in, the
  derived bundle out), so its ratio is capped well below the in-memory
  one and is reported ungated.  ``bench_store.py`` already prices the
  store I/O itself.

Acceptance: in medium mode the ``maintenance_python`` workload must
show ``speedup >= 5`` (fold vs cold build, best of three), and every
workload must report ``identical_seeds`` true.  Quick mode (CI smoke)
runs the same protocol on the mini dataset and only enforces the
identity checks — at toy scale both legs sit in fixed-overhead noise,
so the ratio is reported but not gated.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_stream.py [--mode medium|quick]
                                                     [--out BENCH_stream.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro.api.context import SelectionContext
from repro.api.registry import get_selector
from repro.data.datasets import flixster_like
from repro.store.store import ArtifactStore
from repro.store.warm import (
    list_context_records,
    load_context_record,
    load_serving_context,
    warm_start,
)
from repro.stream.delta import ActionLogDelta
from repro.stream.derive import derive_bundle
from repro.stream.update import compute_stream_stats, fold_delta

NEEDED = ["credit_index", "cd_evaluator", "lt_weights"]
DELTA_FRACTION = 0.05
SPEEDUP_FLOOR = 5.0


def _machine() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _split(dataset):
    """95/5 base/delta split of the dataset's action log, by action."""
    actions = list(dataset.log.actions())
    cut = int(len(actions) * (1.0 - DELTA_FRACTION))
    base_log = dataset.log.restrict_to_actions(actions[:cut])
    delta = ActionLogDelta.from_log(
        dataset.log.restrict_to_actions(actions[cut:])
    )
    return base_log, delta


def _learned_context(dataset, base_log, backend):
    context = SelectionContext(
        dataset.graph, base_log, backend=backend, credit_scheme="uniform"
    )
    for name in NEEDED:
        context.build_artifact(name)
    return context


def _seeds(context, k):
    return list(get_selector("cd").select(context, k).seeds)


def bench_maintenance(dataset, backend, k, reps):
    """In-memory fold vs cold artifact build; returns the report row."""
    base_log, delta = _split(dataset)
    context = _learned_context(dataset, base_log, backend)
    stats = compute_stream_stats(context)

    fold_times = []
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fold_delta(context, delta, stats=stats)
        fold_times.append(time.perf_counter() - started)
    union_log = result.context.train_log

    cold_times = []
    cold = None
    for _ in range(reps):
        started = time.perf_counter()
        cold = _learned_context(dataset, union_log, backend)
        cold_times.append(time.perf_counter() - started)

    fold_s, cold_s = min(fold_times), min(cold_times)
    identical_seeds = _seeds(result.context, k) == _seeds(cold, k)
    # The equivalence contract, asserted (raises on divergence).
    verified = fold_delta(
        context, delta, stats=stats, verify=True
    ).report.verified
    return {
        "fold_s": round(fold_s, 4),
        "cold_s": round(cold_s, 4),
        "speedup": round(cold_s / fold_s, 2),
        "delta_actions": len(delta.actions()),
        "delta_tuples": delta.num_tuples,
        "updated": list(result.report.updated),
        "identical_seeds": identical_seeds,
        "verified": verified,
    }


def bench_derive_roundtrip(dataset, k, reps, workdir):
    """Store path: derive (load+fold+write) vs cold re-learn+write."""
    base_log, delta = _split(dataset)

    pristine = workdir / "base-store"
    context = _learned_context(dataset, base_log, "python")
    warm_start(
        ArtifactStore(str(pristine)), context, NEEDED,
        dataset_name=dataset.name,
    )

    derive_times = []
    derived_root = None
    for rep in range(reps):
        root = workdir / f"derive-{rep}"
        shutil.copytree(pristine, root)
        started = time.perf_counter()
        derive_bundle(ArtifactStore(str(root)), delta)
        derive_times.append(time.perf_counter() - started)
        derived_root = root

    union_log = fold_delta(context, delta).context.train_log
    cold_times = []
    cold_root = None
    for rep in range(reps):
        root = workdir / f"cold-{rep}"
        started = time.perf_counter()
        union_context = SelectionContext(
            dataset.graph, union_log, backend="python",
            credit_scheme="uniform",
        )
        warm_start(
            ArtifactStore(str(root)), union_context, NEEDED,
            dataset_name=dataset.name,
        )
        cold_times.append(time.perf_counter() - started)
        cold_root = root

    derive_s, cold_s = min(derive_times), min(cold_times)
    derived_store = ArtifactStore(str(derived_root))
    derived_record = next(
        r for r in list_context_records(derived_store)
        if r.get("derived_from")
    )
    cold_store = ArtifactStore(str(cold_root))
    identical_seeds = _seeds(
        load_serving_context(derived_store, derived_record), k
    ) == _seeds(
        load_serving_context(cold_store, load_context_record(cold_store)), k
    )
    return {
        "derive_s": round(derive_s, 4),
        "cold_relearn_s": round(cold_s, 4),
        "speedup": round(cold_s / derive_s, 2),
        "lineage_depth": derived_record["lineage_depth"],
        "identical_seeds": identical_seeds,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=["medium", "quick"], default="medium")
    parser.add_argument("--out", default="BENCH_stream.json")
    args = parser.parse_args()

    scale = "small" if args.mode == "medium" else "mini"
    reps = 3 if args.mode == "medium" else 2
    k = 10 if args.mode == "medium" else 3
    dataset = flixster_like(scale)
    print(f"[bench_stream] mode={args.mode} dataset=flixster/{scale} "
          f"delta={DELTA_FRACTION:.0%} reps={reps}")

    workloads = {}
    for backend in ("python", "numpy"):
        try:
            import numpy  # noqa: F401
        except ImportError:
            if backend == "numpy":
                print("[bench_stream] numpy unavailable — skipping")
                continue
        row = bench_maintenance(dataset, backend, k, reps)
        workloads[f"maintenance_{backend}"] = row
        print(f"[bench_stream] maintenance_{backend}: fold {row['fold_s']}s "
              f"cold {row['cold_s']}s x{row['speedup']} "
              f"identical_seeds={row['identical_seeds']} "
              f"verified={row['verified']}")

    workdir = Path(tempfile.mkdtemp(prefix="bench_stream_"))
    try:
        row = bench_derive_roundtrip(dataset, k, reps, workdir)
        workloads["derive_store_roundtrip"] = row
        print(f"[bench_stream] derive_store_roundtrip: derive "
              f"{row['derive_s']}s cold {row['cold_relearn_s']}s "
              f"x{row['speedup']} identical_seeds={row['identical_seeds']}")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    failures = []
    for name, row in workloads.items():
        if not row["identical_seeds"]:
            failures.append(f"{name}: seed selections diverged from rescan")
        if not row.get("verified", True):
            failures.append(f"{name}: equivalence verification did not run")
    if args.mode == "medium":
        gated = workloads.get("maintenance_python")
        if gated and gated["speedup"] < SPEEDUP_FLOOR:
            failures.append(
                "maintenance_python: speedup "
                f"{gated['speedup']} < {SPEEDUP_FLOOR}"
            )

    report = {
        "benchmark": "stream (delta fold vs cold re-learn over the union)",
        "mode": args.mode,
        "machine": _machine(),
        "note": (
            "maintenance_* is the in-memory artifact update the subsystem "
            "replaces (fold vs cold build, no serialization) — the >=5x "
            "acceptance bar applies to maintenance_python in medium mode.  "
            "derive_store_roundtrip is the full repro-ingest path; both of "
            "its legs move O(union) bytes through the pickle layer, so its "
            "honest ratio is I/O-capped and reported ungated "
            "(bench_store.py prices the store I/O itself)."
        ),
        "workloads": workloads,
    }
    if failures:
        report["failures"] = failures
    Path(args.out).write_text(json.dumps(report, indent=1, sort_keys=True))
    print(f"[bench_stream] wrote {args.out}")
    for failure in failures:
        print(f"[bench_stream] FAIL {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
