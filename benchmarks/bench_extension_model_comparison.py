"""Extension: the statistical model-comparison benchmark.

The paper's conclusion: "These observations further highlight the need
for devising techniques and benchmarks for comparing different
influence models."  This bench runs that benchmark — the Figure-3 trio
(IC-with-EM, LT, CD) under the held-out prediction protocol, with a
bootstrap layer on top: RMSE confidence intervals and a pairwise
paired-bootstrap verdict matrix.

Expected shape: the Figure-3 ordering (CD most accurate) holds, and
where the paper could only plot point estimates, the verdict matrix
shows whether CD's win over the probability-learning pipelines is
statistically real on this test set.
"""

from repro.data.split import train_test_split
from repro.evaluation.comparison import compare_models
from repro.evaluation.prediction import (
    build_cd_predictor,
    build_ic_predictors,
    build_lt_predictor,
)

MAX_TEST_TRACES = 50
NUM_SIMULATIONS = 60
TOLERANCE = 10.0


def test_extension_model_comparison(benchmark, report, flixster_small):
    graph = flixster_small.graph
    train, _ = train_test_split(flixster_small.log)
    predictors = {
        "IC": build_ic_predictors(
            graph, train, methods=("EM",), num_simulations=NUM_SIMULATIONS
        )["EM"],
        "LT": build_lt_predictor(
            graph, train, num_simulations=NUM_SIMULATIONS
        ),
        "CD": build_cd_predictor(graph, train),
    }
    result = benchmark.pedantic(
        lambda: compare_models(
            graph,
            flixster_small.log,
            predictors,
            tolerance=TOLERANCE,
            max_test_traces=MAX_TEST_TRACES,
            num_resamples=400,
        ),
        rounds=1,
        iterations=1,
    )
    report(
        "Extension — statistical model comparison (flixster_small)\n"
        "paper Figure 3: CD most accurate on both datasets\n\n"
        + result.render()
    )
    # The Figure-3 shape at this scale (same band as bench_fig3): CD
    # beats LT outright and stays within 1.15x of IC on overall RMSE,
    # where a handful of large traces dominate the point estimate.
    by_name = {r.name: r for r in result.reports}
    assert by_name["CD"].rmse <= by_name["LT"].rmse
    assert by_name["CD"].rmse <= 1.15 * by_name["IC"].rmse
    # CD's capture rate dominates (the Figure-4 shape, one tolerance).
    assert by_name["CD"].capture_rate >= by_name["IC"].capture_rate
    assert by_name["CD"].capture_rate >= by_name["LT"].capture_rate
    # The CD-vs-LT gap on this dataset must at least not be a
    # significant loss; typically it is a significant win.
    assert not result.significantly_better("LT", "CD")
    assert not result.significantly_better("IC", "CD")
