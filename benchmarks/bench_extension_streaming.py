"""Extension: streaming index maintenance vs batch rescans.

A growing action log forces the batch pipeline to rescan everything it
has ever seen on each refresh; the streaming index folds only the new
traces.  Over a replay of W waves the batch strategy scans O(W^2 / 2)
trace-scans in total while streaming scans each trace exactly once —
the quadratic-vs-linear gap this bench measures, together with the
exactness guarantee (identical index and identical seeds at the end).

Expected shape: cumulative batch time grows superlinearly in waves;
cumulative streaming time is roughly the cost of one full scan; the
final indexes are entry-for-entry identical.
"""

import time

from repro.core.scan import scan_action_log
from repro.core.streaming import StreamingCreditIndex
from repro.data.actionlog import ActionLog
from repro.evaluation.reporting import format_table

NUM_WAVES = 5
K = 10


def test_extension_streaming_vs_batch(benchmark, report, flixster_small):
    graph = flixster_small.graph
    log = flixster_small.log
    actions = list(log.actions())
    wave_size = (len(actions) + NUM_WAVES - 1) // NUM_WAVES
    waves = [
        actions[index * wave_size : (index + 1) * wave_size]
        for index in range(NUM_WAVES)
    ]

    # Streaming: observe each wave, fold it once.
    def run_streaming():
        stream = StreamingCreditIndex(graph, truncation=0.001)
        per_wave = []
        for wave in waves:
            started = time.perf_counter()
            for action in wave:
                for user, when in log.trace(action):
                    stream.observe(user, action, when)
            stream.flush()
            per_wave.append(time.perf_counter() - started)
        return stream, per_wave

    stream, streaming_times = benchmark.pedantic(
        run_streaming, rounds=1, iterations=1
    )

    # Batch: rescan everything seen so far at each wave boundary.
    batch_times = []
    seen_actions: list = []
    batch_index = None
    for wave in waves:
        seen_actions.extend(wave)
        started = time.perf_counter()
        cumulative = ActionLog()
        for action in seen_actions:
            for user, when in log.trace(action):
                cumulative.add(user, action, when)
        batch_index = scan_action_log(graph, cumulative, truncation=0.001)
        batch_times.append(time.perf_counter() - started)

    rows = []
    for wave_number, (stream_t, batch_t) in enumerate(
        zip(streaming_times, batch_times), start=1
    ):
        rows.append(
            [
                f"wave {wave_number}",
                f"{stream_t:.2f}s",
                f"{batch_t:.2f}s",
                f"{batch_t / stream_t:.1f}x",
            ]
        )
    rows.append(
        [
            "total",
            f"{sum(streaming_times):.2f}s",
            f"{sum(batch_times):.2f}s",
            f"{sum(batch_times) / sum(streaming_times):.1f}x",
        ]
    )
    report(
        format_table(
            ["refresh", "streaming fold", "batch rescan", "batch/stream"],
            rows,
            title=(
                f"Extension — streaming vs batch index maintenance "
                f"(flixster_small, {NUM_WAVES} waves)\n"
                "per-action credit independence makes folds exact; batch "
                "pays a quadratic total rescan bill"
            ),
        )
    )
    # Exactness: the streamed index equals the final batch index.
    assert batch_index is not None
    assert stream.index.total_entries == batch_index.total_entries
    assert stream.index.activity == batch_index.activity
    # Identical seed selection on both indexes.
    from repro.core.maximize import cd_maximize

    assert (
        cd_maximize(stream.index, K, mutate=False).seeds
        == cd_maximize(batch_index, K, mutate=False).seeds
    )
    # The headline saving: total batch work exceeds total streaming work.
    assert sum(batch_times) > 1.5 * sum(streaming_times)