"""Extension: time-bounded influence under continuous-time IC.

The paper's Eq. 9 bakes propagation *delays* into the credit model but
the IC/LT comparison still targets the unbounded final spread.  This
bench uses the CTIC model to ask the deadline question the discrete
models cannot: how much of the spread arrives within a time budget T,
and how much does the delay distribution's tail matter?

Expected shape: sigma(S, T) rises monotonically to the discrete-IC
value as T grows; heavy-tailed (lognormal) delays shift spread past any
fixed deadline relative to exponential delays with the same typical
scale — the same heavy-tail phenomenon the dataset generators model
(DESIGN.md §2) and the reason Eq. 9 learns per-pair tau.
"""

import math

from repro.diffusion.ctic import (
    estimate_spread_ctic,
    exponential_delays,
    lognormal_delays,
)
from repro.diffusion.ic import estimate_spread_ic
from repro.evaluation.reporting import format_table
from repro.maximization.degree_discount import degree_discount_ic_seeds

K = 5
HORIZONS = (0.5, 1.0, 2.0, 4.0, 8.0)
NUM_SIMULATIONS = 300


def test_extension_ctic_deadline(
    benchmark, report, flixster_small, flixster_selector
):
    graph = flixster_small.graph
    probabilities = flixster_selector.ic_probabilities("EM")
    seeds = degree_discount_ic_seeds(graph, K, probability=0.01)

    unbounded = estimate_spread_ic(
        graph, probabilities, seeds, num_simulations=NUM_SIMULATIONS, seed=1
    )

    def sweep(sampler):
        return [
            estimate_spread_ctic(
                graph,
                probabilities,
                seeds,
                horizon=horizon,
                delay_sampler=sampler,
                num_simulations=NUM_SIMULATIONS,
                seed=2,
            )
            for horizon in HORIZONS
        ]

    exponential = benchmark.pedantic(
        lambda: sweep(exponential_delays(1.0)), rounds=1, iterations=1
    )
    heavy = sweep(lognormal_delays(median=1.0, sigma=2.0))

    rows = [
        [f"T = {horizon}", f"{exp:.1f}", f"{log:.1f}"]
        for horizon, exp, log in zip(HORIZONS, exponential, heavy)
    ]
    rows.append(["T = inf (discrete IC)", f"{unbounded:.1f}", f"{unbounded:.1f}"])
    report(
        format_table(
            ["deadline", "exponential delays", "lognormal delays"],
            rows,
            title=(
                f"Extension — time-bounded spread sigma(S, T) "
                f"(flixster_small, k={K}, EM probabilities)\n"
                "shape: monotone in T; heavy tails defer spread past "
                "fixed deadlines"
            ),
        )
    )
    # Monotone in the deadline, converging to the discrete-IC value.
    assert exponential == sorted(exponential)
    assert heavy == sorted(heavy)
    assert exponential[-1] <= unbounded * 1.1
    # The heavy tail defers spread at every finite deadline shown.
    assert all(
        log_spread <= exp_spread + 0.5
        for exp_spread, log_spread in zip(exponential, heavy)
    )
    # ...but both converge to the same reachability-determined limit.
    final_gap = abs(
        estimate_spread_ctic(
            graph, probabilities, seeds, horizon=math.inf,
            num_simulations=NUM_SIMULATIONS, seed=3,
        )
        - unbounded
    )
    assert final_gap <= 0.15 * unbounded
