"""Ablation: noise-robustness curves (the PT experiment, generalised).

The paper probes robustness at one point — EM probabilities perturbed
by ±20% (PT) — and finds seed selection barely moves (Table 2's
EM∩PT = 44/50).  This bench sweeps the noise level for both the
IC-with-EM pipeline and the CD model itself, reporting seed-set overlap
with the clean run and quality retention (spread of noisy seeds under
the clean model).

Expected shape: at ±20% both pipelines retain nearly all their quality
(the paper's PT conclusion); overlap decays gracefully as noise grows;
quality retention stays high even where overlap drops (seeds are
interchangeable, not irreplaceable).
"""

from repro.evaluation.reporting import format_table
from repro.evaluation.robustness import cd_noise_sweep, ic_noise_sweep

K = 10
NOISE_LEVELS = (0.0, 0.2, 0.5, 1.0)
NUM_SIMULATIONS = 40


def test_ablation_noise_robustness(
    benchmark, report, flixster_small, flixster_split, flixster_selector
):
    graph = flixster_small.graph
    train, _ = flixster_split
    em_probabilities = flixster_selector.ic_probabilities("EM")

    ic_points = ic_noise_sweep(
        graph,
        em_probabilities,
        k=K,
        noise_levels=NOISE_LEVELS,
        num_simulations=NUM_SIMULATIONS,
    )
    cd_points = benchmark.pedantic(
        lambda: cd_noise_sweep(
            graph, train, k=K, noise_levels=NOISE_LEVELS
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for ic_point, cd_point in zip(ic_points, cd_points):
        rows.append(
            [
                f"±{ic_point.noise:.0%}",
                f"{ic_point.overlap}/{K}",
                f"{ic_point.quality_ratio:.0%}",
                f"{cd_point.overlap}/{K}",
                f"{cd_point.quality_ratio:.0%}",
            ]
        )
    report(
        format_table(
            [
                "noise",
                "IC overlap",
                "IC quality",
                "CD overlap",
                "CD quality",
            ],
            rows,
            title=(
                f"Ablation — noise robustness (flixster_small, k={K})\n"
                "paper (PT, ±20% on EM): 44/50 overlap — 'robust against "
                "some noise in the probability learning step'"
            ),
        )
    )
    by_noise_ic = {point.noise: point for point in ic_points}
    by_noise_cd = {point.noise: point for point in cd_points}
    # Zero noise is a perfect control.
    assert by_noise_ic[0.0].overlap == K
    assert by_noise_cd[0.0].overlap == K
    # The paper's operating point: ±20% keeps most seeds and quality.
    assert by_noise_cd[0.2].overlap >= K // 2
    assert by_noise_cd[0.2].quality_ratio >= 0.9
    assert by_noise_ic[0.2].quality_ratio >= 0.75
