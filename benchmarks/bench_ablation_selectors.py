"""Ablation: the seed-selector zoo, measured on a common yardstick.

Beyond the paper's own comparison (Figure 6), this bench lines up every
seed-selection algorithm the library implements — the CD maximizer, the
lazy-greedy family (CELF/CELF++), the sampling-based RIS selector, the
simulation-free SimPath (LT) estimator, and the structural heuristics
(High-Degree, DegreeDiscount) — on one dataset, reporting runtime and
the spread of each selector's seeds under the CD proxy (the paper's
best-available ground truth).

Expected shape: the data-based CD seeds dominate under the CD yardstick
(by construction *and* by the Figure-6 argument); among the structural
methods DegreeDiscount ≥ HighDegree; every method runs in seconds at
this scale.
"""

import time

import pytest

from repro.core.credit import TimeDecayCredit
from repro.core.maximize import cd_maximize
from repro.core.spread import CDSpreadEvaluator
from repro.evaluation.reporting import format_table
from repro.maximization.celf import celf_maximize
from repro.maximization.celfpp import celfpp_maximize
from repro.maximization.degree_discount import (
    degree_discount_ic_seeds,
    single_discount_seeds,
)
from repro.maximization.heuristics import high_degree_seeds
from repro.maximization.irie import irie_seeds
from repro.maximization.ris import ris_maximize
from repro.maximization.simpath import simpath_maximize

K = 10
NUM_RR_SETS = 3000


def test_ablation_selector_zoo(
    benchmark, report, flixster_small, flixster_split, flixster_selector
):
    train, _ = flixster_split
    graph = flixster_small.graph
    selector = flixster_selector
    em_probabilities = selector.ic_probabilities("EM")
    lt_weights = selector.lt_weights()
    index = selector.credit_index()
    evaluator = CDSpreadEvaluator(
        graph, train, credit=TimeDecayCredit(selector.params())
    )

    def run_cd():
        return cd_maximize(index, K, mutate=False).seeds

    selectors = {
        "CD (cd_maximize)": run_cd,
        "CELF over sigma_cd": lambda: celf_maximize(evaluator, K).seeds,
        "CELF++ over sigma_cd": lambda: celfpp_maximize(evaluator, K).seeds,
        "RIS (EM probabilities)": lambda: ris_maximize(
            graph, em_probabilities, K, num_rr_sets=NUM_RR_SETS, seed=7
        ).seeds,
        "SimPath (LT weights)": lambda: simpath_maximize(
            graph, lt_weights, K, eta=1e-3
        ).seeds,
        "IRIE (EM probabilities)": lambda: irie_seeds(
            graph, em_probabilities, K
        ),
        "HighDegree": lambda: high_degree_seeds(graph, K),
        "SingleDiscount": lambda: single_discount_seeds(graph, K),
        "DegreeDiscountIC": lambda: degree_discount_ic_seeds(
            graph, K, probability=0.01
        ),
    }

    rows = []
    quality: dict[str, float] = {}
    cd_seeds_quality = None
    for name, select in selectors.items():
        started = time.perf_counter()
        seeds = select()
        elapsed = time.perf_counter() - started
        spread = evaluator.spread(seeds)
        quality[name] = spread
        if name == "CD (cd_maximize)":
            cd_seeds_quality = spread
        rows.append([name, f"{elapsed:.2f}s", f"{spread:.1f}"])
    benchmark.pedantic(run_cd, rounds=1, iterations=1)

    report(
        format_table(
            ["selector", "runtime", "spread under CD proxy"],
            rows,
            title=(
                f"Ablation — seed-selector zoo (flixster_small, k={K})\n"
                "yardstick: sigma_cd with Eq.9 credits (the Figure-6 proxy)"
            ),
        )
    )
    # The CD maximizer is (near-)optimal under its own yardstick.
    assert cd_seeds_quality is not None
    assert all(
        cd_seeds_quality >= 0.99 * spread for spread in quality.values()
    )
    # The lazy variants agree with the index-based maximizer.
    assert quality["CELF over sigma_cd"] == pytest.approx(
        cd_seeds_quality, rel=0.01
    )
    # Discounted degree never falls behind plain degree.
    assert quality["DegreeDiscountIC"] >= 0.95 * quality["HighDegree"]
