"""Ablation: the seed-selector zoo, measured on a common yardstick.

Beyond the paper's own comparison (Figure 6), this bench lines up every
seed-selection algorithm the library implements — the CD maximizer, the
lazy-greedy family (CELF/CELF++), the sampling-based RIS selector, the
simulation-free SimPath (LT) estimator, and the structural heuristics
(High-Degree, DegreeDiscount) — on one dataset, reporting runtime and
the spread of each selector's seeds under the CD proxy (the paper's
best-available ground truth).

The whole zoo is one :class:`repro.api.ExperimentConfig`: selectors are
named registry entries and :func:`repro.api.run_experiment` owns the
learn→select→evaluate pipeline (artifacts come from the session-shared
context fixture).

Expected shape: the data-based CD seeds dominate under the CD yardstick
(by construction *and* by the Figure-6 argument); among the structural
methods DegreeDiscount ≥ HighDegree; every method runs in seconds at
this scale.
"""

import pytest

from repro.api import ExperimentConfig, run_experiment
from repro.evaluation.reporting import format_table

K = 10
NUM_RR_SETS = 3000

SELECTORS = [
    {"name": "cd", "label": "CD (cd_maximize)"},
    {"name": "celf", "params": {"model": "cd"}, "label": "CELF over sigma_cd"},
    {"name": "celfpp", "params": {"model": "cd"},
     "label": "CELF++ over sigma_cd"},
    {"name": "ris", "params": {"num_rr_sets": NUM_RR_SETS, "seed": 7},
     "label": "RIS (EM probabilities)"},
    {"name": "simpath", "params": {"eta": 1e-3},
     "label": "SimPath (LT weights)"},
    {"name": "irie", "label": "IRIE (EM probabilities)"},
    {"name": "high_degree", "label": "HighDegree"},
    {"name": "single_discount", "label": "SingleDiscount"},
    {"name": "degree_discount", "params": {"probability": 0.01},
     "label": "DegreeDiscountIC"},
]


def test_ablation_selector_zoo(
    benchmark, report, flixster_small, flixster_context
):
    config = ExperimentConfig(
        dataset="flixster", scale="small", selectors=SELECTORS, ks=[K]
    )
    result = benchmark.pedantic(
        lambda: run_experiment(
            config, dataset=flixster_small, context=flixster_context
        ),
        rounds=1,
        iterations=1,
    )

    quality = result.final_spreads()
    rows = [
        [run.label, f"{run.selection.wall_time_s:.2f}s",
         f"{quality[run.label]:.1f}"]
        for run in result.runs
    ]
    report(
        format_table(
            ["selector", "runtime", "spread under CD proxy"],
            rows,
            title=(
                f"Ablation — seed-selector zoo (flixster_small, k={K})\n"
                "yardstick: sigma_cd with Eq.9 credits (the Figure-6 proxy)"
            ),
        )
    )
    # The CD maximizer is (near-)optimal under its own yardstick.
    cd_seeds_quality = quality["CD (cd_maximize)"]
    assert all(
        cd_seeds_quality >= 0.99 * spread for spread in quality.values()
    )
    # The lazy variants agree with the index-based maximizer.
    assert quality["CELF over sigma_cd"] == pytest.approx(
        cd_seeds_quality, rel=0.01
    )
    # Discounted degree never falls behind plain degree.
    assert quality["DegreeDiscountIC"] >= 0.95 * quality["HighDegree"]
