"""Figure 2: spread-prediction error of UN/TV/WC/EM/PT (Section 3, Exp. 2).

For each held-out propagation trace, each method predicts the spread of
the trace's initiators; error is reported as RMSE binned by actual
spread (Figures 2a/2c) plus a predicted-vs-actual scatter summary
(Figure 2b).  Expected shape: EM and PT nearly indistinguishable and
far more accurate than UN/TV/WC, which systematically mispredict.

The whole protocol is one ``ExperimentConfig(task="prediction")`` run
through the unified runtime (``repro.api.run_experiment``); the
session-scoped dataset fixture is passed in so synthesis cost is shared
across benches.
"""

from benchmarks.conftest import MAX_TEST_TRACES, NUM_SIMULATIONS
from repro.api import ExperimentConfig, run_experiment
from repro.evaluation.metrics import binned_rmse, rmse
from repro.evaluation.reporting import format_series, format_table

METHODS = ["UN", "WC", "TV", "EM", "PT"]


def _run(dataset, name):
    config = ExperimentConfig(
        task="prediction",
        dataset=name,
        scale="small",
        methods=METHODS,
        num_simulations=NUM_SIMULATIONS,
        max_test_traces=MAX_TEST_TRACES,
    )
    return run_experiment(config, dataset=dataset)


def test_fig2a_rmse_flixster(benchmark, report, flixster_small):
    result = benchmark.pedantic(
        lambda: _run(flixster_small, "flixster"), rounds=1, iterations=1
    )
    bin_width = 20.0
    series = {
        method: [
            (lower, value)
            for lower, value, _ in binned_rmse(result.pairs(method), bin_width)
        ]
        for method in METHODS
    }
    report(
        format_series(
            "spread-bin",
            series,
            title=(
                "Figure 2(a) (flixster_small) — RMSE by actual-spread bin\n"
                "paper shape: EM ~= PT << UN, TV, WC"
            ),
        )
    )
    overall = result.rmse_table()
    assert overall["EM"] <= min(overall["UN"], overall["TV"], overall["WC"])
    assert abs(overall["EM"] - overall["PT"]) <= 0.5 * overall["EM"]


def test_fig2b_scatter_summary(report, flixster_small, benchmark):
    result = benchmark.pedantic(
        lambda: _run(flixster_small, "flixster"), rounds=1, iterations=1
    )
    rows = []
    for method in METHODS:
        pairs = result.pairs(method)
        mean_actual = sum(a for a, _ in pairs) / len(pairs)
        mean_predicted = sum(p for _, p in pairs) / len(pairs)
        rows.append(
            [method, f"{mean_actual:.1f}", f"{mean_predicted:.1f}",
             f"{rmse(pairs):.1f}"]
        )
    report(
        format_table(
            ["method", "mean actual", "mean predicted", "RMSE"],
            rows,
            title=(
                "Figure 2(b) (flixster_small) — predicted vs actual summary\n"
                "paper shape: WC/TV overpredict; EM/PT track the diagonal"
            ),
        )
    )


def test_fig2c_rmse_flickr(benchmark, report, flickr_small):
    result = benchmark.pedantic(
        lambda: _run(flickr_small, "flickr"), rounds=1, iterations=1
    )
    overall = result.rmse_table()
    rows = [[method, f"{overall[method]:.1f}"] for method in METHODS]
    report(
        format_table(
            ["method", "RMSE"],
            rows,
            title="Figure 2(c) (flickr_small) — overall RMSE",
        )
    )
    # Documented deviation (see EXPERIMENTS.md): at this miniature scale
    # the dense dataset's overall RMSE is dominated by a handful of very
    # large traces and does not separate the probability methods the way
    # the paper's full-size Flickr does; we assert only that EM stays in
    # the same band as the best method (WC's degree normalisation gets
    # lucky on the dense mini realization).  The discriminating version
    # of this experiment is Figure 2(a)/(b) on the sparse dataset, where
    # EM dominates clearly.
    best = min(overall.values())
    assert overall["EM"] <= 1.5 * best
