"""Ablation: CELF lazy-forward vs plain greedy (oracle-call counts).

The paper adopts CELF (Leskovec et al.) inside its Algorithm 3, citing
"up to 700x" fewer evaluations.  This ablation measures the saving on
our substrate: plain greedy needs k * n spread evaluations; CELF's
lazy queue skips most recomputations after the first pass, with an
identical seed set (asserted).
"""

from repro.core.spread import CDSpreadEvaluator
from repro.maximization.celf import celf_maximize
from repro.maximization.greedy import greedy_maximize
from repro.evaluation.reporting import format_table

K = 10


def test_ablation_celf_vs_greedy(benchmark, report, flixster_small, flixster_split):
    train, _ = flixster_split
    evaluator = CDSpreadEvaluator(flixster_small.graph, train)

    celf = benchmark.pedantic(
        lambda: celf_maximize(evaluator, k=K), rounds=1, iterations=1
    )
    greedy = greedy_maximize(evaluator, k=K)

    num_candidates = len(evaluator.candidates())
    report(
        format_table(
            ["algorithm", "oracle calls", "spread"],
            [
                ["plain greedy", greedy.oracle_calls, f"{greedy.spread:.1f}"],
                ["CELF", celf.oracle_calls, f"{celf.spread:.1f}"],
                [
                    "saving",
                    f"{greedy.oracle_calls / celf.oracle_calls:.1f}x",
                    "",
                ],
            ],
            title=(
                f"Ablation — CELF vs plain greedy (flixster_small, k={K}, "
                f"{num_candidates} candidates)\n"
                "paper: CELF is up to 700x faster at identical quality"
            ),
        )
    )
    # Identical quality...
    assert celf.spread >= greedy.spread - 1e-6
    # ...at a fraction of the oracle calls.
    assert celf.oracle_calls < greedy.oracle_calls / 2
