"""Shared fixtures for the benchmark suite.

Every bench reproduces one table or figure of the paper and prints the
regenerated rows/series (next to the paper's reported values where
applicable) through the ``report`` fixture, which bypasses pytest's
output capture.  Datasets and learned artifacts are session-scoped so
the whole suite builds each of them once.

Scale note (see DESIGN.md): the synthetic datasets are 10-100x smaller
than the paper's crawls and Monte Carlo simulation counts are reduced
from 10,000 accordingly; all comparisons are relative, so the shapes —
who wins, by what order of magnitude, where curves saturate — are the
reproduction targets, not absolute values.
"""

from __future__ import annotations

import pytest

from repro.data.datasets import flickr_like, flixster_like
from repro.data.split import train_test_split
from repro.evaluation.selection import SeedSelector

# Monte Carlo simulations per spread estimate (the paper uses 10,000 on
# a C++ implementation; pure Python requires a smaller constant).
NUM_SIMULATIONS = 60
# Seed-set size for the selection experiments (paper: 50).
K_SELECT = 25
# Test traces evaluated per prediction experiment.
MAX_TEST_TRACES = 50


@pytest.fixture()
def report(capsys):
    """Print a reproduction table to the real terminal (uncaptured)."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _report


@pytest.fixture(scope="session")
def flixster_small():
    return flixster_like("small")


@pytest.fixture(scope="session")
def flickr_small():
    return flickr_like("small")


@pytest.fixture(scope="session")
def flixster_large():
    return flixster_like("large")


@pytest.fixture(scope="session")
def flickr_large():
    return flickr_like("large")


@pytest.fixture(scope="session")
def flixster_split(flixster_small):
    return train_test_split(flixster_small.log)


@pytest.fixture(scope="session")
def flickr_split(flickr_small):
    return train_test_split(flickr_small.log)


@pytest.fixture(scope="session")
def flixster_selector(flixster_small, flixster_split):
    train, _ = flixster_split
    return SeedSelector(
        flixster_small.graph, train, num_simulations=NUM_SIMULATIONS
    )


@pytest.fixture(scope="session")
def flixster_context(flixster_selector):
    """The selector's SelectionContext — shared learned artifacts."""
    return flixster_selector.context


@pytest.fixture(scope="session")
def flickr_selector(flickr_small, flickr_split):
    train, _ = flickr_split
    return SeedSelector(flickr_small.graph, train, num_simulations=NUM_SIMULATIONS)
