"""Figure 4: fraction of propagations captured within an absolute error.

The cumulative view of the Figure-3 predictions: a point (x, y) means a
fraction y of the test propagations was predicted within absolute error
x.  Expected shape: the CD curve dominates IC and LT at (almost) every
tolerance — the paper reports e.g. 67% vs 46% (IC) and 26% (LT) at
error 30 on Flixster.

Runs through the unified runtime as
``ExperimentConfig(task="prediction")``; the capture curves come
straight off ``ExperimentResult.capture_table``.
"""

from benchmarks.conftest import MAX_TEST_TRACES
from repro.api import ExperimentConfig, run_experiment
from repro.evaluation.reporting import format_series

THRESHOLDS = [0, 2, 5, 10, 20, 30, 50, 80]
NUM_SIMULATIONS = 200  # the legacy predictors' default


def _run(dataset, name):
    config = ExperimentConfig(
        task="prediction",
        dataset=name,
        scale="small",
        methods=["IC", "LT", "CD"],
        num_simulations=NUM_SIMULATIONS,
        max_test_traces=MAX_TEST_TRACES,
    )
    return run_experiment(config, dataset=dataset)


def _series(result):
    return result.capture_table(THRESHOLDS)


def test_fig4_flixster(benchmark, report, flixster_small):
    result = benchmark.pedantic(
        lambda: _run(flixster_small, "flixster"), rounds=1, iterations=1
    )
    series = _series(result)
    report(
        format_series(
            "abs-error",
            series,
            title=(
                "Figure 4 (flixster_small) — propagations captured within error\n"
                "paper shape: CD curve above IC and LT"
            ),
        )
    )
    cd_final = series["CD"][-1][1]
    assert cd_final >= series["IC"][-1][1] - 0.15
    assert cd_final >= series["LT"][-1][1] - 0.15


def test_fig4_flickr(benchmark, report, flickr_small):
    result = benchmark.pedantic(
        lambda: _run(flickr_small, "flickr"), rounds=1, iterations=1
    )
    series = _series(result)
    report(
        format_series(
            "abs-error",
            series,
            title="Figure 4 (flickr_small) — propagations captured within error",
        )
    )
    # Average capture across tolerances: CD should lead.
    def mean_capture(method):
        return sum(f for _, f in series[method]) / len(THRESHOLDS)

    assert mean_capture("CD") >= mean_capture("IC") - 0.1
    assert mean_capture("CD") >= mean_capture("LT") - 0.1
