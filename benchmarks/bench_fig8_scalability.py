"""Figure 8: CD runtime (left) and memory (right) vs number of tuples.

Sweeps the number of training tuples on the large datasets, timing the
full CD pipeline (parameter learning + Algorithm-2 scan + seed
selection) and recording the credit index's memory estimate.  Expected
shape: both curves grow roughly linearly in the tuple count, with the
scan dominating runtime (the paper: 11.6 of 15 minutes spent scanning).

The sketch-path sweep extends the figure past where Monte-Carlo
selection is runnable: synthetic WC graphs from 100k up to 1M nodes,
timing 2-hop sketch generation + ``k = 25`` coverage selection through
:class:`~repro.kernels.sketch_numpy.CompiledSketcher`.
"""

import time

import pytest

from bench_sketch import build_synthetic_csr
from repro.evaluation.performance import scalability_experiment
from repro.evaluation.reporting import format_table
from repro.kernels import numpy_available

K = 25


def _sweep(dataset, fractions=(0.25, 0.5, 0.75, 1.0)):
    total = dataset.log.num_tuples
    counts = [int(total * fraction) for fraction in fractions]
    return scalability_experiment(
        dataset.graph, dataset.log, tuple_counts=counts, k=K
    )


def test_fig8_flixster_large(benchmark, report, flixster_large):
    rows = benchmark.pedantic(
        lambda: _sweep(flixster_large), rounds=1, iterations=1
    )
    report(
        format_table(
            ["#tuples", "scan s", "select s", "total s", "entries", "mem MB"],
            [
                [
                    row.num_tuples,
                    f"{row.scan_seconds:.1f}",
                    f"{row.select_seconds:.1f}",
                    f"{row.total_seconds:.1f}",
                    row.index_entries,
                    f"{row.memory_bytes / 1e6:.1f}",
                ]
                for row in rows
            ],
            title=(
                "Figure 8 (flixster_large) — runtime & memory vs tuples\n"
                "paper shape: both roughly linear; scan dominates runtime"
            ),
        )
    )
    # Linearity shape: runtime and memory grow with tuples, and the
    # full-log run costs at least twice the quarter-log run.
    assert rows[-1].total_seconds > rows[0].total_seconds
    assert rows[-1].memory_bytes > rows[0].memory_bytes
    assert rows[-1].total_seconds >= 2 * rows[0].total_seconds
    # The scan is a substantial share of the pipeline (the paper reports
    # it dominating; at our scale selection is comparable).
    assert rows[-1].scan_seconds >= 0.25 * rows[-1].total_seconds


def test_fig8_flickr_large(benchmark, report, flickr_large):
    rows = benchmark.pedantic(
        lambda: _sweep(flickr_large, fractions=(0.5, 1.0)), rounds=1, iterations=1
    )
    report(
        format_table(
            ["#tuples", "total s", "entries", "mem MB"],
            [
                [
                    row.num_tuples,
                    f"{row.total_seconds:.1f}",
                    row.index_entries,
                    f"{row.memory_bytes / 1e6:.1f}",
                ]
                for row in rows
            ],
            title="Figure 8 (flickr_large) — runtime & memory vs tuples",
        )
    )
    assert rows[-1].memory_bytes >= rows[0].memory_bytes


@pytest.mark.skipif(not numpy_available(), reason="requires NumPy")
def test_fig8_sketch_million_node(benchmark, report):
    from repro.kernels.sketch_numpy import (
        CompiledSketcher,
        coverage_maximize_numpy,
    )

    def _sweep(sizes=(100_000, 400_000, 1_000_000), sketches_per_node=0.03):
        rows = []
        for n in sizes:
            indptr, sources, probabilities = build_synthetic_csr(
                n, mean_in_degree=6.0, seed=29
            )
            num_sketches = int(n * sketches_per_node)
            sketcher = CompiledSketcher.from_csr(indptr, sources, probabilities)
            start = time.perf_counter()
            batch = sketcher.generate(num_sketches, hops=2, seed=41)
            generate_seconds = time.perf_counter() - start
            start = time.perf_counter()
            seeds, gains = coverage_maximize_numpy(batch, K)
            select_seconds = time.perf_counter() - start
            rows.append(
                {
                    "nodes": n,
                    "edges": int(indptr[-1]),
                    "num_sketches": num_sketches,
                    "generate_s": generate_seconds,
                    "select_s": select_seconds,
                    "total_s": generate_seconds + select_seconds,
                    "seeds": seeds,
                }
            )
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["nodes", "edges", "sketches", "gen s", "select s", "total s"],
            [
                [
                    row["nodes"],
                    row["edges"],
                    row["num_sketches"],
                    f"{row['generate_s']:.1f}",
                    f"{row['select_s']:.1f}",
                    f"{row['total_s']:.1f}",
                ]
                for row in rows
            ],
            title=(
                "Figure 8 extension — sketch-path selection vs graph size\n"
                "2-hop sketches, WC probabilities, k=25; MC selection is\n"
                "not runnable at these scales"
            ),
        )
    )
    # The whole point: a full k=25 selection completes at 1M nodes, and
    # cost grows roughly linearly (10x the nodes stays well under 100x
    # the time).
    assert all(len(row["seeds"]) == K for row in rows)
    assert rows[-1]["total_s"] < 100 * max(rows[0]["total_s"], 1e-3)
