"""Figure 8: CD runtime (left) and memory (right) vs number of tuples.

Sweeps the number of training tuples on the large datasets, timing the
full CD pipeline (parameter learning + Algorithm-2 scan + seed
selection) and recording the credit index's memory estimate.  Expected
shape: both curves grow roughly linearly in the tuple count, with the
scan dominating runtime (the paper: 11.6 of 15 minutes spent scanning).
"""

from repro.evaluation.performance import scalability_experiment
from repro.evaluation.reporting import format_table

K = 25


def _sweep(dataset, fractions=(0.25, 0.5, 0.75, 1.0)):
    total = dataset.log.num_tuples
    counts = [int(total * fraction) for fraction in fractions]
    return scalability_experiment(
        dataset.graph, dataset.log, tuple_counts=counts, k=K
    )


def test_fig8_flixster_large(benchmark, report, flixster_large):
    rows = benchmark.pedantic(
        lambda: _sweep(flixster_large), rounds=1, iterations=1
    )
    report(
        format_table(
            ["#tuples", "scan s", "select s", "total s", "entries", "mem MB"],
            [
                [
                    row.num_tuples,
                    f"{row.scan_seconds:.1f}",
                    f"{row.select_seconds:.1f}",
                    f"{row.total_seconds:.1f}",
                    row.index_entries,
                    f"{row.memory_bytes / 1e6:.1f}",
                ]
                for row in rows
            ],
            title=(
                "Figure 8 (flixster_large) — runtime & memory vs tuples\n"
                "paper shape: both roughly linear; scan dominates runtime"
            ),
        )
    )
    # Linearity shape: runtime and memory grow with tuples, and the
    # full-log run costs at least twice the quarter-log run.
    assert rows[-1].total_seconds > rows[0].total_seconds
    assert rows[-1].memory_bytes > rows[0].memory_bytes
    assert rows[-1].total_seconds >= 2 * rows[0].total_seconds
    # The scan is a substantial share of the pipeline (the paper reports
    # it dominating; at our scale selection is comparable).
    assert rows[-1].scan_seconds >= 0.25 * rows[-1].total_seconds


def test_fig8_flickr_large(benchmark, report, flickr_large):
    rows = benchmark.pedantic(
        lambda: _sweep(flickr_large, fractions=(0.5, 1.0)), rounds=1, iterations=1
    )
    report(
        format_table(
            ["#tuples", "total s", "entries", "mem MB"],
            [
                [
                    row.num_tuples,
                    f"{row.total_seconds:.1f}",
                    row.index_entries,
                    f"{row.memory_bytes / 1e6:.1f}",
                ]
                for row in rows
            ],
            title="Figure 8 (flickr_large) — runtime & memory vs tuples",
        )
    )
    assert rows[-1].memory_bytes >= rows[0].memory_bytes
