"""Sketch/hop spread estimation vs the Monte-Carlo oracle pipeline.

Two legs, written to ``BENCH_sketch.json`` (the repo's perf trajectory
record):

* **quality** — on a medium dataset, greedy selection through three
  estimators: the CELF + Monte-Carlo oracle (``mc``, the paper's
  protocol, on the ``mc_numpy`` kernel), classic RIS coverage
  (``ris``) and hop-limited RIS (``hop``, 2-hop sketches per
  Tang et al., arXiv:1705.10442).  Every selected seed set is then
  scored by one *independent* Monte-Carlo evaluation, so the headline
  numbers are end-to-end selection speedups **at matched seed-set
  quality** — the acceptance bar is a >= 10x selection speedup with
  the MC-evaluated spread within 5% of the MC-oracle selection.
* **million_node** — a synthetic ~1M-node / ~6M-edge graph built
  directly in CSR form (Poisson in-degrees, weighted-cascade
  probabilities ``1/d_in``), pushed through
  :meth:`repro.kernels.sketch_numpy.CompiledSketcher.from_csr`:
  2-hop sketch generation plus ``k = 25`` coverage selection must
  complete in minutes on one core — the scale regime where the
  per-node Monte-Carlo sweep is simply not runnable.

``quick`` runs the same code on toy inputs in seconds — the CI smoke
leg; its ratios are not meaningful and not asserted against.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_sketch.py [--mode medium|quick]
                                                     [--out BENCH_sketch.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.api.context import SelectionContext
from repro.data.datasets import flixster_like
from repro.diffusion.ic import estimate_spread_ic
from repro.kernels import numpy_available
from repro.maximization.celf import celf_maximize
from repro.maximization.ris import ris_maximize

K = 25
EVAL_SEED = 99  # independent-evaluation stream, shared by every method


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _r(value):
    return round(value, 3) if isinstance(value, float) else value


# ----------------------------------------------------------------------
# Quality leg: mc vs ris vs hop at matched seed-set quality
# ----------------------------------------------------------------------
def bench_quality(mode: str) -> dict:
    if mode == "medium":
        scale, num_simulations, num_sketches, eval_sims = "small", 400, 20_000, 2_000
    else:
        scale, num_simulations, num_sketches, eval_sims = "mini", 20, 800, 200
    dataset = flixster_like(scale)
    backend = "numpy" if numpy_available() else "python"
    context = SelectionContext(
        dataset.graph,
        backend=backend,
        num_simulations=num_simulations,
        seed=7,
    )
    probabilities = context.ic_probabilities("WC")
    k = min(K, dataset.graph.num_nodes)

    oracle = context.oracle("ic", method="WC", seed=13)
    mc_result, mc_seconds = _timed(lambda: celf_maximize(oracle, k))
    ris_result, ris_seconds = _timed(
        lambda: ris_maximize(
            dataset.graph, probabilities, k,
            num_rr_sets=num_sketches, seed=5, backend=backend,
        )
    )
    hop_result, hop_seconds = _timed(
        lambda: ris_maximize(
            dataset.graph, probabilities, k,
            num_rr_sets=num_sketches, seed=5, hops=2, backend=backend,
        )
    )

    def evaluate(seeds):
        return estimate_spread_ic(
            dataset.graph, probabilities, seeds,
            num_simulations=eval_sims, seed=EVAL_SEED, backend=backend,
        )

    rows: dict[str, dict] = {}
    oracle_spread = evaluate(mc_result.seeds)
    for name, result, seconds in (
        ("mc", mc_result, mc_seconds),
        ("ris", ris_result, ris_seconds),
        ("hop", hop_result, hop_seconds),
    ):
        spread = evaluate(result.seeds)
        rows[name] = {
            "select_s": _r(seconds),
            "speedup_vs_mc": _r(mc_seconds / seconds) if seconds else None,
            "mc_evaluated_spread": _r(spread),
            "quality_vs_mc": _r(spread / oracle_spread) if oracle_spread else None,
            "internal_estimate": _r(float(result.spread)),
        }
    return {
        "dataset": {
            "name": f"flixster_{scale}",
            "nodes": dataset.graph.num_nodes,
            "edges": dataset.graph.num_edges,
            "probabilities": "WC (1/d_in)",
        },
        "k": k,
        "backend": backend,
        "oracle_simulations": num_simulations,
        "num_sketches": num_sketches,
        "eval_simulations": eval_sims,
        "methods": rows,
    }


# ----------------------------------------------------------------------
# Million-node leg: raw-CSR sketch pipeline at paper scale
# ----------------------------------------------------------------------
def build_synthetic_csr(n: int, mean_in_degree: float, seed: int):
    """A random n-node in-CSR with Poisson in-degrees and WC probabilities.

    Returns ``(in_indptr, in_indices, probabilities)`` — the raw-array
    form :meth:`CompiledSketcher.from_csr` consumes, with edges sorted
    ``(dst, src)`` so flat positions are canonical edge ids.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    degrees = rng.poisson(mean_in_degree, n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    num_edges = int(indptr[-1])
    sources = rng.integers(0, n, num_edges, dtype=np.int64)
    dst = np.repeat(np.arange(n, dtype=np.int64), degrees)
    order = np.lexsort((sources, dst))
    sources = sources[order]
    probabilities = np.repeat(
        np.where(degrees > 0, 1.0 / np.maximum(degrees, 1), 0.0), degrees
    )
    return indptr, sources, probabilities


def bench_million_node(mode: str) -> dict:
    if not numpy_available():
        return {"skipped": "NumPy unavailable"}
    import numpy as np

    from repro.kernels.sketch_numpy import (
        CompiledSketcher,
        coverage_maximize_numpy,
    )

    if mode == "medium":
        n, mean_in_degree, num_sketches = 1_000_000, 6.0, 50_000
    else:
        n, mean_in_degree, num_sketches = 20_000, 6.0, 2_000
    (indptr, sources, probabilities), build_seconds = _timed(
        lambda: build_synthetic_csr(n, mean_in_degree, seed=29)
    )
    sketcher = CompiledSketcher.from_csr(indptr, sources, probabilities)
    sketches, generate_seconds = _timed(
        lambda: sketcher.generate(num_sketches, hops=2, seed=41)
    )
    (seeds, gains), select_seconds = _timed(
        lambda: coverage_maximize_numpy(sketches, K)
    )
    covered = int(np.sum(np.asarray(gains, dtype=np.int64)))
    return {
        "nodes": n,
        "edges": int(indptr[-1]),
        "num_sketches": num_sketches,
        "hops": 2,
        "k": min(K, len(seeds)) if seeds else K,
        "seeds_selected": len(seeds),
        "build_csr_s": _r(build_seconds),
        "generate_s": _r(generate_seconds),
        "select_s": _r(select_seconds),
        "total_s": _r(build_seconds + generate_seconds + select_seconds),
        "sketch_members_total": int(sketches.total_members),
        "estimated_spread": _r(n * covered / num_sketches),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode", choices=("medium", "quick"), default="medium",
        help="medium: the calibrated acceptance datasets (~1M-node leg); "
        "quick: a seconds-long smoke run (ratios not meaningful)",
    )
    parser.add_argument(
        "--out", default="BENCH_sketch.json",
        help="output JSON path (default: ./BENCH_sketch.json)",
    )
    args = parser.parse_args(argv)

    report = {
        "benchmark": "sketch/hop spread estimation vs the MC-oracle pipeline",
        "mode": args.mode,
        "criterion": (
            ">= 10x selection speedup vs the mc_numpy CELF oracle with "
            "MC-evaluated spread within 5%, and a ~1M-node k=25 "
            "selection completing under the sketch path"
            if args.mode == "medium"
            else "smoke only — quick-mode ratios are not meaningful"
        ),
        "protocol": (
            "each method selects k seeds end-to-end (sketch generation "
            "included); every seed set is then scored by one independent "
            "Monte-Carlo evaluation on a shared stream, so quality_vs_mc "
            "compares identical estimators, not each method's own "
            "internal estimate"
        ),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numpy": None,
        },
    }
    if numpy_available():
        import numpy

        report["machine"]["numpy"] = numpy.__version__
    else:
        print("NumPy unavailable: recording python-only timings", flush=True)

    print(f"[bench_sketch] running quality ({args.mode}) ...", flush=True)
    report["quality"] = bench_quality(args.mode)
    for name, row in report["quality"]["methods"].items():
        print(
            f"[bench_sketch]   {name}: select_s={row['select_s']} "
            f"speedup={row['speedup_vs_mc']} "
            f"quality={row['quality_vs_mc']}",
            flush=True,
        )
    print(f"[bench_sketch] running million_node ({args.mode}) ...", flush=True)
    report["million_node"] = bench_million_node(args.mode)
    if "total_s" in report["million_node"]:
        print(
            f"[bench_sketch]   million_node: nodes="
            f"{report['million_node']['nodes']} "
            f"total_s={report['million_node']['total_s']}",
            flush=True,
        )

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_sketch] wrote {args.out}")

    if args.mode == "medium" and numpy_available():
        failures = []
        methods = report["quality"]["methods"]
        for name in ("ris", "hop"):
            if methods[name]["speedup_vs_mc"] < 10.0:
                failures.append(f"{name} speedup {methods[name]['speedup_vs_mc']} < 10x")
            if methods[name]["quality_vs_mc"] < 0.95:
                failures.append(f"{name} quality {methods[name]['quality_vs_mc']} < 0.95")
        if report["million_node"].get("seeds_selected", 0) < K:
            failures.append("million-node leg selected fewer than k seeds")
        if failures:
            print(f"[bench_sketch] ACCEPTANCE FAILED: {failures}")
            return 1
        print("[bench_sketch] acceptance criteria met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
