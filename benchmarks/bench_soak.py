"""Chaos soak benchmark: sustained faulty traffic against `repro serve`.

Builds a serving store, mounts a deterministic fault injector on its
I/O seam (:mod:`repro.faults`), and drives mixed concurrent
select/spread/predict/ingest traffic for the requested duration — the
harness behind the committed ``STRESS_TEST_REPORT.md``.  The run fails
(non-zero exit) unless:

* every client-visible failure was an explicit 503 (zero non-503 5xx);
* successful responses stayed byte-deterministic per serving context;
* the post-run ``repro store verify --deep`` audit found zero
  integrity errors (orphans from injected ingest failures are
  reported, and tolerated — they are re-derivable by design).

Usage
-----
    PYTHONPATH=src python benchmarks/bench_soak.py
        [--mode full|quick] [--duration S] [--workers N] [--seed N]
        [--plan SPEC] [--store DIR] [--out STRESS_TEST_REPORT.md]
        [--json SOAK.json]

``--mode quick`` (the CI ``soak-smoke`` job) runs a short burst;
``--mode full`` is the minutes-long acceptance run.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
from pathlib import Path

from repro.faults.soak import (
    DEFAULT_PLAN,
    SoakConfig,
    prepare_store,
    render_report,
    run_soak,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode", choices=("full", "quick"), default="full",
        help="full: the minutes-long acceptance soak behind "
        "STRESS_TEST_REPORT.md; quick: the CI smoke burst",
    )
    parser.add_argument("--quick", dest="mode", action="store_const",
                        const="quick", help="alias for --mode quick")
    parser.add_argument("--duration", type=float, default=None,
                        help="override soak duration in seconds")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--plan", default=DEFAULT_PLAN,
                        help="fault plan spec (see repro.faults.plan)")
    parser.add_argument("--store", default=None,
                        help="use an existing serving store instead of "
                        "building a temporary one")
    parser.add_argument("--out", default="STRESS_TEST_REPORT.md")
    parser.add_argument("--json", default=None,
                        help="also write the raw report dict as JSON")
    args = parser.parse_args(argv)

    duration = args.duration if args.duration is not None else (
        180.0 if args.mode == "full" else 20.0
    )
    workers = args.workers or (8 if args.mode == "full" else 4)
    config = SoakConfig(
        duration_s=duration,
        workers=workers,
        seed=args.seed,
        plan=args.plan,
        ingest_period_s=5.0 if args.mode == "full" else 3.0,
    )

    root = args.store
    cleanup = root is None
    if cleanup:
        root = tempfile.mkdtemp(prefix="bench-soak-")
        print(f"[bench_soak] building store at {root} ...", flush=True)
        prepare_store(root, scale="mini", k_max=config.k_max)
    try:
        print(
            f"[bench_soak] soaking for {duration:g}s with {workers} workers, "
            f"plan `{config.plan_text()}` ...",
            flush=True,
        )
        report = run_soak(root, config)
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)

    report["mode"] = args.mode
    print(
        f"  {report['requests']} requests in {report['elapsed_s']}s "
        f"({report['throughput_rps']} rps) | statuses {report['statuses']} "
        f"| faults fired {report['faults']['total_fired']} "
        f"| non-503 5xx: {report['non_503_5xx']} "
        f"| deterministic: {report['deterministic']} "
        f"| store audit errors: {report['store_audit']['errors']}",
        flush=True,
    )
    for failure in report["failures"]:
        print(f"  ERROR: {failure}", flush=True)

    Path(args.out).write_text(render_report(report))
    print(f"[bench_soak] wrote {args.out}")
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"[bench_soak] wrote {args.json}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
