"""Serving load benchmark: mixed concurrent traffic against `repro serve`.

Drives a live :func:`repro.store.service.make_server` instance with
mixed ``/select`` + ``/spread`` + ``/predict`` traffic from concurrent
worker threads — the production shape the serving layer claims to
handle — and writes ``BENCH_serve.json``: per-endpoint p50/p99
latency, throughput, and the error budget.

What it proves
--------------
* **Prefix serving** — the store is populated and a ``cd`` selection
  prefix precomputed (``repro prefix``); every warm ``/select`` with
  ``k <= k_max`` is a lookup.  The report records the median latency
  of the cold path (same service, prefixes ignored) next to the
  prefix path, plus the ratio against the committed
  ``BENCH_store.json`` serve baseline.  Acceptance (medium mode):
  prefix-served median ``select`` latency is at least **5x** below
  that baseline.
* **Coalescing + backpressure** — concurrent ``/spread``/``/predict``
  requests funnel through the bounded evaluation queue; the report
  carries the queue counters (submitted vs engine dispatches) and the
  error budget must show **zero 5xx** (503 load-shedding would be
  visible, and is a failure under this benchmark's sizing).
* **Determinism under concurrency** — identical requests racing on
  many threads must produce byte-identical payloads; any divergence
  fails the run (the CI ``serve-load-smoke`` job runs ``--quick`` and
  asserts exactly this).

Usage
-----
    PYTHONPATH=src python benchmarks/bench_serve_load.py
        [--mode medium|quick] [--out BENCH_serve.json]
        [--workers N] [--rounds N]
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import shutil
import tempfile
import threading
import time
from pathlib import Path

from repro.api import ExperimentConfig, SelectionContext, run_experiment
from repro.data.datasets import flixster_like
from repro.data.split import train_test_split
from repro.obs.metrics import Registry
from repro.store import ArtifactStore
from repro.store.prefix import precompute_prefix
from repro.store.service import QueryService, make_server
from repro.store.warm import load_context_record, load_serving_context, warm_start

BASELINE_FILE = "BENCH_store.json"
BASELINE_SELECT_MS = 125.152  # BENCH_store.json medium selection_cd serve
PREDICT_METHODS = ("CD", "IC", "LT")


def build_store(root: str, mode: str) -> int:
    """Populate a store with the full bundle and a cd prefix; returns k_max."""
    scale = "small" if mode == "medium" else "mini"
    k_max = 10 if mode == "medium" else 5
    dataset = flixster_like(scale)
    run_experiment(
        ExperimentConfig(
            dataset="flixster", scale=scale, selectors=["cd"],
            ks=[min(3, k_max)], seed=11, store=root,
        ),
        dataset=dataset,
    )
    train, _ = train_test_split(dataset.log, every=5)
    context = SelectionContext(dataset.graph, train, seed=11)
    warm_start(
        ArtifactStore(root),
        context,
        ["ic_probabilities/EM", "lt_weights"],
        dataset=dataset,
        split={"split": True, "every": 5},
        dataset_name=dataset.name,
    )
    store = ArtifactStore(root, create=False)
    record = load_context_record(store)
    serving = load_serving_context(store, record)
    precompute_prefix(store, record, serving, "cd", k_max)
    return k_max


def bench_select_paths(root: str, k: int, requests: int) -> dict:
    """Median in-process select latency: cold algorithm vs prefix lookup."""
    cold_service = QueryService(root)
    cold_service.slot(None).record.pop("prefixes", None)
    warm_service = QueryService(root)
    payload = {"selector": "cd", "k": k}
    reference = cold_service.select(payload)
    assert warm_service.select(payload) == reference, "prefix/cold mismatch"

    def _median_ms(service: QueryService) -> float:
        # One histogram per path; summary() is the repo's pinned
        # quantile math (repro.obs.metrics), not a private formula.
        latency = Registry().histogram("bench_select_ms")
        for _ in range(requests):
            started = time.perf_counter()
            service.select(payload)
            latency.observe((time.perf_counter() - started) * 1000)
        return latency.summary()["p50"]

    cold_ms = _median_ms(cold_service)
    prefix_ms = _median_ms(warm_service)
    assert warm_service._select_paths["cold"] == 0, "prefix path not taken"
    baseline_ms = BASELINE_SELECT_MS
    baseline_path = Path(BASELINE_FILE)
    if baseline_path.exists():
        try:
            committed = json.loads(baseline_path.read_text())
            baseline_ms = committed["workloads"]["selection_cd"]["serve"][
                "select_ms"
            ]
        except (ValueError, KeyError):
            pass
    return {
        "requests": requests,
        "k": k,
        "cold_p50_ms": round(cold_ms, 3),
        "prefix_p50_ms": round(prefix_ms, 3),
        "speedup_vs_cold": round(cold_ms / max(prefix_ms, 1e-9), 1),
        "bench_store_baseline_ms": baseline_ms,
        "speedup_vs_bench_store": round(
            baseline_ms / max(prefix_ms, 1e-9), 1
        ),
    }


class _LoadResult:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latency = Registry().histogram(
            "bench_latency_ms", labelnames=("endpoint",)
        )
        self.endpoints: set[str] = set()
        self.statuses: dict[int, int] = {}
        self.bodies: dict[str, set[str]] = {}
        self.transport_errors = 0

    def record(self, endpoint: str, key: str, status: int,
               elapsed_ms: float, body: str) -> None:
        self.latency.observe(elapsed_ms, endpoint=endpoint)
        with self.lock:
            self.endpoints.add(endpoint)
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if status == 200:
                self.bodies.setdefault(key, set()).add(body)


def _worker(port: int, worker_id: int, rounds: int, k_max: int,
            seeds: list, result: _LoadResult) -> None:
    for round_index in range(rounds):
        k = (worker_id + round_index) % k_max + 1
        script = [
            ("/select", f"select:k={k}", {"selector": "cd", "k": k}),
            ("/spread", "spread", {"seeds": seeds}),
            (
                "/predict",
                f"predict:{PREDICT_METHODS[round_index % 3]}",
                {
                    "seeds": seeds,
                    "method": PREDICT_METHODS[round_index % 3],
                },
            ),
        ]
        for path, key, payload in script:
            started = time.perf_counter()
            try:
                connection = http.client.HTTPConnection(
                    "127.0.0.1", port, timeout=120
                )
                connection.request("POST", path, body=json.dumps(payload))
                response = connection.getresponse()
                body = response.read().decode("utf-8")
                status = response.status
                connection.close()
            except OSError:
                with result.lock:
                    result.transport_errors += 1
                continue
            elapsed_ms = (time.perf_counter() - started) * 1000
            result.record(path.lstrip("/"), key, status, elapsed_ms, body)


def bench_load(root: str, k_max: int, workers: int, rounds: int) -> dict:
    server = make_server(root, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    try:
        # Warm the slot and grab a deterministic seed set for the
        # spread/predict legs.
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        connection.request(
            "POST", "/select", body=json.dumps({"selector": "cd", "k": 3})
        )
        seeds = json.loads(connection.getresponse().read())["selection"][
            "seeds"
        ]
        connection.close()

        result = _LoadResult()
        started = time.perf_counter()
        pool = [
            threading.Thread(
                target=_worker,
                args=(port, index, rounds, k_max, seeds, result),
            )
            for index in range(workers)
        ]
        for worker in pool:
            worker.start()
        for worker in pool:
            worker.join()
        elapsed = time.perf_counter() - started

        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        connection.request("GET", "/healthz")
        health = json.loads(connection.getresponse().read())
        connection.close()
    finally:
        server.shutdown()
        server.server_close()

    total = sum(result.statuses.values())
    endpoints = {}
    for name in sorted(result.endpoints):
        summary = result.latency.summary(endpoint=name)
        endpoints[name] = {
            "count": summary["count"],
            "p50_ms": round(summary["p50"], 3),
            "p99_ms": round(summary["p99"], 3),
            "mean_ms": round(summary["mean"], 3),
        }
    status_5xx = sum(
        count for status, count in result.statuses.items() if status >= 500
    )
    nondeterministic = sorted(
        key for key, bodies in result.bodies.items() if len(bodies) > 1
    )
    return {
        "workers": workers,
        "rounds_per_worker": rounds,
        "requests": total,
        "elapsed_s": round(elapsed, 3),
        "throughput_rps": round(total / max(elapsed, 1e-9), 1),
        "endpoints": endpoints,
        "error_budget": {
            "statuses": {
                str(status): count
                for status, count in sorted(result.statuses.items())
            },
            "5xx": status_5xx,
            "503_backpressure": result.statuses.get(503, 0),
            "transport_errors": result.transport_errors,
        },
        "deterministic": not nondeterministic,
        "nondeterministic_keys": nondeterministic,
        "select_paths": health.get("select_paths", {}),
        "queue": health.get("queue", {}),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode", choices=("medium", "quick"), default="medium",
        help="medium: the acceptance run behind BENCH_serve.json "
        "(>=5x prefix-vs-baseline select bar); quick: the CI smoke "
        "(zero 5xx + byte-determinism under concurrency)",
    )
    parser.add_argument("--quick", dest="mode", action="store_const",
                        const="quick", help="alias for --mode quick")
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    args = parser.parse_args(argv)
    workers = args.workers or (8 if args.mode == "medium" else 6)
    rounds = args.rounds or (15 if args.mode == "medium" else 5)

    report = {
        "benchmark": "serving load (prefix select + coalesced MC, live HTTP)",
        "mode": args.mode,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "slo": {
            "select_prefix_p50_vs_bench_store": ">=5x",
            "5xx": 0,
            "deterministic": True,
        },
    }
    failures: list[str] = []
    root = tempfile.mkdtemp(prefix="bench-serve-")
    try:
        print(f"[bench_serve_load] building store ({args.mode}) ...",
              flush=True)
        k_max = build_store(root, args.mode)
        report["k_max"] = k_max

        print("[bench_serve_load] select: cold vs prefix ...", flush=True)
        select_requests = 30 if args.mode == "medium" else 10
        report["select"] = bench_select_paths(root, k_max, select_requests)
        print(
            f"  cold {report['select']['cold_p50_ms']}ms | prefix "
            f"{report['select']['prefix_p50_ms']}ms "
            f"(x{report['select']['speedup_vs_cold']} vs cold, "
            f"x{report['select']['speedup_vs_bench_store']} vs "
            f"BENCH_store baseline)",
            flush=True,
        )
        if args.mode == "medium" and (
            report["select"]["speedup_vs_bench_store"] < 5.0
        ):
            failures.append(
                "prefix select p50 "
                f"{report['select']['prefix_p50_ms']}ms misses the 5x bar "
                f"vs baseline {report['select']['bench_store_baseline_ms']}ms"
            )

        print(
            f"[bench_serve_load] load: {workers} workers x {rounds} rounds "
            "of select+spread+predict ...",
            flush=True,
        )
        report["load"] = bench_load(root, k_max, workers, rounds)
        load = report["load"]
        print(
            f"  {load['requests']} requests in {load['elapsed_s']}s "
            f"({load['throughput_rps']} rps) | 5xx: "
            f"{load['error_budget']['5xx']} | deterministic: "
            f"{load['deterministic']}",
            flush=True,
        )
        if load["error_budget"]["5xx"]:
            failures.append(
                f"error budget violated: {load['error_budget']['5xx']} "
                "5xx responses"
            )
        if load["error_budget"]["transport_errors"]:
            failures.append(
                f"{load['error_budget']['transport_errors']} transport errors"
            )
        if not load["deterministic"]:
            failures.append(
                "nondeterministic payloads under concurrency: "
                + ", ".join(load["nondeterministic_keys"])
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    report["failures"] = failures
    for failure in failures:
        print(f"  ERROR: {failure}", flush=True)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_serve_load] wrote {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
